//! Chaos campaigns: randomized fault schedules under degraded communication.
//!
//! A campaign drives one station through a sequence of injected faults —
//! crashes, hangs, and zombies, optionally with loss on every link — and then
//! audits the trace against the robustness invariants the hardened
//! configuration promises:
//!
//! 1. **Every injected failure is cured or explicitly quarantined.** No
//!    fault may linger undetected or leave an episode open forever.
//! 2. **Restarts stay within budget.** No component accumulates more restart
//!    episodes than `max_restarts_per_window` allows.
//! 3. **No unattributed recovery action.** Every `detect:`, `stale:`,
//!    `restart:`, `giveup:`, and `quarantine:` mark must belong to a
//!    component that was injected or that genuinely crashed on its own
//!    (`induced-crash:`, `aging-crash:`, `poison-crash:` marks) — anything
//!    else is a false positive of the failure detector. Episodes the
//!    parallel scheduler merged into an overlapping one (`merge:` marks)
//!    are attributed to their originating suspicions, not dropped.
//!
//! The paper's §2.2 failure detector trusts a single missed ping; under
//! degraded links that convicts innocent components. The campaign is the
//! regression harness for the hardened K-of-N suspicion, the beacon-staleness
//! zombie defense, restart backoff, and quarantine.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use mercury::config::{names, StationConfig};
use mercury::measure::measure_recovery;
use mercury::station::{Station, TreeVariant};
use rr_core::PerfectOracle;
use rr_sim::{LinkQuality, Registry, SimDuration, SimRng, SimTime, Trace, TraceKind};

use crate::tables::Table;

/// Trace-mark prefixes that represent recovery actions needing attribution.
const ACTION_PREFIXES: [&str; 5] = ["detect:", "stale:", "restart:", "giveup:", "quarantine:"];

/// Trace-mark prefixes that certify a *genuine* (non-injected) failure of a
/// component, produced by the components themselves.
const GENUINE_FAILURE_PREFIXES: [&str; 4] =
    ["inject:", "induced-crash:", "aging-crash:", "poison-crash:"];

/// The fault kinds a campaign draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// `SIGKILL`: fail-silent, state lost.
    Crash,
    /// Hang: fail-silent, state resident.
    Hang,
    /// Zombie: answers liveness pings but does no work.
    Zombie,
}

impl ChaosFault {
    /// All kinds, in the order the campaign rotates through them.
    pub const ALL: [ChaosFault; 3] = [ChaosFault::Crash, ChaosFault::Hang, ChaosFault::Zombie];
}

impl fmt::Display for ChaosFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChaosFault::Crash => "crash",
            ChaosFault::Hang => "hang",
            ChaosFault::Zombie => "zombie",
        };
        f.write_str(s)
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Station configuration (defaults to [`StationConfig::hardened`]).
    pub station: StationConfig,
    /// Number of faults to inject, one at a time.
    pub faults: usize,
    /// Loss probability applied to *every* link after warm-up (0 disables).
    pub link_loss: f64,
    /// Settle time after each cure before the next injection, so induced
    /// cascades (old-peer resyncs, aging) finish inside the episode.
    pub settle_s: f64,
    /// How long an injection may take to cure or quarantine before the
    /// campaign declares invariant 1 violated.
    pub cure_deadline_s: f64,
    /// Campaign seed; fault targets and kinds are drawn deterministically.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            station: StationConfig::hardened(),
            faults: 4,
            link_loss: 0.05,
            settle_s: 60.0,
            cure_deadline_s: 400.0,
            seed: 0xC4A0_5D52,
        }
    }
}

/// One injected fault and its observed outcome.
#[derive(Debug, Clone)]
pub struct ChaosInjection {
    /// Target component.
    pub component: String,
    /// Fault kind.
    pub kind: ChaosFault,
    /// Injection time.
    pub at: SimTime,
    /// Measured recovery time in seconds (`None` when the episode did not
    /// cure, e.g. because the component was quarantined).
    pub recovery_s: Option<f64>,
    /// Whether REC quarantined the component instead of curing it.
    pub quarantined: bool,
}

/// The outcome of one campaign: injections, restart counts, and violations.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The tree the campaign ran against.
    pub variant: TreeVariant,
    /// Every injected fault with its outcome.
    pub injections: Vec<ChaosInjection>,
    /// Restart episodes per failed component (from `restart:` trace marks).
    pub restarts: BTreeMap<String, usize>,
    /// Invariant violations; empty on a clean campaign.
    pub violations: Vec<String>,
    /// The station's recovery-episode telemetry: per-component MTTR
    /// histograms, restart and oracle-decision counters, FD ping-latency
    /// stats, and the structured episode stream. Empty when the campaign's
    /// [`StationConfig`] disables telemetry.
    pub telemetry: Registry,
}

impl ChaosReport {
    /// `true` when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs one chaos campaign against a fresh station on `variant`.
///
/// The station is cold-started and settled, link degradation is switched on,
/// and `cfg.faults` randomized faults are injected one at a time, each given
/// `cure_deadline_s` to cure or quarantine. The trace is then audited for the
/// module-level invariants.
pub fn run_campaign(variant: TreeVariant, cfg: &ChaosConfig) -> ChaosReport {
    // Static verification gate: an ill-formed configuration is refused
    // before anything runs, reported through the campaign's own violation
    // channel rather than a panic deep inside the simulation.
    if let Ok(tree) = variant.tree() {
        let lint = cfg.station.lint(&tree);
        if lint.has_deny() {
            return ChaosReport {
                variant,
                injections: Vec::new(),
                restarts: BTreeMap::new(),
                violations: lint
                    .diagnostics()
                    .iter()
                    .filter(|d| d.severity() == rr_lint::Severity::Deny)
                    .map(|d| format!("rr-lint {} at {}: {}", d.code(), d.path, d.message))
                    .collect(),
                telemetry: Registry::new(),
            };
        }
    }
    let mut rng = SimRng::new(
        cfg.seed
            .wrapping_add((variant as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let station_seed = rng.next_u64();
    let mut station = Station::new(
        cfg.station.clone(),
        variant,
        Box::new(PerfectOracle::new()),
        station_seed,
    )
    .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
    station.warm_up();
    if cfg.link_loss > 0.0 {
        station.degrade_all_links(Some(LinkQuality::lossy(cfg.link_loss)));
    }
    let campaign_start = station.now();
    let components: Vec<String> = station.components().to_vec();

    let mut injections: Vec<ChaosInjection> = Vec::new();
    for i in 0..cfg.faults {
        let kind = ChaosFault::ALL[i % ChaosFault::ALL.len()];
        // A zombified bus still relays liveness traffic (the zombie filter
        // admits it), so the fault manifests as every *other* component's
        // beacons going stale at once — attribution of the resulting
        // restarts is ambiguous, so campaigns only zombify leaf components.
        let component = loop {
            let c = rng
                .choose(&components)
                .unwrap_or_else(|| panic!("variant has components"))
                .clone();
            if kind != ChaosFault::Zombie || c != names::MBUS {
                break c;
            }
        };
        let at = match kind {
            ChaosFault::Crash => station
                .inject_kill(&component)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component")),
            ChaosFault::Hang => station
                .inject_hang(&component)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component")),
            ChaosFault::Zombie => station
                .inject_zombie(&component)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component")),
        };
        let deadline = at + SimDuration::from_secs_f64(cfg.cure_deadline_s);
        let cured_label = format!("cured:{component}");
        let quarantine_label = format!("quarantine:{component}");
        let (cured, quarantined) = loop {
            station.run_for(SimDuration::from_secs(5));
            if station
                .trace()
                .first_mark_at_or_after(at, &cured_label)
                .is_some()
            {
                break (true, false);
            }
            if station
                .trace()
                .first_mark_at_or_after(at, &quarantine_label)
                .is_some()
            {
                break (false, true);
            }
            if station.now() >= deadline {
                break (false, false);
            }
        };
        let recovery_s = if cured {
            measure_recovery(station.trace(), &component, at)
                .ok()
                .map(|m| m.recovery_s())
        } else {
            None
        };
        injections.push(ChaosInjection {
            component,
            kind,
            at,
            recovery_s,
            quarantined,
        });
        station.run_for(SimDuration::from_secs_f64(cfg.settle_s));
    }

    // Let in-flight cascades (induced peer crashes, confirmation windows)
    // finish before the audit.
    station.run_for(SimDuration::from_secs_f64(cfg.settle_s));
    let telemetry = station.telemetry();
    audit(
        variant,
        cfg,
        &station,
        campaign_start,
        injections,
        telemetry,
    )
}

/// Computes the set of components whose recovery actions are attributable to
/// a certified failure: the injected components, any that crashed on their
/// own (`induced-crash:`, `aging-crash:`, `poison-crash:` marks), and the
/// closure of that set under two episode relations, iterated to a fixpoint:
///
/// * **Group membership** — a genuine episode's restart deliberately kills
///   every cell member (`restart:<owner>:<attempt>:<a+b+c>` carries the full
///   list), so those members' detections are recovery side effects, not
///   false positives.
/// * **Episode merges** — when the parallel scheduler absorbs a suspicion
///   into an overlapping episode it emits `merge:<from>-><into>`, and every
///   later action of the promoted episode is keyed by the surviving owner.
///   If the absorbed origin's failure was genuine, the merged episode
///   answers that suspicion and its owner-keyed restarts are attributed to
///   it rather than counted as unattributed.
///
/// The fixpoint is needed because a member's or owner's own marks may
/// precede (in scan order) the episode that legitimizes them.
pub fn attributable_components(trace: &Trace, injected: &BTreeSet<String>) -> BTreeSet<String> {
    let mut genuine: BTreeSet<String> = injected.clone();
    for e in trace.iter() {
        if e.kind != TraceKind::Mark {
            continue;
        }
        for prefix in GENUINE_FAILURE_PREFIXES {
            if let Some(rest) = e.label.strip_prefix(prefix) {
                if let Some(comp) = rest.split(':').next() {
                    genuine.insert(comp.to_string());
                }
            }
        }
    }
    loop {
        let mut grew = false;
        for e in trace.iter() {
            if e.kind != TraceKind::Mark {
                continue;
            }
            if let Some(rest) = e.label.strip_prefix("merge:") {
                if let Some((from, into)) = rest.split_once("->") {
                    if genuine.contains(from) && !genuine.contains(into) {
                        genuine.insert(into.to_string());
                        grew = true;
                    }
                }
                continue;
            }
            let Some(rest) = e.label.strip_prefix("restart:") else {
                continue;
            };
            let mut parts = rest.split(':');
            let owner = parts.next().unwrap_or("");
            let members = parts.nth(1).unwrap_or("");
            if !genuine.contains(owner) {
                continue;
            }
            for member in members.split('+') {
                grew |= genuine.insert(member.to_string());
            }
        }
        if !grew {
            break;
        }
    }
    genuine
}

/// Audits the finished trace against the module-level invariants.
fn audit(
    variant: TreeVariant,
    cfg: &ChaosConfig,
    station: &Station,
    campaign_start: SimTime,
    injections: Vec<ChaosInjection>,
    telemetry: Registry,
) -> ChaosReport {
    let mut violations: Vec<String> = Vec::new();

    // Invariant 1: every injection cured or explicitly quarantined.
    for inj in &injections {
        if inj.recovery_s.is_none() && !inj.quarantined {
            violations.push(format!(
                "{} of {} at {} neither cured nor quarantined within {} s",
                inj.kind, inj.component, inj.at, cfg.cure_deadline_s
            ));
        }
    }

    let injected: BTreeSet<String> = injections.iter().map(|i| i.component.clone()).collect();
    let genuine = attributable_components(station.trace(), &injected);

    let mut restarts: BTreeMap<String, usize> = BTreeMap::new();
    for e in station.trace().iter() {
        if e.kind != TraceKind::Mark || e.time < campaign_start {
            continue;
        }
        for prefix in ACTION_PREFIXES {
            let Some(rest) = e.label.strip_prefix(prefix) else {
                continue;
            };
            let comp = rest.split(':').next().unwrap_or("").to_string();
            if prefix == "restart:" {
                *restarts.entry(comp.clone()).or_insert(0) += 1;
            }
            // Invariant 3: no recovery action without a certified failure.
            if !genuine.contains(&comp) {
                violations.push(format!(
                    "unattributed {prefix}{comp} at {} (false positive)",
                    e.time
                ));
            }
        }
    }

    // Invariant 2: restart episodes per component stay within the budget.
    let budget = cfg.station.max_restarts_per_window as usize;
    for (comp, n) in &restarts {
        if *n > budget {
            violations.push(format!(
                "{comp} accumulated {n} restart episodes, over the budget of {budget}"
            ));
        }
    }

    ChaosReport {
        variant,
        injections,
        restarts,
        violations,
        telemetry,
    }
}

/// Runs the default chaos campaign on every tree plus the hour-of-loss
/// false-positive check, rendered as an experiment section for the report.
///
/// The paper column of the observations is the invariant target (zero): the
/// hardened station must convict no innocent component and leave no injected
/// fault unhandled.
pub fn experiment(run: crate::RunConfig) -> crate::Experiment {
    let mut table = Table::new(
        "Chaos campaign: 4 randomized faults per tree under 5% loss on every link",
        vec![
            "tree".into(),
            "injected".into(),
            "cured".into(),
            "quarantined".into(),
            "mean recovery (s)".into(),
            "restart episodes".into(),
            "violations".into(),
        ],
    );
    let mut total_violations = 0usize;
    for variant in TreeVariant::ALL {
        let cfg = ChaosConfig {
            seed: run.seed,
            ..ChaosConfig::default()
        };
        let report = run_campaign(variant, &cfg);
        let cured: Vec<f64> = report
            .injections
            .iter()
            .filter_map(|i| i.recovery_s)
            .collect();
        let mean = if cured.is_empty() {
            0.0
        } else {
            cured.iter().sum::<f64>() / cured.len() as f64
        };
        let injected = report
            .injections
            .iter()
            .map(|i| format!("{}:{}", i.kind, i.component))
            .collect::<Vec<_>>()
            .join(" ");
        total_violations += report.violations.len();
        table.push_row(vec![
            variant.to_string(),
            injected,
            cured.len().to_string(),
            report
                .injections
                .iter()
                .filter(|i| i.quarantined)
                .count()
                .to_string(),
            format!("{mean:.2}"),
            report.restarts.values().sum::<usize>().to_string(),
            report.violations.len().to_string(),
        ]);
    }

    // The headline hardening claim: one simulated hour at 5% loss on every
    // link, hardened preset, zero recovery actions of any kind.
    let mut station = Station::new(
        StationConfig::hardened(),
        TreeVariant::II,
        Box::new(PerfectOracle::new()),
        run.seed,
    )
    .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
    station.warm_up();
    station.degrade_all_links(Some(LinkQuality::lossy(0.05)));
    let start = station.now();
    station.run_for(SimDuration::from_secs(3600));
    let false_positives = station
        .trace()
        .iter()
        .filter(|e| e.time >= start && e.kind == TraceKind::Mark)
        .filter(|e| ACTION_PREFIXES.iter().any(|p| e.label.starts_with(p)))
        .count();

    crate::Experiment {
        id: "chaos".into(),
        title: "Chaos campaign — degraded links, randomized faults, invariant audit".into(),
        tables: vec![table],
        blocks: vec![
            "Beyond the paper's SIGKILL: crash/hang/zombie schedules under 5% \
             message loss on every link, hardened FD/REC configuration \
             (8-consecutive-miss suspicion, restart backoff, beacon-staleness \
             zombie defense, quarantine). Invariants audited per campaign: \
             every injection cured or explicitly quarantined, restart \
             episodes within budget, zero unattributed recovery actions."
                .into(),
        ],
        observations: vec![
            (
                "chaos invariant violations, trees I–V".into(),
                0.0,
                total_violations as f64,
            ),
            (
                "FD false positives in 1 h at 5% loss (hardened)".into(),
                0.0,
                false_positives as f64,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trace where fedr's genuine episode is absorbed into pbcom's: the
    /// promoted restart is keyed by pbcom, which never failed on its own.
    fn merged_trace() -> Trace {
        let mut tr = Trace::new();
        let t = SimTime::ZERO;
        tr.record(t, None, TraceKind::Mark, "inject:fedr");
        tr.record(t, None, TraceKind::Mark, "detect:fedr");
        tr.record(t, None, TraceKind::Mark, "detect:pbcom");
        tr.record(t, None, TraceKind::Mark, "merge:fedr->pbcom");
        tr.record(t, None, TraceKind::Mark, "restart:pbcom:0:fedr+pbcom");
        tr
    }

    #[test]
    fn merged_episode_is_attributed_to_its_originating_suspicion() {
        let tr = merged_trace();
        let injected: BTreeSet<String> = [String::from("fedr")].into();
        let genuine = attributable_components(&tr, &injected);
        assert!(
            genuine.contains("pbcom"),
            "merge:fedr->pbcom must attribute the promoted episode's owner"
        );
        assert!(genuine.contains("fedr"));
    }

    #[test]
    fn merge_from_an_innocent_origin_does_not_attribute() {
        let mut tr = Trace::new();
        tr.record(SimTime::ZERO, None, TraceKind::Mark, "merge:ses->str");
        let genuine = attributable_components(&tr, &BTreeSet::new());
        assert!(
            genuine.is_empty(),
            "a merge between unconvicted components certifies nothing: {genuine:?}"
        );
    }

    #[test]
    fn attribution_closes_over_merge_then_membership() {
        // fedr genuine → merge legitimizes owner pbcom → pbcom's promoted
        // restart legitimizes every cell member it reboots.
        let mut tr = merged_trace();
        tr.record(
            SimTime::ZERO,
            None,
            TraceKind::Mark,
            "restart:pbcom:1:fedr+fedrcom+pbcom",
        );
        let injected: BTreeSet<String> = [String::from("fedr")].into();
        let genuine = attributable_components(&tr, &injected);
        assert!(genuine.contains("fedrcom"), "{genuine:?}");
    }

    #[test]
    fn a_small_campaign_on_tree_i_is_clean() {
        let cfg = ChaosConfig {
            faults: 2,
            link_loss: 0.0,
            ..ChaosConfig::default()
        };
        let report = run_campaign(TreeVariant::I, &cfg);
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.injections.len(), 2);
        for inj in &report.injections {
            assert!(inj.recovery_s.is_some(), "{} not cured", inj.component);
            assert!(!inj.quarantined);
        }
    }
}

//! The experiment suite: one function per table/figure of the paper.
//!
//! Each experiment returns an [`Experiment`] holding the rendered tables and
//! the paper-vs-measured record used to generate `EXPERIMENTS.md`. All
//! experiments run the *actual station simulation* (fresh station per trial,
//! cold-started and settled, then one injected failure, measured exactly as
//! §4.1 describes); the analytic model from `rr_core::analysis` is shown
//! alongside as a cross-check where it applies.

use mercury::config::{names, StationConfig};
use mercury::measure::{measure_recovery, telemetry_frames};
use mercury::scenario::PassScenario;
use mercury::station::{Station, TreeVariant};
use rr_core::analysis::{
    availability, expected_mode_recovery_s, expected_system_mttr_s, OracleQuality,
};
use rr_core::model::FailureMode;
use rr_core::optimize::{optimize_tree, OptimizerConfig};
use rr_core::oracle::Oracle;
use rr_core::render::render_tree;
use rr_core::{FaultyOracle, LearningOracle, PerfectOracle};
use rr_sim::{Dist, SimDuration, SimRng, Summary};

use crate::tables::{secs, versus, Table};

/// Unwraps a failure mode built from literal experiment rates, which are
/// valid by construction.
fn mode(m: Result<FailureMode, rr_core::ModelError>) -> FailureMode {
    m.unwrap_or_else(|e| unreachable!("literal experiment rates are valid: {e}"))
}

/// Which oracle a run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OracleKind {
    /// The minimal restart policy (`A_oracle`).
    Perfect,
    /// The §4.4 faulty oracle with the given guess-too-low probability.
    Faulty(f64),
    /// The learning oracle (future work §7).
    Learning,
}

impl OracleKind {
    fn build(self, seed: u64) -> Box<dyn Oracle> {
        match self {
            OracleKind::Perfect => Box::new(PerfectOracle::new()),
            OracleKind::Faulty(p) => Box::new(FaultyOracle::new(p, SimRng::new(seed))),
            OracleKind::Learning => Box::new(LearningOracle::new(0.5)),
        }
    }
}

/// Experiment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Trials per measured cell (the paper uses 100).
    pub trials: usize,
    /// Base seed; trial `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            trials: 100,
            seed: 0xD52002,
        }
    }
}

/// A completed experiment: rendered output plus the structured record.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Identifier (e.g. `table2`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Rendered tables/figures.
    pub tables: Vec<Table>,
    /// Free-form rendered blocks (tree drawings etc.).
    pub blocks: Vec<String>,
    /// Paper-vs-measured observations: `(label, paper value, measured)`.
    pub observations: Vec<(String, f64, f64)>,
}

impl Experiment {
    fn new(id: &str, title: &str) -> Experiment {
        Experiment {
            id: id.to_string(),
            title: title.to_string(),
            tables: Vec::new(),
            blocks: Vec::new(),
            observations: Vec::new(),
        }
    }

    /// Renders everything as plain text.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n\n", self.id, self.title);
        for b in &self.blocks {
            out.push_str(b);
            out.push('\n');
        }
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// Worst relative error across the paper-vs-measured observations.
    pub fn worst_relative_error(&self) -> f64 {
        self.observations
            .iter()
            .map(|(_, paper, measured)| ((measured - paper) / paper).abs())
            .fold(0.0, f64::max)
    }
}

/// Measures mean recovery time for killing `component` under the given tree
/// and oracle, over `trials` fresh stations.
///
/// `correlated_pbcom` selects the §4.4 joint-cure failure instead of a plain
/// kill (only meaningful for pbcom on split trees).
pub fn measure_cell(
    variant: TreeVariant,
    oracle: OracleKind,
    component: &str,
    correlated_pbcom: bool,
    run: RunConfig,
) -> Summary {
    Summary::of(&measure_cell_samples(
        variant,
        oracle,
        component,
        correlated_pbcom,
        run,
    ))
}

/// Like [`measure_cell`], but returns the raw per-trial recovery times.
pub fn measure_cell_samples(
    variant: TreeVariant,
    oracle: OracleKind,
    component: &str,
    correlated_pbcom: bool,
    run: RunConfig,
) -> Vec<f64> {
    let mut samples = Vec::with_capacity(run.trials);
    let mut phase_rng = SimRng::new(run.seed ^ 0x9E3779B97F4A7C15);
    for i in 0..run.trials {
        let seed = run.seed.wrapping_add(i as u64).wrapping_mul(2654435761);
        let mut station = Station::new(
            StationConfig::paper(),
            variant,
            oracle.build(seed ^ 0xBEEF),
            seed,
        )
        .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
        station.warm_up();
        station.randomize_injection_phase(&mut phase_rng);
        let injected = if correlated_pbcom {
            station
                .inject_correlated_pbcom()
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"))
        } else {
            station
                .inject_kill(component)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"))
        };
        // Long enough for the worst escalated episode (≈48 s) plus slack.
        station.run_for(SimDuration::from_secs(150));
        match measure_recovery(station.trace(), component, injected) {
            Ok(m) => samples.push(m.recovery_s()),
            Err(e) => {
                panic!("trial {i} ({variant}, {component}, correlated={correlated_pbcom}): {e}")
            }
        }
    }
    samples
}

/// How a correlated-fault scenario injects its failures.
#[derive(Debug, Clone, Copy)]
pub enum CorrelatedKind {
    /// Two components in independent cells killed at the same instant.
    Pair(&'static str, &'static str),
    /// Kill fedr, then 1 s later the §4.4 correlated pbcom failure while
    /// fedr's episode is still in flight — forcing an LCA merge under the
    /// parallel scheduler.
    FedrThenJointPbcom,
}

impl CorrelatedKind {
    /// The injected components, for measurement.
    pub fn components(self) -> [&'static str; 2] {
        match self {
            CorrelatedKind::Pair(a, b) => [a, b],
            CorrelatedKind::FedrThenJointPbcom => [names::FEDR, names::PBCOM],
        }
    }

    /// The failure modes, for the analytic group-recovery cross-check.
    fn modes(self) -> Vec<FailureMode> {
        match self {
            CorrelatedKind::Pair(a, b) => {
                vec![
                    mode(FailureMode::solo(a, a, 1.0)),
                    mode(FailureMode::solo(b, b, 1.0)),
                ]
            }
            CorrelatedKind::FedrThenJointPbcom => vec![
                mode(FailureMode::solo(names::FEDR, names::FEDR, 1.0)),
                mode(FailureMode::correlated(
                    "joint",
                    names::PBCOM,
                    [names::FEDR, names::PBCOM],
                    1.0,
                )),
            ],
        }
    }
}

/// Measures group recovery (seconds until *both* injected failures are
/// recovered, per the §4.1 definition applied per component) for a
/// correlated-fault scenario, serially or in parallel.
pub fn measure_correlated(
    variant: TreeVariant,
    kind: CorrelatedKind,
    serial: bool,
    run: RunConfig,
) -> Summary {
    let mut samples = Vec::with_capacity(run.trials);
    let mut phase_rng = SimRng::new(run.seed ^ 0x5EB1A1);
    for i in 0..run.trials {
        let seed = run.seed.wrapping_add(i as u64).wrapping_mul(2654435761);
        let mut cfg = StationConfig::paper();
        cfg.serial_recovery = serial;
        let mut station = Station::new(cfg, variant, Box::new(PerfectOracle::new()), seed)
            .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
        station.warm_up();
        station.randomize_injection_phase(&mut phase_rng);
        let injected = match kind {
            CorrelatedKind::Pair(a, b) => {
                let at = station
                    .inject_kill(a)
                    .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
                station
                    .inject_kill(b)
                    .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
                at
            }
            CorrelatedKind::FedrThenJointPbcom => {
                let at = station
                    .inject_kill(names::FEDR)
                    .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
                station.run_for(SimDuration::from_secs(1));
                station.set_cure_hint(names::PBCOM, [names::FEDR, names::PBCOM]);
                station
                    .inject_kill(names::PBCOM)
                    .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
                at
            }
        };
        station.run_for(SimDuration::from_secs(200));
        // The group is recovered when its slowest member is functionally
        // ready for good. Readiness (not per-episode attribution) is the
        // metric because the serial baseline can recover a deferred
        // component through another episode's deadline escalation, which
        // never issues a restart under the deferred component's own name.
        let mut group = 0.0f64;
        for comp in kind.components() {
            let ready = station
                .trace()
                .mark_times(&format!("ready:{comp}"))
                .filter(|&t| t >= injected)
                .last()
                .unwrap_or_else(|| {
                    panic!("trial {i} ({variant}, {comp}, serial={serial}): never became ready")
                });
            group = group.max(ready.saturating_since(injected).as_secs_f64());
        }
        samples.push(group);
    }
    Summary::of(&samples)
}

/// **Correlated faults** — sequential vs parallel recovery of concurrent
/// failures (the dependency-aware scheduler's headline table). Independent
/// cells recover concurrently; overlapping suspicions merge by promotion to
/// their least common ancestor instead of racing.
pub fn correlated_faults(run: RunConfig) -> Experiment {
    use rr_core::analysis::{expected_parallel_group_recovery_s, expected_serial_group_recovery_s};

    let mut exp = Experiment::new(
        "correlated",
        "Correlated-fault recovery: sequential vs parallel scheduler",
    );
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    let mut table = Table::new(
        "Group recovery (s): time until every injected failure is cured",
        vec![
            "Scenario".into(),
            "Sequential".into(),
            "Parallel".into(),
            "Speedup".into(),
            "Analytic seq".into(),
            "Analytic par".into(),
        ],
    );
    let scenarios: Vec<(String, TreeVariant, CorrelatedKind)> = vec![
        (
            "II: rtu + ses simultaneous".into(),
            TreeVariant::II,
            CorrelatedKind::Pair(names::RTU, names::SES),
        ),
        (
            "III: fedr + pbcom simultaneous".into(),
            TreeVariant::III,
            CorrelatedKind::Pair(names::FEDR, names::PBCOM),
        ),
        (
            "IV: rtu + fedr simultaneous".into(),
            TreeVariant::IV,
            CorrelatedKind::Pair(names::RTU, names::FEDR),
        ),
        (
            "IV: fedr, then joint pbcom (merge)".into(),
            TreeVariant::IV,
            CorrelatedKind::FedrThenJointPbcom,
        ),
        (
            "V: rtu + ses simultaneous".into(),
            TreeVariant::V,
            CorrelatedKind::Pair(names::RTU, names::SES),
        ),
        (
            "V: fedr, then joint pbcom (merge)".into(),
            TreeVariant::V,
            CorrelatedKind::FedrThenJointPbcom,
        ),
    ];
    let trials = run.trials.clamp(3, 20);
    let run = RunConfig { trials, ..run };
    for (label, variant, kind) in scenarios {
        let serial = measure_correlated(variant, kind, true, run);
        let parallel = measure_correlated(variant, kind, false, run);
        let tree = variant
            .tree()
            .unwrap_or_else(|e| panic!("{}: {e:?}", "paper tree builds"));
        let modes = kind.modes();
        let a_seq = expected_serial_group_recovery_s(&tree, &modes, &cost)
            .unwrap_or_else(|e| panic!("{}: {e:?}", "valid modes"));
        let a_par = expected_parallel_group_recovery_s(&tree, &modes, &cost)
            .unwrap_or_else(|e| panic!("{}: {e:?}", "valid modes"));
        table.push_row(vec![
            label.clone(),
            secs(serial.mean),
            secs(parallel.mean),
            format!("{:.2}x", serial.mean / parallel.mean),
            secs(a_seq),
            secs(a_par),
        ]);
        exp.observations
            .push((format!("{label} (seq vs par)"), serial.mean, parallel.mean));
    }
    exp.blocks.push(
        "The parallel scheduler plans one antichain of episodes per FD sweep:\n\
         independent subtrees reboot concurrently (group recovery tracks the\n\
         slowest member instead of the sum) and overlapping suspicions merge\n\
         into a single promoted episode instead of re-killing each other.\n"
            .to_string(),
    );
    exp.blocks.push(
        "The analytic sequential column is a lower bound that ignores\n\
         cross-cell boot dependencies: when fedr and pbcom fail together,\n\
         the sequential baseline restarts fedr first, fedr's boot wedges on\n\
         the still-dead pbcom (whose own recovery is deferred behind the\n\
         open episode), and only the restart deadline breaks the deadlock by\n\
         escalating to the joint [fedr, pbcom] cell. The parallel plan never\n\
         creates that wait-for cycle — both cells reboot at once.\n"
            .to_string(),
    );
    exp.tables.push(table);
    exp
}

/// **Table 1** — observed per-component MTTFs.
///
/// The paper's Table 1 is operator-estimated; we inject synthetic failure
/// processes with those MTTFs and verify the empirical means match. This
/// validates the fault generator every other experiment relies on.
pub fn table1(run: RunConfig) -> Experiment {
    let mut exp = Experiment::new("table1", "Observed per-component MTTFs");
    let cfg = StationConfig::paper();
    let model = cfg.unsplit_failure_model();
    let mut table = Table::new(
        "Table 1: per-component MTTF (seconds)",
        vec![
            "Component".into(),
            "Paper MTTF".into(),
            "Configured".into(),
            "Empirical mean (n=5000)".into(),
        ],
    );
    let paper: &[(&str, f64, &str)] = &[
        (names::MBUS, 730.0 * 3600.0, "1 month"),
        (names::FEDRCOM, 600.0, "10 min"),
        (names::SES, 5.0 * 3600.0, "5 hr"),
        (names::STR, 5.0 * 3600.0, "5 hr"),
        (names::RTU, 5.0 * 3600.0, "5 hr"),
    ];
    let mut rng = SimRng::new(run.seed);
    for (comp, paper_mttf, paper_str) in paper {
        let configured = model
            .component_mttf_s(comp)
            .unwrap_or_else(|| panic!("mode exists"));
        let dist = Dist::exponential(configured);
        let n = 5000;
        let mean = (0..n).map(|_| dist.sample_secs(&mut rng)).sum::<f64>() / n as f64;
        table.push_row(vec![
            comp.to_string(),
            format!("{paper_str} ({paper_mttf:.0}s)"),
            format!("{configured:.0}s"),
            format!("{mean:.0}s"),
        ]);
        exp.observations
            .push((format!("mttf:{comp}"), *paper_mttf, mean));
    }
    exp.tables.push(table);
    exp
}

/// **Table 2** — recovery time under trees I and II (100 trials per cell).
pub fn table2(run: RunConfig) -> Experiment {
    let mut exp = Experiment::new(
        "table2",
        "Tree II recovery: detection + recovery time per failed component",
    );
    let components = [
        names::MBUS,
        names::SES,
        names::STR,
        names::RTU,
        names::FEDRCOM,
    ];
    let paper_i = [24.75, 24.75, 24.75, 24.75, 24.75];
    let paper_ii = [5.73, 9.50, 9.76, 5.59, 20.93];

    let mut table = Table::new(
        "Table 2: recovery time (seconds), trees I and II",
        vec![
            "Failed node".into(),
            "MTTR tree I".into(),
            "MTTR tree II".into(),
            "CoV (II)".into(),
        ],
    );
    for (idx, comp) in components.iter().enumerate() {
        let s_i = measure_cell(TreeVariant::I, OracleKind::Perfect, comp, false, run);
        let samples_ii =
            measure_cell_samples(TreeVariant::II, OracleKind::Perfect, comp, false, run);
        let s_ii = Summary::of(&samples_ii);
        table.push_row(vec![
            comp.to_string(),
            versus(paper_i[idx], s_i.mean),
            versus(paper_ii[idx], s_ii.mean),
            format!("{:.3}", s_ii.cov),
        ]);
        exp.observations
            .push((format!("treeI:{comp}"), paper_i[idx], s_i.mean));
        exp.observations
            .push((format!("treeII:{comp}"), paper_ii[idx], s_ii.mean));
        // The §3.2 small-CoV claim, made visible for one representative cell.
        if *comp == names::SES {
            let mut hist = rr_sim::Histogram::new(s_ii.min - 0.25, s_ii.max + 0.25, 10);
            for &x in &samples_ii {
                hist.add(x);
            }
            exp.blocks.push(format!(
                "Distribution of ses recovery times under tree II (n={}, cov={:.3}):\n{}",
                s_ii.count,
                s_ii.cov,
                hist.render(40)
            ));
        }
    }
    exp.tables.push(table);
    exp
}

/// The Table 4 row specification: which tree, which oracle, and the paper's
/// numbers per column.
struct Table4Row {
    variant: TreeVariant,
    oracle: OracleKind,
    label: &'static str,
    /// (component, paper value, use the correlated pbcom injection).
    cells: Vec<(&'static str, f64, bool)>,
}

fn table4_rows() -> Vec<Table4Row> {
    use TreeVariant::*;
    vec![
        Table4Row {
            variant: I,
            oracle: OracleKind::Perfect,
            label: "I / perfect",
            cells: vec![
                (names::MBUS, 24.75, false),
                (names::SES, 24.75, false),
                (names::STR, 24.75, false),
                (names::RTU, 24.75, false),
                (names::FEDRCOM, 24.75, false),
            ],
        },
        Table4Row {
            variant: II,
            oracle: OracleKind::Perfect,
            label: "II / perfect",
            cells: vec![
                (names::MBUS, 5.73, false),
                (names::SES, 9.50, false),
                (names::STR, 9.76, false),
                (names::RTU, 5.59, false),
                (names::FEDRCOM, 20.93, false),
            ],
        },
        Table4Row {
            variant: III,
            oracle: OracleKind::Perfect,
            label: "III / perfect",
            cells: vec![
                (names::MBUS, 5.73, false),
                (names::SES, 9.50, false),
                (names::STR, 9.76, false),
                (names::RTU, 5.59, false),
                (names::FEDR, 5.76, false),
                (names::PBCOM, 21.24, false),
            ],
        },
        Table4Row {
            variant: IV,
            oracle: OracleKind::Perfect,
            label: "IV / perfect",
            cells: vec![
                (names::MBUS, 5.73, false),
                (names::SES, 6.25, false),
                (names::STR, 6.11, false),
                (names::RTU, 5.59, false),
                (names::FEDR, 5.76, false),
                (names::PBCOM, 21.24, false),
            ],
        },
        Table4Row {
            variant: IV,
            oracle: OracleKind::Faulty(0.3),
            label: "IV / faulty",
            cells: vec![
                (names::MBUS, 5.73, false),
                (names::SES, 6.25, false),
                (names::STR, 6.11, false),
                (names::RTU, 5.59, false),
                (names::FEDR, 5.76, false),
                (names::PBCOM, 29.19, true),
            ],
        },
        Table4Row {
            variant: V,
            oracle: OracleKind::Faulty(0.3),
            label: "V / faulty",
            cells: vec![
                (names::MBUS, 5.73, false),
                (names::SES, 6.25, false),
                (names::STR, 6.11, false),
                (names::RTU, 5.59, false),
                (names::FEDR, 5.76, false),
                (names::PBCOM, 21.63, true),
            ],
        },
    ]
}

/// **Table 4** — overall MTTRs: trees I–V × failed component × oracle.
/// Includes the §4.2 (fedr/pbcom split), §4.3 (ses/str consolidation) and
/// §4.4 (node promotion under a faulty oracle) measurements.
pub fn table4(run: RunConfig) -> Experiment {
    let mut exp = Experiment::new("table4", "Overall MTTRs (seconds) for trees I-V");
    let mut table = Table::new(
        "Table 4: rows are tree/oracle, columns are failed components",
        vec![
            "Tree/Oracle".into(),
            "Component".into(),
            "Recovery (s)".into(),
            "95% CI".into(),
            "Analytic".into(),
        ],
    );
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    for row in table4_rows() {
        let tree = row
            .variant
            .tree()
            .unwrap_or_else(|e| panic!("{}: {e:?}", "paper tree builds"));
        for (comp, paper, correlated) in &row.cells {
            let s = measure_cell(row.variant, row.oracle, comp, *correlated, run);
            // Analytic cross-check.
            let mode = if *correlated {
                mode(FailureMode::correlated(
                    "joint",
                    *comp,
                    [names::FEDR, names::PBCOM],
                    1.0,
                ))
            } else {
                mode(FailureMode::solo("solo", *comp, 1.0))
            };
            let quality = match row.oracle {
                OracleKind::Perfect | OracleKind::Learning => OracleQuality::Perfect,
                OracleKind::Faulty(p) => OracleQuality::Faulty { undershoot: p },
            };
            let analytic = expected_mode_recovery_s(&tree, &mode, &cost, quality)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "mode valid"));
            table.push_row(vec![
                row.label.to_string(),
                comp.to_string(),
                versus(*paper, s.mean),
                format!("±{:.2}", s.ci95),
                secs(analytic),
            ]);
            exp.observations
                .push((format!("{}:{comp}", row.label), *paper, s.mean));
        }
    }
    exp.tables.push(table);
    exp
}

/// **Table 3 + Figures 2–6** — the tree evolution: renders every tree,
/// checks the structural claims of Table 3 programmatically.
pub fn figures(_run: RunConfig) -> Experiment {
    let mut exp = Experiment::new(
        "figures",
        "Restart trees I-V (Figures 3-6) and the Figure 2 example",
    );

    // Figure 2's example tree.
    let fig2 = rr_core::TreeSpec::cell("R_ABC")
        .with_child(rr_core::TreeSpec::cell("R_A").with_component("A"))
        .with_child(
            rr_core::TreeSpec::cell("R_BC")
                .with_child(rr_core::TreeSpec::cell("R_B").with_component("B"))
                .with_child(rr_core::TreeSpec::cell("R_C").with_component("C")),
        )
        .build()
        .unwrap_or_else(|e| panic!("{}: {e:?}", "figure 2 tree"));
    exp.blocks.push(format!(
        "Figure 2 (example restart tree):\n{}",
        render_tree(&fig2)
    ));
    exp.observations.push((
        "fig2:restart-groups".into(),
        5.0,
        fig2.groups().len() as f64,
    ));

    let mut table = Table::new(
        "Table 3: structural properties of trees I-V",
        vec![
            "Tree".into(),
            "Cells".into(),
            "Groups".into(),
            "pbcom solo button".into(),
            "[fedr,pbcom] button".into(),
            "[ses,str] cell".into(),
        ],
    );
    for variant in TreeVariant::ALL {
        let tree = variant
            .tree()
            .unwrap_or_else(|e| panic!("{}: {e:?}", "paper tree builds"));
        tree.validate()
            .unwrap_or_else(|e| panic!("{}: {e:?}", "paper trees are valid"));
        exp.blocks.push(format!(
            "Tree {variant} (Figure {}):\n{}",
            match variant {
                TreeVariant::I => "3 left",
                TreeVariant::II => "3 right",
                TreeVariant::III => "4",
                TreeVariant::IV => "5",
                TreeVariant::V => "6",
            },
            render_tree(&tree)
        ));
        let has = |set: &[&str]| rr_core::optimize::find_group(&tree, set).is_some();
        table.push_row(vec![
            variant.to_string(),
            tree.cell_count().to_string(),
            tree.groups().len().to_string(),
            if variant.is_split() {
                has(&[names::PBCOM]).to_string()
            } else {
                "n/a".into()
            },
            if variant.is_split() {
                has(&[names::FEDR, names::PBCOM]).to_string()
            } else {
                "n/a".into()
            },
            if variant.is_split() {
                has(&[names::SES, names::STR]).to_string()
            } else {
                "n/a".into()
            },
        ]);
    }
    exp.tables.push(table);

    // Table 3's "useful when…" column, evaluated mechanically: the advisor
    // inspects each tree against the Mercury failure model and recommends
    // exactly the paper's next transformation.
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    let model = cfg.advisory_failure_model();
    let mut advisor_table = Table::new(
        "Table 3 (advisor view): what each tree still needs",
        vec!["Tree".into(), "Advisor recommendations".into()],
    );
    for variant in [TreeVariant::III, TreeVariant::IV, TreeVariant::V] {
        let advice = rr_core::advisor::advise(
            &variant
                .tree()
                .unwrap_or_else(|e| panic!("{}: {e:?}", "paper tree builds")),
            &model,
            &cost,
            rr_core::advisor::OracleAssumption::MayErr,
        );
        let text = if advice.is_empty() {
            "none — every Table 3 condition is satisfied".to_string()
        } else {
            advice
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        };
        advisor_table.push_row(vec![variant.to_string(), text]);
        exp.observations.push((
            format!("advisor:tree-{variant}-recommendations"),
            match variant {
                TreeVariant::V => 0.0,
                _ => 1.0,
            },
            f64::from(u8::from(!advice.is_empty())),
        ));
    }
    exp.tables.push(advisor_table);
    exp
}

/// **Headline** — "recovery time improved by a factor of four": the
/// failure-rate-weighted expected MTTR per tree, with availability.
pub fn headline(run: RunConfig) -> Experiment {
    let mut exp = Experiment::new(
        "headline",
        "Expected system MTTR and availability per tree (factor-of-four claim)",
    );
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    let mut table = Table::new(
        "Expected MTTR (failure-rate weighted) and availability",
        vec![
            "Tree".into(),
            "Oracle".into(),
            "Expected MTTR (s)".into(),
            "Availability".into(),
            "Downtime / month".into(),
        ],
    );
    let mut tree_i_mttr = None;
    let mut tree_v_mttr = None;
    for (variant, quality, label) in [
        (TreeVariant::I, OracleQuality::Perfect, "perfect"),
        (TreeVariant::II, OracleQuality::Perfect, "perfect"),
        (TreeVariant::III, OracleQuality::Perfect, "perfect"),
        (TreeVariant::IV, OracleQuality::Perfect, "perfect"),
        (
            TreeVariant::IV,
            OracleQuality::Faulty { undershoot: 0.3 },
            "faulty(0.3)",
        ),
        (
            TreeVariant::V,
            OracleQuality::Faulty { undershoot: 0.3 },
            "faulty(0.3)",
        ),
    ] {
        let tree = variant
            .tree()
            .unwrap_or_else(|e| panic!("{}: {e:?}", "paper tree builds"));
        let model = if variant.is_split() {
            cfg.paper_failure_model()
        } else {
            cfg.unsplit_failure_model()
        };
        let mttr = expected_system_mttr_s(&tree, &model, &cost, quality)
            .unwrap_or_else(|e| panic!("{}: {e:?}", "valid model"));
        let mttf = model
            .system_mttf_s()
            .unwrap_or_else(|e| panic!("{}: {e:?}", "non-empty model"));
        let avail =
            availability(mttf, mttr).unwrap_or_else(|e| panic!("{}: {e:?}", "positive MTTF/MTTR"));
        let downtime_month = (1.0 - avail) * 30.44 * 86_400.0;
        table.push_row(vec![
            variant.to_string(),
            label.to_string(),
            secs(mttr),
            format!("{avail:.6}"),
            format!("{downtime_month:.0}s"),
        ]);
        if variant == TreeVariant::I {
            tree_i_mttr = Some(mttr);
        }
        if variant == TreeVariant::V {
            tree_v_mttr = Some(mttr);
        }
    }
    let (i, v) = (
        tree_i_mttr.unwrap_or_else(|| panic!("tree I")),
        tree_v_mttr.unwrap_or_else(|| panic!("tree V")),
    );
    exp.blocks.push(format!(
        "Recovery-time improvement, tree I → tree V: {:.2}x (paper claims ~4x)\n",
        i / v
    ));
    // A figure-style view of the same result.
    let chart_rows: Vec<(String, f64)> = table
        .rows()
        .iter()
        .map(|r| {
            (
                format!("tree {} ({})", r[0], r[1]),
                r[2].parse::<f64>().unwrap_or(0.0),
            )
        })
        .collect();
    exp.blocks.push(format!(
        "Expected system MTTR (seconds):\n{}",
        crate::tables::bar_chart(&chart_rows, 48)
    ));
    exp.observations
        .push(("improvement-factor".into(), 4.0, i / v));
    let _ = run;
    exp.tables.push(table);
    exp
}

/// **§5.2** — not all downtime is the same: telemetry frames lost when a
/// failure strikes during a satellite pass, tree I vs tree V.
pub fn pass_data_loss(run: RunConfig) -> Experiment {
    let mut exp = Experiment::new(
        "pass",
        "Science-data loss during a pass (§5.2): tree I vs tree V",
    );
    let mut table = Table::new(
        "Telemetry frames captured during one pass with one rtu failure mid-pass",
        vec![
            "Tree".into(),
            "Frames (no failure)".into(),
            "Frames (failure)".into(),
            "Frames lost".into(),
        ],
    );
    let trials = run.trials.clamp(1, 10); // passes are long; a few suffice
    for variant in [TreeVariant::I, TreeVariant::V] {
        let mut clean = 0.0;
        let mut faulty = 0.0;
        for t in 0..trials {
            let seed = run.seed + t as u64;
            for inject in [false, true] {
                let mut cfg = StationConfig::paper();
                let plan = PassScenario::plan(&cfg, "opal", 120.0, 30.0, 20.0);
                cfg.pass_epoch_offset_s = plan.epoch_offset_s;
                let mut station =
                    Station::new(cfg.clone(), variant, Box::new(PerfectOracle::new()), seed)
                        .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
                station.warm_up();
                let start = station.now();
                plan.start_tracking(&mut station);
                if inject {
                    // Fail rtu two minutes into the pass.
                    let rise = plan.rise_sim_time();
                    let until = rise + SimDuration::from_secs(120);
                    let dur = until.saturating_since(station.now());
                    station.run_for(dur);
                    station
                        .inject_kill(names::RTU)
                        .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
                }
                let end = plan.set_sim_time() + SimDuration::from_secs(10);
                let dur = end.saturating_since(station.now());
                station.run_for(dur);
                let frames = telemetry_frames(station.trace(), start, station.now()) as f64;
                if inject {
                    faulty += frames;
                } else {
                    clean += frames;
                }
            }
        }
        clean /= trials as f64;
        faulty /= trials as f64;
        table.push_row(vec![
            variant.to_string(),
            format!("{clean:.0}"),
            format!("{faulty:.0}"),
            format!("{:.0}", clean - faulty),
        ]);
        exp.observations
            .push((format!("frames-lost:{variant}"), 0.0, clean - faulty));
    }
    exp.blocks.push(
        "A short MTTR keeps the loss to a few frames; a full reboot (tree I)\n\
         loses tens of seconds of science data and risks dropping the whole\n\
         pass if the link breaks (§5.2).\n"
            .to_string(),
    );
    exp.tables.push(table);
    exp
}

/// **Ablation** — oracle error-rate sweep: where does tree V overtake
/// tree IV? (The paper fixes p = 0.3 "arbitrarily".)
pub fn ablation_oracle_sweep(run: RunConfig) -> Experiment {
    let mut exp = Experiment::new(
        "ablation-oracle",
        "Oracle error-rate sweep: pbcom-joint recovery, tree IV vs V",
    );
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    let mode = mode(FailureMode::correlated(
        "joint",
        names::PBCOM,
        [names::FEDR, names::PBCOM],
        1.0,
    ));
    let mut table = Table::new(
        "Expected recovery (s) for the correlated pbcom failure",
        vec![
            "Error rate".into(),
            "Tree IV".into(),
            "Tree V".into(),
            "V wins".into(),
        ],
    );
    let tree_iv = TreeVariant::IV
        .tree()
        .unwrap_or_else(|e| panic!("{}: {e:?}", "paper tree builds"));
    let tree_v = TreeVariant::V
        .tree()
        .unwrap_or_else(|e| panic!("{}: {e:?}", "paper tree builds"));
    // The 30%-mixture has high per-trial variance; use the full trial budget
    // for the simulated spot check.
    let trials = run.trials.max(5);
    for p in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let iv = expected_mode_recovery_s(
            &tree_iv,
            &mode,
            &cost,
            OracleQuality::Faulty { undershoot: p },
        )
        .unwrap_or_else(|e| panic!("{}: {e:?}", "valid"));
        let v = expected_mode_recovery_s(
            &tree_v,
            &mode,
            &cost,
            OracleQuality::Faulty { undershoot: p },
        )
        .unwrap_or_else(|e| panic!("{}: {e:?}", "valid"));
        // Spot-check one simulated point per rate.
        if (p - 0.3).abs() < 1e-9 {
            let sim = measure_cell(
                TreeVariant::IV,
                OracleKind::Faulty(p),
                names::PBCOM,
                true,
                RunConfig { trials, ..run },
            );
            exp.observations
                .push(("sweep:iv@0.3 (sim vs analytic)".into(), iv, sim.mean));
        }
        table.push_row(vec![
            format!("{p:.1}"),
            secs(iv),
            secs(v),
            (v < iv || (v - iv).abs() < 1e-9).to_string(),
        ]);
    }
    exp.blocks.push(
        "Tree V's promotion is free insurance: it matches tree IV at p=0 and\n\
         dominates for every positive error rate.\n"
            .to_string(),
    );
    exp.tables.push(table);
    exp
}

/// **Ablation** — detection-period sweep: the paper picks 1 s "to minimize
/// detection time without overloading mbus".
pub fn ablation_ping_period(run: RunConfig) -> Experiment {
    let mut exp = Experiment::new(
        "ablation-ping",
        "FD ping-period sweep: detection latency vs bus load",
    );
    let mut table = Table::new(
        "rtu recovery under tree II as the ping period varies",
        vec![
            "Ping period (s)".into(),
            "Mean recovery (s)".into(),
            "Pings/minute on mbus".into(),
        ],
    );
    let trials = run.trials.clamp(5, 30);
    for period in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut samples = Vec::new();
        for i in 0..trials {
            let seed = run.seed + 7000 + i as u64;
            let mut cfg = StationConfig::paper();
            cfg.ping_period_s = period;
            cfg.ping_timeout_s = (0.4 * period).clamp(0.1, 2.0);
            // The cure-confirmation window must scale with detection latency
            // (config validation enforces this ordering).
            cfg.cure_confirm_s = cfg.poison_crash_delay_s + cfg.mean_detection_s() + 1.0;
            let mut station =
                Station::new(cfg, TreeVariant::II, Box::new(PerfectOracle::new()), seed)
                    .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
            station.warm_up();
            let mut phase_rng = SimRng::new(seed ^ 0xA5A5);
            station.randomize_injection_phase(&mut phase_rng);
            let injected = station
                .inject_kill(names::RTU)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
            station.run_for(SimDuration::from_secs(90));
            let m = measure_recovery(station.trace(), names::RTU, injected)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "recovered"));
            samples.push(m.recovery_s());
        }
        let s = Summary::of(&samples);
        let pings_per_minute = 60.0 / period * names::UNSPLIT.len() as f64;
        table.push_row(vec![
            format!("{period}"),
            secs(s.mean),
            format!("{pings_per_minute:.0}"),
        ]);
        if (period - 1.0).abs() < 1e-9 {
            exp.observations.push(("ping@1s:rtu".into(), 5.59, s.mean));
        }
    }
    exp.tables.push(table);
    exp
}

/// **Ablation** — the learning oracle (§7 future work): does it converge to
/// the minimal restart policy for the correlated pbcom failure?
pub fn ablation_learning(run: RunConfig) -> Experiment {
    let mut exp = Experiment::new(
        "ablation-learning",
        "Learning oracle: estimating f_ci from restart outcomes",
    );
    let mut table = Table::new(
        "Successive correlated-pbcom episodes under tree IV with a learning oracle",
        vec!["Episode".into(), "Attempts".into(), "Recovery (s)".into()],
    );
    // One long-lived station; repeated episodes teach the oracle.
    let mut station = Station::new(
        StationConfig::paper(),
        TreeVariant::IV,
        Box::new(LearningOracle::new(0.5)),
        run.seed + 31,
    )
    .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
    station.warm_up();
    let episodes = 6;
    let mut first_attempts = 0;
    let mut last_attempts = 0;
    for ep in 0..episodes {
        let injected = station
            .inject_correlated_pbcom()
            .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
        station.run_for(SimDuration::from_secs(150));
        let m = measure_recovery(station.trace(), names::PBCOM, injected)
            .unwrap_or_else(|e| panic!("{}: {e:?}", "recovered"));
        table.push_row(vec![
            (ep + 1).to_string(),
            m.attempts.to_string(),
            secs(m.recovery_s()),
        ]);
        if ep == 0 {
            first_attempts = m.attempts;
        }
        last_attempts = m.attempts;
        // Let the system settle (and incarnations age) between episodes.
        station.run_for(SimDuration::from_secs(60));
    }
    exp.blocks.push(format!(
        "First episode took {first_attempts} attempts; after learning, episodes take \
         {last_attempts} (the oracle now recommends the joint cell directly).\n"
    ));
    exp.observations.push((
        "learning:final-attempts".into(),
        1.0,
        f64::from(last_attempts),
    ));
    exp.tables.push(table);
    exp
}

/// **Ablation** — the automatic tree optimizer (§7 future work): re-derives
/// the paper's trees from the trivial tree.
pub fn ablation_optimizer(_run: RunConfig) -> Experiment {
    let mut exp = Experiment::new(
        "ablation-optimizer",
        "Automatic restart-tree search re-derives the hand-designed trees",
    );
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    let model = cfg.paper_failure_model();
    let start = rr_core::TreeSpec::cell("mercury")
        .with_components(names::SPLIT)
        .build()
        .unwrap_or_else(|e| panic!("{}: {e:?}", "tree I over split components"));

    for (quality, label) in [
        (OracleQuality::Perfect, "perfect oracle"),
        (
            OracleQuality::Faulty { undershoot: 0.3 },
            "faulty oracle (p=0.3)",
        ),
    ] {
        let opt = optimize_tree(&start, &model, &cost, quality, OptimizerConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e:?}", "optimizable"));
        let derivation: Vec<String> = opt.derivation.iter().map(|m| format!("  - {m}")).collect();
        exp.blocks.push(format!(
            "Optimized tree under {label} (expected MTTR {:.2}s):\n{}\nDerivation:\n{}\n",
            opt.expected_mttr_s,
            render_tree(&opt.tree),
            derivation.join("\n"),
        ));
        exp.observations.push((
            format!("optimizer:{label}"),
            1.0, // the [ses,str] consolidation must be found in either case
            f64::from(u8::from(
                rr_core::optimize::find_group(&opt.tree, &[names::SES, names::STR]).is_some(),
            )),
        ));
    }
    exp
}

/// **Endurance** — hours of operation under the full Table 1 failure mix:
/// measured availability per tree, validating the analytic
/// `MTTF/(MTTF+MTTR)` model against the live system (the availability claim
/// behind the paper's headline).
pub fn endurance(run: RunConfig) -> Experiment {
    use mercury::measure::system_downtime;
    use rr_sim::{FaultKind, FaultScript, SimTime};

    let mut exp = Experiment::new(
        "endurance",
        "Measured availability over 6 simulated hours under the Table 1 failure mix",
    );
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    let horizon_s = 6.0 * 3600.0;
    let trials = run.trials.clamp(1, 3);

    let mut table = Table::new(
        "Availability: simulated vs analytic",
        vec![
            "Tree".into(),
            "Failures injected".into(),
            "Downtime (s)".into(),
            "Availability (sim)".into(),
            "Availability (analytic)".into(),
        ],
    );

    for variant in [TreeVariant::I, TreeVariant::II, TreeVariant::V] {
        let model = if variant.is_split() {
            cfg.paper_failure_model()
        } else {
            cfg.unsplit_failure_model()
        };
        let mut injected_total = 0usize;
        let mut downtime_total = 0.0;
        let mut avail_total = 0.0;
        for t in 0..trials {
            let seed = run.seed + 100 + t as u64;
            let mut station =
                Station::new(cfg.clone(), variant, Box::new(PerfectOracle::new()), seed)
                    .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
            station.warm_up();
            let start = station.now();
            let horizon = start + SimDuration::from_secs_f64(horizon_s);
            // Build the failure schedule from the model. (The joint pbcom
            // mode needs the poison hook; its rate is small and it is
            // exercised by table4, so endurance injects it as a plain kill.)
            let mut rng = SimRng::new(seed ^ 0xFA17);
            let mut script = FaultScript::new();
            for mode in model.modes() {
                let d = Dist::exponential(mode.mttf_s());
                let mut t = start;
                loop {
                    t += d.sample(&mut rng);
                    if t >= horizon {
                        break;
                    }
                    script.push(t, mode.trigger.clone(), FaultKind::Crash);
                }
            }
            injected_total += script.faults().len();
            // Drive the schedule through the station's injection API so the
            // trace carries inject marks.
            let mut events: Vec<(SimTime, String)> = script
                .faults()
                .iter()
                .map(|f| (f.at, f.target.clone()))
                .collect();
            events.sort_by_key(|&(t, _)| t);
            for (at, target) in events {
                let wait = at.saturating_since(station.now());
                station.run_for(wait);
                // Skip if the component is already down (overlapping faults).
                if station
                    .state_of(&target)
                    .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"))
                    == rr_sim::ProcessState::Running
                {
                    station
                        .inject_kill(&target)
                        .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
                }
            }
            let rest = horizon.saturating_since(station.now());
            station.run_for(rest);
            // Let the final episode drain.
            station.run_for(SimDuration::from_secs(60));
            let comps = station.components().to_vec();
            let (down, avail) = system_downtime(station.trace(), &comps, start, horizon);
            downtime_total += down.as_secs_f64();
            avail_total += avail;
        }
        let analytic = expected_availability_for(&model, &cost, variant).unwrap_or(f64::NAN);
        let sim_avail = avail_total / trials as f64;
        table.push_row(vec![
            variant.to_string(),
            (injected_total / trials).to_string(),
            format!("{:.1}", downtime_total / trials as f64),
            format!("{sim_avail:.6}"),
            format!("{analytic:.6}"),
        ]);
        exp.observations
            .push((format!("availability:{variant}"), analytic, sim_avail));
    }
    exp.blocks.push(
        "Partial restarts convert most of tree I's downtime into uptime; the\n\
         analytic MTTF/(MTTF+MTTR) model tracks the measured availability.\n"
            .to_string(),
    );
    exp.tables.push(table);
    exp
}

fn expected_availability_for(
    model: &rr_core::model::FailureModel,
    cost: &rr_core::SimpleCostModel,
    variant: TreeVariant,
) -> Option<f64> {
    use rr_core::analysis::expected_availability;
    expected_availability(
        &variant
            .tree()
            .unwrap_or_else(|e| panic!("{}: {e:?}", "paper tree builds")),
        model,
        cost,
        OracleQuality::Perfect,
    )
    .ok()
}

/// **Ablation** — proactive rejuvenation (§3/§7): beacon-driven preventive
/// restarts pre-empt pbcom's aging failures.
pub fn ablation_rejuvenation(run: RunConfig) -> Experiment {
    let mut exp = Experiment::new(
        "ablation-rejuvenation",
        "Beacon-driven rejuvenation vs aging failures",
    );
    let mut table = Table::new(
        "2 hours of frequent fedr failures (which age pbcom)",
        vec![
            "Rejuvenation".into(),
            "Aging crashes".into(),
            "Planned rejuvenations".into(),
        ],
    );
    for (threshold, label) in [(None, "off"), (Some(0.5), "aging >= 0.5")] {
        let mut cfg = StationConfig::paper();
        cfg.rejuvenation_aging_threshold = threshold;
        let mut station = Station::new(
            cfg,
            TreeVariant::III,
            Box::new(PerfectOracle::new()),
            run.seed + 55,
        )
        .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
        station.warm_up();
        let mut rng = SimRng::new(run.seed ^ 0x0DD);
        let d = Dist::exponential(600.0); // fedr MTTF: 10 minutes
        let horizon = station.now() + SimDuration::from_secs(2 * 3600);
        loop {
            let gap = d.sample(&mut rng);
            let next = station.now() + gap;
            if next >= horizon {
                break;
            }
            station.run_for(gap);
            if station
                .state_of(names::FEDR)
                .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"))
                == rr_sim::ProcessState::Running
            {
                station
                    .inject_kill(names::FEDR)
                    .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
            }
        }
        station.run_for(SimDuration::from_secs(120));
        let aging = station.trace().mark_times("aging-crash:pbcom").count();
        let rejuv = station.trace().mark_times("rejuvenate:pbcom").count();
        table.push_row(vec![
            label.to_string(),
            aging.to_string(),
            rejuv.to_string(),
        ]);
        exp.observations.push((
            format!("aging-crashes:{label}"),
            if threshold.is_none() { 1.0 } else { 0.0 },
            aging as f64,
        ));
    }
    exp.blocks.push(
        "With rejuvenation on, REC restarts pbcom at a moment of its choosing\n\
         (planned, cheap downtime) before the aging bug fires.\n"
            .to_string(),
    );
    exp.tables.push(table);
    exp
}

/// Runs every experiment.
pub fn all(run: RunConfig) -> Vec<Experiment> {
    vec![
        table1(run),
        table2(run),
        figures(run),
        table4(run),
        correlated_faults(run),
        headline(run),
        endurance(run),
        pass_data_loss(run),
        ablation_oracle_sweep(run),
        ablation_ping_period(run),
        ablation_learning(run),
        ablation_optimizer(run),
        ablation_rejuvenation(run),
        crate::chaos::experiment(run),
        crate::overload::experiment(run),
        crate::checkpoint::experiment(run),
        crate::flow::experiment(run),
    ]
}

//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple aligned text table.
///
/// ```
/// use rr_harness::tables::Table;
/// let mut t = Table::new("Demo", vec!["Tree".into(), "MTTR".into()]);
/// t.push_row(vec!["I".into(), "24.75".into()]);
/// let out = t.render();
/// assert!(out.contains("Tree"));
/// assert!(out.contains("24.75"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Table {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// The rows added so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders a horizontal ASCII bar chart: one row per `(label, value)`,
/// scaled to `width` characters at the maximum value.
///
/// ```
/// use rr_harness::tables::bar_chart;
/// let chart = bar_chart(&[("tree I".into(), 24.75), ("tree V".into(), 5.96)], 40);
/// assert!(chart.lines().count() == 2);
/// assert!(chart.contains("tree I"));
/// ```
///
/// # Panics
///
/// Panics if `rows` is empty, `width` is zero, or any value is negative.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    assert!(!rows.is_empty(), "empty chart");
    assert!(width > 0, "zero width");
    let max = rows
        .iter()
        .map(|&(_, v)| {
            assert!(v >= 0.0, "negative bar value {v}");
            v
        })
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let n = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} |{} {value:.2}\n",
            "█".repeat(n.max(if *value > 0.0 { 1 } else { 0 }))
        ));
    }
    out
}

/// Formats a seconds quantity the way the paper's tables do.
pub fn secs(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a paper-vs-measured pair with relative error.
pub fn versus(paper: f64, measured: f64) -> String {
    let rel = if paper != 0.0 {
        (measured - paper) / paper * 100.0
    } else {
        0.0
    };
    format!("{measured:.2} (paper {paper:.2}, {rel:+.1}%)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", vec!["a".into(), "long-header".into()]);
        t.push_row(vec!["xxxxxxxx".into(), "1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "T");
        // Header and data rows have equal width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert!(lines[2].contains('+'));
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new("T", vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = bar_chart(
            &[("a".into(), 10.0), ("b".into(), 5.0), ("c".into(), 0.0)],
            20,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        let bars: Vec<usize> = lines.iter().map(|l| l.matches('█').count()).collect();
        assert_eq!(bars[0], 20);
        assert_eq!(bars[1], 10);
        assert_eq!(bars[2], 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn bar_chart_rejects_empty() {
        bar_chart(&[], 10);
    }

    #[test]
    fn versus_formats_relative_error() {
        let s = versus(10.0, 11.0);
        assert!(s.contains("+10.0%"), "{s}");
    }
}

#![allow(clippy::disallowed_methods)]
//! Golden-trace regression suite.
//!
//! Runs the canonical scenario set ([`rr_harness::golden::golden_scenarios`])
//! on every tree variant under `StationConfig::paper()` with fixed seeds,
//! normalizes the resulting traces ([`rr_harness::golden::normalize`]) and
//! compares them byte-for-byte against the recordings under the
//! repository-level `tests/golden/`. Any drift in recovery ordering, episode
//! boundaries, or cure attribution fails the build with a line diff; the
//! actual trace is written next to the golden as `<name>.actual.txt` so CI
//! can upload it.
//!
//! Every scenario is statically verified by `rr-lint` before it runs
//! ([`rr_harness::golden::run_golden_scenario`] refuses deny diagnostics).
//!
//! To re-record after an intentional behaviour change:
//!
//! ```text
//! GOLDEN_RECORD=1 cargo test -p rr-harness --test golden
//! ```

use std::fs;

use mercury::config::names;
use mercury::config::StationConfig;
use mercury::station::{Station, TreeVariant};
use rr_core::PerfectOracle;
use rr_harness::golden::{diff, golden_dir, golden_scenarios, run_golden_scenario};
use rr_harness::report::render_timeline;
use rr_sim::SimDuration;

#[test]
fn golden_traces_match() {
    let dir = golden_dir();
    let record = std::env::var_os("GOLDEN_RECORD").is_some();
    if record {
        fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut failures = Vec::new();
    for sc in golden_scenarios() {
        let actual = run_golden_scenario(&sc);
        let path = dir.join(format!("{}.txt", sc.name));
        if record {
            fs::write(&path, &actual).expect("record golden");
            continue;
        }
        let expected = match fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                failures.push(format!("{}: golden file missing ({e})", sc.name));
                continue;
            }
        };
        let actual_path = dir.join(format!("{}.actual.txt", sc.name));
        if let Some(d) = diff(&expected, &actual) {
            fs::write(&actual_path, &actual).expect("write actual trace");
            failures.push(format!(
                "{}: trace drifted (actual written to {}):\n{d}",
                sc.name,
                actual_path.display()
            ));
        } else {
            // Drop any stale drift artifact from a previous failing run.
            let _ = fs::remove_file(&actual_path);
        }
    }
    assert!(
        failures.is_empty(),
        "golden-trace drift in {} scenario(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Runs the tree-III pbcom kill with telemetry enabled and renders the
/// full snapshot: timeline, JSON export, and Prometheus export. Everything
/// in it is deterministic (virtual time, sorted metric keys), so the
/// snapshot is golden-recordable like the traces.
fn run_telemetry_scenario() -> String {
    let mut cfg = StationConfig::paper();
    cfg.telemetry_enabled = true;
    let mut station = Station::new(
        cfg,
        TreeVariant::III,
        Box::new(PerfectOracle::new()),
        0xD5_2072,
    )
    .expect("valid station");
    station.warm_up();
    station.inject_kill(names::PBCOM).expect("known component");
    station.run_for(SimDuration::from_secs(80));
    let telemetry = station.telemetry();
    format!(
        "{}
=== json ===
{}

=== prometheus ===
{}",
        render_timeline(&telemetry),
        telemetry.to_json(),
        telemetry.to_prometheus()
    )
}

/// Golden telemetry snapshot: the episode accounting for a canonical
/// scenario must not drift. Uses the same record/compare flow as the trace
/// goldens (`GOLDEN_RECORD=1` re-records; drift writes an `.actual.txt`).
#[test]
fn golden_telemetry_snapshot_matches() {
    let dir = golden_dir();
    let record = std::env::var_os("GOLDEN_RECORD").is_some();
    let actual = run_telemetry_scenario();
    let path = dir.join("tree3-kill-pbcom.telemetry.txt");
    if record {
        fs::create_dir_all(&dir).expect("create golden dir");
        fs::write(&path, &actual).expect("record telemetry golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("telemetry golden missing ({e}); run GOLDEN_RECORD=1"));
    let actual_path = dir.join("tree3-kill-pbcom.telemetry.actual.txt");
    if let Some(d) = diff(&expected, &actual) {
        fs::write(&actual_path, &actual).expect("write actual telemetry");
        panic!(
            "telemetry snapshot drifted (actual written to {}):
{d}",
            actual_path.display()
        );
    }
    let _ = fs::remove_file(&actual_path);
}

#[test]
fn golden_traces_deterministic() {
    // Re-running a scenario in the same process must reproduce the trace
    // byte-for-byte: the simulation is a pure function of (scenario, seed).
    for sc in golden_scenarios() {
        let first = run_golden_scenario(&sc);
        let second = run_golden_scenario(&sc);
        assert_eq!(
            first, second,
            "scenario {} is not deterministic across runs",
            sc.name
        );
    }
}

//! Golden-trace regression suite.
//!
//! Runs canonical single- and multi-fault recovery scenarios on every tree
//! variant under `StationConfig::paper()` with fixed seeds, normalizes the
//! resulting traces ([`rr_harness::golden::normalize`]) and compares them
//! byte-for-byte against the recordings under the repository-level
//! `tests/golden/`. Any drift in recovery ordering, episode boundaries, or
//! cure attribution fails the build with a line diff; the actual trace is
//! written next to the golden as `<name>.actual.txt` so CI can upload it.
//!
//! To re-record after an intentional behaviour change:
//!
//! ```text
//! GOLDEN_RECORD=1 cargo test -p rr-harness --test golden
//! ```

use std::fs;
use std::path::PathBuf;

use mercury::config::names;
use mercury::config::StationConfig;
use mercury::station::{Station, TreeVariant};
use rr_core::PerfectOracle;
use rr_harness::golden::{diff, normalize};
use rr_harness::report::render_timeline;
use rr_sim::SimDuration;

/// How a scenario injects its fault(s).
enum Kind {
    /// Kill one component.
    Single(&'static str),
    /// The §4.4 poisoned-fedr correlated failure (cured only by a joint
    /// \[fedr, pbcom\] restart).
    CorrelatedPbcom,
    /// Two components in independent cells killed at the same instant.
    IndependentPair(&'static str, &'static str),
    /// Kill `first`; after `stagger_s`, kill `second` (optionally with a
    /// joint \[fedr, pbcom\] cure hint) while the first episode is still in
    /// flight — the overlap forces promotion to the least common ancestor.
    OverlapPair {
        first: &'static str,
        second: &'static str,
        joint_hint: bool,
        stagger_s: f64,
    },
}

struct Scenario {
    name: &'static str,
    variant: TreeVariant,
    seed: u64,
    kind: Kind,
}

fn scenarios() -> Vec<Scenario> {
    use Kind::*;
    vec![
        // Single-fault scenarios: recorded before the parallel scheduler
        // landed; byte-identity here is the "paper() unchanged on single
        // faults" guarantee.
        Scenario {
            name: "tree1-kill-rtu",
            variant: TreeVariant::I,
            seed: 0xD5_2002,
            kind: Single(names::RTU),
        },
        Scenario {
            name: "tree2-kill-rtu",
            variant: TreeVariant::II,
            seed: 0xD5_2012,
            kind: Single(names::RTU),
        },
        Scenario {
            name: "tree3-kill-rtu",
            variant: TreeVariant::III,
            seed: 0xD5_2022,
            kind: Single(names::RTU),
        },
        Scenario {
            name: "tree4-kill-rtu",
            variant: TreeVariant::IV,
            seed: 0xD5_2032,
            kind: Single(names::RTU),
        },
        Scenario {
            name: "tree5-kill-rtu",
            variant: TreeVariant::V,
            seed: 0xD5_2042,
            kind: Single(names::RTU),
        },
        Scenario {
            name: "tree2-kill-fedrcom",
            variant: TreeVariant::II,
            seed: 0xD5_2052,
            kind: Single(names::FEDRCOM),
        },
        Scenario {
            name: "tree2-kill-ses",
            variant: TreeVariant::II,
            seed: 0xD5_2062,
            kind: Single(names::SES),
        },
        Scenario {
            name: "tree3-kill-pbcom",
            variant: TreeVariant::III,
            seed: 0xD5_2072,
            kind: Single(names::PBCOM),
        },
        Scenario {
            name: "tree4-correlated-pbcom",
            variant: TreeVariant::IV,
            seed: 0xD5_2082,
            kind: CorrelatedPbcom,
        },
        Scenario {
            name: "tree5-correlated-pbcom",
            variant: TreeVariant::V,
            seed: 0xD5_2092,
            kind: CorrelatedPbcom,
        },
        // Multi-fault scenarios: concurrent suspicions exercising the
        // parallel scheduler (independent episodes and LCA merges).
        Scenario {
            name: "tree2-pair-rtu-ses",
            variant: TreeVariant::II,
            seed: 0xD5_20A2,
            kind: IndependentPair(names::RTU, names::SES),
        },
        Scenario {
            name: "tree3-pair-fedr-pbcom",
            variant: TreeVariant::III,
            seed: 0xD5_20B2,
            kind: IndependentPair(names::FEDR, names::PBCOM),
        },
        Scenario {
            name: "tree4-pair-rtu-fedr",
            variant: TreeVariant::IV,
            seed: 0xD5_20C2,
            kind: IndependentPair(names::RTU, names::FEDR),
        },
        Scenario {
            name: "tree5-pair-rtu-ses",
            variant: TreeVariant::V,
            seed: 0xD5_20D2,
            kind: IndependentPair(names::RTU, names::SES),
        },
        Scenario {
            name: "tree4-merge-fedr-pbcom",
            variant: TreeVariant::IV,
            seed: 0xD5_20E2,
            kind: OverlapPair {
                first: names::FEDR,
                second: names::PBCOM,
                joint_hint: true,
                stagger_s: 1.0,
            },
        },
        Scenario {
            name: "tree5-merge-fedr-pbcom",
            variant: TreeVariant::V,
            seed: 0xD5_20F2,
            kind: OverlapPair {
                first: names::FEDR,
                second: names::PBCOM,
                joint_hint: false,
                stagger_s: 1.0,
            },
        },
    ]
}

/// Runs one scenario to completion and returns its normalized trace.
fn run_scenario(sc: &Scenario) -> String {
    let mut station = Station::new(
        StationConfig::paper(),
        sc.variant,
        Box::new(PerfectOracle::new()),
        sc.seed,
    )
    .expect("valid station");
    station.warm_up();
    let start = station.now();
    match &sc.kind {
        Kind::Single(comp) => {
            station.inject_kill(comp).expect("known component");
        }
        Kind::CorrelatedPbcom => {
            station.inject_correlated_pbcom().expect("known component");
        }
        Kind::IndependentPair(a, b) => {
            station.inject_kill(a).expect("known component");
            station.inject_kill(b).expect("known component");
        }
        Kind::OverlapPair {
            first,
            second,
            joint_hint,
            stagger_s,
        } => {
            station.inject_kill(first).expect("known component");
            station.run_for(SimDuration::from_secs_f64(*stagger_s));
            if *joint_hint {
                station.set_cure_hint(second, [names::FEDR, names::PBCOM]);
            }
            station.inject_kill(second).expect("known component");
        }
    }
    station.run_for(SimDuration::from_secs(80));
    normalize(station.trace(), start)
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

#[test]
fn golden_traces_match() {
    let dir = golden_dir();
    let record = std::env::var_os("GOLDEN_RECORD").is_some();
    if record {
        fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut failures = Vec::new();
    for sc in scenarios() {
        let actual = run_scenario(&sc);
        let path = dir.join(format!("{}.txt", sc.name));
        if record {
            fs::write(&path, &actual).expect("record golden");
            continue;
        }
        let expected = match fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                failures.push(format!("{}: golden file missing ({e})", sc.name));
                continue;
            }
        };
        let actual_path = dir.join(format!("{}.actual.txt", sc.name));
        if let Some(d) = diff(&expected, &actual) {
            fs::write(&actual_path, &actual).expect("write actual trace");
            failures.push(format!(
                "{}: trace drifted (actual written to {}):\n{d}",
                sc.name,
                actual_path.display()
            ));
        } else {
            // Drop any stale drift artifact from a previous failing run.
            let _ = fs::remove_file(&actual_path);
        }
    }
    assert!(
        failures.is_empty(),
        "golden-trace drift in {} scenario(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Runs the tree-III pbcom kill with telemetry enabled and renders the
/// full snapshot: timeline, JSON export, and Prometheus export. Everything
/// in it is deterministic (virtual time, sorted metric keys), so the
/// snapshot is golden-recordable like the traces.
fn run_telemetry_scenario() -> String {
    let mut cfg = StationConfig::paper();
    cfg.telemetry_enabled = true;
    let mut station = Station::new(
        cfg,
        TreeVariant::III,
        Box::new(PerfectOracle::new()),
        0xD5_2072,
    )
    .expect("valid station");
    station.warm_up();
    station.inject_kill(names::PBCOM).expect("known component");
    station.run_for(SimDuration::from_secs(80));
    let telemetry = station.telemetry();
    format!(
        "{}
=== json ===
{}

=== prometheus ===
{}",
        render_timeline(&telemetry),
        telemetry.to_json(),
        telemetry.to_prometheus()
    )
}

/// Golden telemetry snapshot: the episode accounting for a canonical
/// scenario must not drift. Uses the same record/compare flow as the trace
/// goldens (`GOLDEN_RECORD=1` re-records; drift writes an `.actual.txt`).
#[test]
fn golden_telemetry_snapshot_matches() {
    let dir = golden_dir();
    let record = std::env::var_os("GOLDEN_RECORD").is_some();
    let actual = run_telemetry_scenario();
    let path = dir.join("tree3-kill-pbcom.telemetry.txt");
    if record {
        fs::create_dir_all(&dir).expect("create golden dir");
        fs::write(&path, &actual).expect("record telemetry golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("telemetry golden missing ({e}); run GOLDEN_RECORD=1"));
    let actual_path = dir.join("tree3-kill-pbcom.telemetry.actual.txt");
    if let Some(d) = diff(&expected, &actual) {
        fs::write(&actual_path, &actual).expect("write actual telemetry");
        panic!(
            "telemetry snapshot drifted (actual written to {}):
{d}",
            actual_path.display()
        );
    }
    let _ = fs::remove_file(&actual_path);
}

#[test]
fn golden_traces_deterministic() {
    // Re-running a scenario in the same process must reproduce the trace
    // byte-for-byte: the simulation is a pure function of (scenario, seed).
    for sc in scenarios() {
        let first = run_scenario(&sc);
        let second = run_scenario(&sc);
        assert_eq!(
            first, second,
            "scenario {} is not deterministic across runs",
            sc.name
        );
    }
}

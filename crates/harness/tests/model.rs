#![allow(clippy::disallowed_methods)]
//! Integration of the `rr-model` checker with the harness surface:
//!
//! * every golden scenario's recorded telemetry stream passes the
//!   happens-before verifier, and enabling telemetry does not perturb the
//!   golden trace (telemetry is observation-only);
//! * the seeded-violation fixture pair under the repository-level
//!   `tests/model-fixtures/` behaves as contracted — the clean scenario
//!   explores violation-free, the broken one is rejected with a minimized
//!   counterexample whose trace replays to the same violation.

use std::fs;
use std::path::PathBuf;

use mercury::station::TreeVariant;
use rr_harness::golden::{diff, golden_dir, golden_scenarios, run_golden_scenario_telemetry};
use rr_model::{check, hb, replay, scenario, CheckConfig, Model};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/model-fixtures")
}

fn load_model(file: &str) -> (Model, CheckConfig) {
    let path = fixtures_dir().join(file);
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    let sc = scenario::parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
    let variant = match sc.tree.as_str() {
        "I" => TreeVariant::I,
        "II" => TreeVariant::II,
        "III" => TreeVariant::III,
        "IV" => TreeVariant::IV,
        "V" => TreeVariant::V,
        other => panic!("{file}: unknown tree {other:?}"),
    };
    let cfg = CheckConfig {
        max_depth: sc.depth.unwrap_or(rr_model::DEFAULT_DEPTH),
        ..CheckConfig::default()
    };
    let model = Model::new(variant.tree().expect("variant builds"), &sc)
        .unwrap_or_else(|e| panic!("{file}: {e}"));
    (model, cfg)
}

/// Satellite: every episode stream the golden scenarios record — parallel
/// scheduler, LCA merges, correlated cures — verifies causally clean, and
/// the telemetry-enabled run leaves the golden trace byte-identical.
#[test]
fn golden_scenario_streams_pass_the_hb_verifier() {
    let dir = golden_dir();
    for sc in golden_scenarios() {
        let (trace, registry) = run_golden_scenario_telemetry(&sc);
        assert!(
            !registry.events().is_empty(),
            "{}: telemetry-enabled run recorded no episode events",
            sc.name
        );
        let violations = hb::verify_registry(&registry);
        assert!(
            violations.is_empty(),
            "{}: happens-before violations in recorded stream: {violations:#?}",
            sc.name
        );
        // Observation-only: the recorded golden must not see the registry.
        if let Ok(expected) = fs::read_to_string(dir.join(format!("{}.txt", sc.name))) {
            assert!(
                diff(&expected, &trace).is_none(),
                "{}: enabling telemetry changed the golden trace",
                sc.name
            );
        }
    }
}

#[test]
fn clean_fixture_explores_violation_free() {
    let (model, cfg) = load_model("clean.scenario");
    let outcome = check(&model, &cfg).expect("exploration fits the state budget");
    assert!(
        outcome.violation.is_none(),
        "clean fixture produced a counterexample:\n{}",
        outcome.violation.map(|c| c.render()).unwrap_or_default()
    );
    assert!(outcome.quiescent_states > 0, "no quiescent state reached");
}

#[test]
fn broken_fixture_is_rejected_with_a_replayable_counterexample() {
    let (model, cfg) = load_model("broken.scenario");
    let outcome = check(&model, &cfg).expect("exploration fits the state budget");
    let cex = outcome
        .violation
        .expect("the seeded bypass-planner bug must be caught");
    // Iterative deepening guarantees minimality; this particular seed is
    // lost at the very first accepted report.
    assert_eq!(cex.trace.len(), 2, "not minimal: {}", cex.render());
    let replayed = replay(&model, &cex.trace).expect("counterexample must replay");
    assert_eq!(replayed, cex.violation, "replay diverged from exploration");
    let rendered = cex.render();
    assert!(rendered.contains("mark inject:"), "{rendered}");
    assert!(rendered.contains("violation component-lost"), "{rendered}");
}

#[test]
fn overload_clean_fixture_explores_violation_free() {
    let (model, cfg) = load_model("overload-clean.scenario");
    let outcome = check(&model, &cfg).expect("exploration fits the state budget");
    assert!(
        outcome.violation.is_none(),
        "overload-clean fixture produced a counterexample:\n{}",
        outcome.violation.map(|c| c.render()).unwrap_or_default()
    );
    assert!(outcome.quiescent_states > 0, "no quiescent state reached");
}

#[test]
fn overload_starve_fixture_is_rejected_with_a_minimized_counterexample() {
    let (model, cfg) = load_model("overload-starve.scenario");
    let outcome = check(&model, &cfg).expect("exploration fits the state budget");
    let cex = outcome
        .violation
        .expect("the seeded starve-deferred bug must be caught");
    // Minimal: inject, defer, rollover — then the queue is stuck for good.
    assert_eq!(cex.trace.len(), 3, "not minimal: {}", cex.render());
    let replayed = replay(&model, &cex.trace).expect("counterexample must replay");
    assert_eq!(replayed, cex.violation, "replay diverged from exploration");
    let rendered = cex.render();
    assert!(rendered.contains("mark defer:"), "{rendered}");
    assert!(
        rendered.contains("violation deferred-starved"),
        "{rendered}"
    );
}

/// Acceptance: the starvation invariant holds violation-free on every tree
/// variant at the default exploration depth — the §4.4 correlated pattern
/// under an admission controller that may defer any report.
#[test]
fn starvation_invariant_holds_on_all_trees_at_default_depth() {
    for variant in [
        TreeVariant::I,
        TreeVariant::II,
        TreeVariant::III,
        TreeVariant::IV,
        TreeVariant::V,
    ] {
        let comps = variant.components();
        let mut text = String::from("tree X\noracle perfect\nadmission\n");
        // Two faults per tree: the first two components, the second carrying
        // a correlated cure over both, so deferral interleaves with merges.
        text.push_str(&format!("fault {}\n", comps[0]));
        if comps.len() > 1 {
            text.push_str(&format!(
                "fault {} cures {} {}\n",
                comps[1], comps[1], comps[0]
            ));
        }
        let sc = scenario::parse(&text).expect("valid scenario");
        let model = Model::new(variant.tree().expect("variant builds"), &sc)
            .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        let outcome =
            check(&model, &CheckConfig::default()).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        assert!(
            outcome.violation.is_none(),
            "{variant:?}: admission exploration found a violation:\n{}",
            outcome.violation.map(|c| c.render()).unwrap_or_default()
        );
        assert_eq!(outcome.depth, rr_model::DEFAULT_DEPTH);
        assert!(
            outcome.quiescent_states > 0,
            "{variant:?}: liveness checked"
        );
    }
}

/// The two explorations are deterministic end to end: same outcome object,
/// same counterexample, byte-identical rendering.
#[test]
fn fixture_explorations_are_deterministic() {
    let (model, cfg) = load_model("broken.scenario");
    let a = check(&model, &cfg).expect("first run");
    let b = check(&model, &cfg).expect("second run");
    assert_eq!(a, b);
}

#![allow(clippy::disallowed_methods)]
//! Property test: parallel recovery of independent faults is never worse
//! than the sequential schedule, per component, on the same seed.
//!
//! Both stations see an identical world — same tree, same seed, same two
//! components killed at the same instant in independent cells — and differ
//! only in `StationConfig::serial_recovery`. For every injected component,
//! the time it takes to become (and stay) ready again under the parallel
//! scheduler must be no worse than under the sequential baseline, modulo
//! the one cost parallelism cannot avoid: the §3.1 boot-contention
//! surcharge (k concurrently booting components slow each other by
//! `1 + contention_quadratic·(k−1)²`). Group recovery — the time until
//! *both* components are back — must always be at least as good in
//! parallel, contention included.
//!
//! (The companion guarantee — single-fault `StationConfig::paper()` traces
//! are byte-identical before and after the parallel scheduler — is enforced
//! by the golden-trace suite in `tests/golden.rs`.)

use mercury::config::{names, StationConfig};
use mercury::station::{Station, TreeVariant};
use rr_core::PerfectOracle;
use rr_sim::{check, SimDuration, SimRng, SimTime};

/// Independent-cell pairs per tree variant (both components live in disjoint
/// restart cells, so the parallel plan keeps two concurrent episodes).
const PAIRS: &[(TreeVariant, &str, &str)] = &[
    (TreeVariant::II, names::RTU, names::SES),
    (TreeVariant::III, names::FEDR, names::PBCOM),
    (TreeVariant::IV, names::RTU, names::FEDR),
    (TreeVariant::V, names::RTU, names::SES),
];

/// Runs one trial and returns each injected component's recovery time in
/// seconds: from injection to the last `ready:` mark (readiness, because the
/// sequential baseline may cure a deferred component through another
/// episode's deadline escalation, which never restarts it by name).
fn per_component_recovery(
    variant: TreeVariant,
    a: &str,
    b: &str,
    serial: bool,
    seed: u64,
) -> [f64; 2] {
    let mut cfg = StationConfig::paper();
    cfg.serial_recovery = serial;
    let mut station =
        Station::new(cfg, variant, Box::new(PerfectOracle::new()), seed).expect("valid station");
    station.warm_up();
    let mut phase = SimRng::new(seed ^ 0xA5A5);
    station.randomize_injection_phase(&mut phase);
    let injected = station.inject_kill(a).expect("known component");
    station.inject_kill(b).expect("known component");
    station.run_for(SimDuration::from_secs(200));
    [a, b].map(|comp| recovery_of(&station, comp, injected, serial))
}

fn recovery_of(station: &Station, comp: &str, injected: SimTime, serial: bool) -> f64 {
    station
        .trace()
        .mark_times(&format!("ready:{comp}"))
        .filter(|&t| t >= injected)
        .last()
        .unwrap_or_else(|| panic!("{comp} never became ready (serial={serial})"))
        .saturating_since(injected)
        .as_secs_f64()
}

/// Worst-case boot-contention factor when both components' cells reboot at
/// once: k is the total component count under the two (disjoint) cells.
fn contention_allowance(variant: TreeVariant, a: &str, b: &str) -> f64 {
    let tree = variant.tree().expect("paper tree builds");
    let k: usize = [a, b]
        .iter()
        .map(|c| {
            let cell = tree.cell_of_component(c).expect("component attached");
            tree.components_under(cell).len()
        })
        .sum();
    1.0 + StationConfig::paper().contention_quadratic * ((k - 1) as f64).powi(2)
}

#[test]
fn parallel_never_worse_per_component() {
    check::run("parallel_never_worse_per_component", 8, |rng| {
        let (variant, a, b) = PAIRS[rng.next_below(PAIRS.len() as u64) as usize];
        let seed = rng.next_u64();
        let serial = per_component_recovery(variant, a, b, true, seed);
        let parallel = per_component_recovery(variant, a, b, false, seed);
        let allowance = contention_allowance(variant, a, b);
        for (i, comp) in [a, b].iter().enumerate() {
            assert!(
                parallel[i] <= serial[i] * allowance + 1e-9,
                "{variant} {comp} seed {seed:#x}: parallel {:.3} s > serial {:.3} s × {allowance:.4}",
                parallel[i],
                serial[i]
            );
        }
        // Contention included, the group is never slower in parallel.
        let group_serial = serial[0].max(serial[1]);
        let group_parallel = parallel[0].max(parallel[1]);
        assert!(
            group_parallel <= group_serial + 1e-9,
            "{variant} {a}+{b} seed {seed:#x}: parallel group {group_parallel:.3} s > serial {group_serial:.3} s"
        );
    });
}

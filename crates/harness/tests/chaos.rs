#![allow(clippy::disallowed_methods)]
//! Acceptance tests for the degraded-communication fault model.
//!
//! Three promises of the hardened configuration, checked end to end:
//!
//! (a) an hour of 5% message loss on every link produces **zero** failure-
//!     detector false positives — no detections, no restarts;
//! (b) a hard failure (the component dies again after every restart)
//!     escalates through the parent cell and ends **quarantined**, without
//!     ever exceeding the restart budget, while the rest of the station keeps
//!     recovering normally;
//! (c) chaos campaigns across trees I–V cure every crash, hang, and zombie
//!     injection that stays below the restart budget.

use mercury::config::{names, StationConfig};
use mercury::measure::measure_recovery;
use mercury::station::{Station, TreeVariant};
use rr_core::PerfectOracle;
use rr_harness::chaos::{run_campaign, ChaosConfig};
use rr_sim::{LinkQuality, SimDuration, TraceKind};

/// Recovery-action mark prefixes that must never fire without a real failure.
const ACTIONS: [&str; 5] = ["detect:", "stale:", "restart:", "giveup:", "quarantine:"];

#[test]
fn an_hour_of_five_percent_loss_causes_no_false_positives() {
    let mut station = Station::new(
        StationConfig::hardened(),
        TreeVariant::II,
        Box::new(PerfectOracle::new()),
        0xA11CE,
    )
    .expect("valid station");
    station.warm_up();
    station.degrade_all_links(Some(LinkQuality::lossy(0.05)));
    let start = station.now();
    station.run_for(SimDuration::from_secs(3600));

    let fired: Vec<String> = station
        .trace()
        .iter()
        .filter(|e| e.time >= start && e.kind == TraceKind::Mark)
        .filter(|e| {
            ACTIONS.iter().any(|p| e.label.starts_with(p))
                || e.label == "rec-restarts:fd"
                || e.label == "fd-restarts:rec"
        })
        .map(|e| e.to_string())
        .collect();
    assert!(fired.is_empty(), "false positives under 5% loss: {fired:?}");

    // Belt and braces: no process was ever killed or restarted either.
    let lifecycle_churn = station
        .trace()
        .iter()
        .filter(|e| e.time >= start)
        .filter(|e| {
            matches!(
                e.kind,
                TraceKind::Crashed | TraceKind::Hung | TraceKind::Restarted
            )
        })
        .count();
    assert_eq!(lifecycle_churn, 0, "processes churned under loss alone");
}

#[test]
fn the_paper_detector_convicts_innocents_under_the_same_loss() {
    // Contrast case: the paper's single-missed-ping detector (threshold 1)
    // false-positives within minutes under the loss the hardened detector
    // shrugs off — this is exactly why the suspicion knobs exist.
    let mut station = Station::new(
        StationConfig::paper(),
        TreeVariant::II,
        Box::new(PerfectOracle::new()),
        0xA11CE,
    )
    .expect("valid station");
    station.warm_up();
    station.degrade_all_links(Some(LinkQuality::lossy(0.05)));
    let start = station.now();
    station.run_for(SimDuration::from_secs(300));
    let false_detects = station
        .trace()
        .iter()
        .filter(|e| e.time >= start && e.kind == TraceKind::Mark)
        .filter(|e| e.label.starts_with("detect:"))
        .count();
    assert!(
        false_detects > 0,
        "expected the un-hardened detector to false-positive under 5% loss"
    );
}

#[test]
fn a_hard_failure_escalates_and_is_quarantined_within_budget() {
    let cfg = StationConfig::hardened();
    let mut station = Station::new(
        cfg.clone(),
        TreeVariant::II,
        Box::new(PerfectOracle::new()),
        0xB0B,
    )
    .expect("valid station");
    station.warm_up();
    let at = station
        .inject_hard_failure(names::RTU)
        .expect("known component");
    // Each failed attempt burns the 45 s restart deadline plus backoff;
    // escalation_limit attempts fit comfortably in 20 simulated minutes.
    station.run_for(SimDuration::from_secs(1200));

    let quarantined_at = station
        .trace()
        .first_mark_at_or_after(at, "quarantine:rtu")
        .expect("hard failure must end in quarantine");
    assert!(
        station
            .trace()
            .iter()
            .any(|e| e.kind == TraceKind::Mark && e.label.starts_with("giveup:rtu")),
        "quarantine must be preceded by an explicit give-up mark"
    );

    // The oracle escalated through the parent cell: at least one retry
    // pushed a button above R_rtu, restarting the whole station with it.
    let restart_marks: Vec<&str> = station
        .trace()
        .iter()
        .filter(|e| e.kind == TraceKind::Mark && e.label.starts_with("restart:rtu:"))
        .map(|e| e.label.as_str())
        .collect();
    assert!(
        restart_marks.iter().any(|l| l.contains(names::MBUS)),
        "expected escalation past rtu's own cell, got {restart_marks:?}"
    );

    // The restart budget held: no more attempts than the escalation limit,
    // which itself sits inside the per-window restart budget.
    let attempts = restart_marks.len() as u32;
    assert!(
        attempts <= cfg.escalation_limit,
        "{attempts} attempts exceed the escalation limit {}",
        cfg.escalation_limit
    );
    assert!(attempts <= cfg.max_restarts_per_window);

    // Quarantine is terminal: not a single rtu restart after the give-up.
    let post_quarantine = station
        .trace()
        .iter()
        .filter(|e| e.time > quarantined_at && e.kind == TraceKind::Mark)
        .filter(|e| e.label.starts_with("restart:rtu:"))
        .count();
    assert_eq!(
        post_quarantine, 0,
        "restart storm continued after quarantine"
    );

    // Graceful degradation: the station runs on without rtu and still cures
    // ordinary failures elsewhere.
    let at2 = station.inject_kill(names::SES).expect("known component");
    station.run_for(SimDuration::from_secs(150));
    let measurement = measure_recovery(station.trace(), names::SES, at2)
        .expect("the degraded station must still cure ordinary failures");
    assert!(measurement.recovery_s() > 0.0);
}

#[test]
fn chaos_campaigns_cure_every_fault_across_all_trees() {
    for &variant in TreeVariant::ALL.iter() {
        let report = run_campaign(variant, &ChaosConfig::default());
        assert!(
            report.ok(),
            "{variant:?} campaign violations: {:#?}",
            report.violations
        );
        for inj in &report.injections {
            assert!(
                !inj.quarantined,
                "{variant:?}: {} {} was quarantined below the restart budget",
                inj.kind, inj.component
            );
            assert!(
                inj.recovery_s.is_some(),
                "{variant:?}: {} of {} at {} was not cured",
                inj.kind,
                inj.component,
                inj.at
            );
        }
    }
}

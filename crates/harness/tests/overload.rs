//! Overload campaign regression: admission control must turn pass-window
//! misses into deferrals, not quarantines.

use mercury::station::TreeVariant;
use rr_harness::overload::{run_pair, sustained_config, OverloadConfig};

/// The headline acceptance claim: under the default flash crowd, the
/// admission arm misses strictly fewer pass windows than the unpaced arm on
/// every tree variant — because the unpaced arm burns its restart-storm
/// budget on the burst and quarantines the critical components.
#[test]
fn flash_crowd_admission_strictly_reduces_misses_on_every_tree() {
    let cfg = OverloadConfig::default();
    for variant in TreeVariant::ALL {
        let (base, paced) = run_pair(variant, &cfg);
        assert!(
            base.misses > 0,
            "tree {variant}: the flash crowd must actually cost the baseline passes"
        );
        assert!(
            paced.misses < base.misses,
            "tree {variant}: admission missed {}/{} vs baseline {}/{} — not strictly better",
            paced.misses,
            paced.passes,
            base.misses,
            base.passes
        );
        assert!(
            !base.quarantined.is_empty(),
            "tree {variant}: the baseline arm should exhaust the storm budget"
        );
        assert!(
            paced.quarantined.is_empty(),
            "tree {variant}: pacing should keep every component inside the budget, \
             quarantined: {:?}",
            paced.quarantined
        );
        assert!(paced.deferred > 0 && paced.shed > 0, "tree {variant}");
    }
}

/// Sustained overload (Poisson crash schedule) on one representative split
/// tree: pacing still wins, and the price shows up as longer per-failure
/// MTTR — the deferred restarts wait in the queue.
#[test]
fn sustained_overload_pacing_trades_mttr_for_pass_coverage() {
    let cfg = sustained_config(OverloadConfig::default().seed);
    let (base, paced) = run_pair(TreeVariant::IV, &cfg);
    assert!(
        paced.misses < base.misses,
        "admission {}/{} vs baseline {}/{}",
        paced.misses,
        paced.passes,
        base.misses,
        base.passes
    );
    assert!(paced.quarantined.is_empty(), "{:?}", paced.quarantined);
    assert!(
        paced.mean_mttr_s() > base.mean_mttr_s(),
        "deferral should cost per-failure recovery latency: paced {:.1} s vs base {:.1} s",
        paced.mean_mttr_s(),
        base.mean_mttr_s()
    );
}

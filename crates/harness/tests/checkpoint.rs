#![allow(clippy::disallowed_methods)]
//! Golden regression for the checkpoint campaign's MTTR table.
//!
//! Runs the full default state-size sweep — cold and rehydrate arms on the
//! same seed — renders the MTTR table plus the failure-rate crossover at
//! the calibrated 256 KiB size, and compares byte-for-byte against the
//! committed recording at `tests/golden/checkpoint-mttr.txt`. The golden is
//! the acceptance artifact for the crash-safe store: it must show a cell
//! where rehydration beats the cold MTTR *and* a cell where the plain
//! restart wins.
//!
//! To re-record after an intentional behaviour change:
//!
//! ```text
//! GOLDEN_RECORD=1 cargo test -p rr-harness --test checkpoint
//! ```

use std::fs;

use rr_harness::checkpoint::{crossover_table, mttr_table, CheckpointConfig};
use rr_harness::golden::{diff, golden_dir};

#[test]
fn checkpoint_mttr_table_matches_golden() {
    let cfg = CheckpointConfig::default();
    let (table, pairs) = mttr_table(&cfg);

    // The two regimes must be present before we even look at the golden:
    // rehydrate wins at the smallest state size, cold wins at the largest.
    let (small_cold, small_rehy) = &pairs[0];
    assert!(
        small_rehy.mean_mttr_s() < small_cold.mean_mttr_s(),
        "smallest state: rehydrate ({:.2}s) must beat cold ({:.2}s)",
        small_rehy.mean_mttr_s(),
        small_cold.mean_mttr_s()
    );
    let (big_cold, big_rehy) = &pairs[pairs.len() - 1];
    assert!(
        big_cold.mean_mttr_s() < big_rehy.mean_mttr_s(),
        "largest state: cold ({:.2}s) must beat rehydrate ({:.2}s)",
        big_cold.mean_mttr_s(),
        big_rehy.mean_mttr_s()
    );

    let calibrated = pairs
        .iter()
        .find(|(c, _)| (c.state_kb - 256.0).abs() < f64::EPSILON)
        .expect("default sweep includes the calibrated 256 KiB size");
    let sweep = crossover_table(&calibrated.0, &calibrated.1);
    let actual = format!("{}\n{}", table.render(), sweep.render());

    let dir = golden_dir();
    let path = dir.join("checkpoint-mttr.txt");
    if std::env::var_os("GOLDEN_RECORD").is_some() {
        fs::create_dir_all(&dir).expect("create golden dir");
        fs::write(&path, &actual).expect("record golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("checkpoint golden missing ({e}); run GOLDEN_RECORD=1"));
    if let Some(d) = diff(&expected, &actual) {
        let actual_path = dir.join("checkpoint-mttr.actual.txt");
        fs::write(&actual_path, &actual).expect("write actual table");
        panic!(
            "checkpoint MTTR table drifted (actual written to {}):\n{d}",
            actual_path.display()
        );
    }
}

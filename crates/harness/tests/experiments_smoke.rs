#![allow(clippy::disallowed_methods)]
//! Smoke tests for the experiment harness: every experiment runs with a tiny
//! trial budget and produces coherent output (tables, observations within
//! loose tolerances, well-formed report).

use rr_harness::experiments::{self, RunConfig};
use rr_harness::report::render_markdown;

fn tiny() -> RunConfig {
    RunConfig { trials: 3, seed: 7 }
}

#[test]
fn table1_validates_fault_generator() {
    let exp = experiments::table1(tiny());
    assert_eq!(exp.observations.len(), 5);
    assert!(
        exp.worst_relative_error() < 0.10,
        "worst error {:.1}%",
        exp.worst_relative_error() * 100.0
    );
}

#[test]
fn table2_reproduces_shape() {
    let exp = experiments::table2(tiny());
    assert_eq!(exp.observations.len(), 10);
    assert!(
        exp.worst_relative_error() < 0.10,
        "worst error {:.1}%",
        exp.worst_relative_error() * 100.0
    );
    // Tree I rows are flat; tree II rows vary per component.
    let tree_i: Vec<f64> = exp
        .observations
        .iter()
        .filter(|(l, _, _)| l.starts_with("treeI:"))
        .map(|&(_, _, m)| m)
        .collect();
    let spread = tree_i.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - tree_i.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 1.5, "tree I must be flat, spread {spread}");
}

#[test]
fn figures_render_all_trees() {
    let exp = experiments::figures(tiny());
    // Figure 2 + trees I-V.
    assert_eq!(exp.blocks.len(), 6);
    assert!(exp.blocks.iter().any(|b| b.contains("R_[ses,str]")));
    let table = &exp.tables[0];
    assert_eq!(table.rows().len(), 5);
}

#[test]
fn headline_improvement_factor_in_range() {
    let exp = experiments::headline(tiny());
    let (_, paper, measured) = exp
        .observations
        .iter()
        .find(|(l, _, _)| l == "improvement-factor")
        .expect("factor observation");
    assert_eq!(*paper, 4.0);
    assert!((3.0..6.0).contains(measured), "factor {measured}");
}

#[test]
fn oracle_sweep_has_crossover_shape() {
    let exp = experiments::ablation_oracle_sweep(tiny());
    let table = &exp.tables[0];
    // At p=0 the trees tie (tree V is never better with a perfect oracle);
    // for p>0 tree V wins every row.
    for row in table.rows() {
        assert_eq!(row[3], "true", "V must win or tie at p={}", row[0]);
    }
}

#[test]
fn report_renders_everything() {
    let exps = vec![experiments::figures(tiny()), experiments::headline(tiny())];
    let md = render_markdown(&exps, "smoke");
    assert!(md.contains("# EXPERIMENTS"));
    assert!(md.contains("## figures"));
    assert!(md.contains("## headline"));
    assert!(md.contains("improvement-factor"));
    // Tree drawings are fenced.
    assert!(md.contains("```text"));
}

#[test]
fn optimizer_ablation_rederives_consolidation() {
    let exp = experiments::ablation_optimizer(tiny());
    assert_eq!(exp.observations.len(), 2);
    for (_, want, got) in &exp.observations {
        assert_eq!(want, got, "optimizer must find the [ses,str] group");
    }
}

#![allow(clippy::disallowed_methods)]
//! Telemetry acceptance tests: the registry's online §4.1 bookkeeping must
//! agree with the offline trace scan in `mercury::measure`, and the
//! exporters must carry the whole story.

use rr_harness::chaos::{run_campaign, ChaosConfig};
use rr_harness::report::render_timeline;

use mercury::config::StationConfig;
use mercury::measure::measure_recovery;
use mercury::station::{Station, TreeVariant};
use rr_core::PerfectOracle;
use rr_sim::{Registry, SimDuration};

/// A chaos campaign on tree III yields per-component recovery-time
/// histograms whose means agree with the offline `measure_recovery` values
/// for the same injections — the two implementations of the §4.1 recovery
/// definition (online registry vs. post-hoc trace scan) must not drift.
#[test]
fn chaos_campaign_telemetry_means_agree_with_measure() {
    let report = run_campaign(TreeVariant::III, &ChaosConfig::default());
    assert!(report.ok(), "violations: {:?}", report.violations);

    let telemetry = &report.telemetry;
    assert!(
        telemetry.is_enabled(),
        "the hardened campaign config must record telemetry"
    );

    // Group the campaign's own cured measurements by component.
    let mut measured: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for inj in &report.injections {
        if let Some(r) = inj.recovery_s {
            measured.entry(inj.component.clone()).or_default().push(r);
        }
    }
    assert!(
        !measured.is_empty(),
        "the campaign must cure at least one injection"
    );
    for (comp, rs) in &measured {
        let hist = telemetry
            .duration("recovery_time", comp)
            .unwrap_or_else(|| panic!("no recovery_time histogram for {comp}"));
        assert_eq!(
            hist.count() as usize,
            rs.len(),
            "{comp}: one observation per cured injection"
        );
        let offline_mean = rs.iter().sum::<f64>() / rs.len() as f64;
        let online_mean = hist.mean_s();
        assert!(
            (online_mean - offline_mean).abs() < 0.01,
            "{comp}: telemetry mean {online_mean:.4}s vs measure.rs mean {offline_mean:.4}s"
        );
    }

    // Campaign-level counters line up with the report.
    let total_restarts: usize = report.restarts.values().sum();
    assert_eq!(
        telemetry.counter("restarts_issued", "") as usize,
        total_restarts,
        "restarts_issued must match the trace-derived restart count"
    );
    assert!(telemetry.counter("fd_pings_sent", "") > 0);
}

/// The single-fault case, checked to sub-millisecond agreement: the online
/// registry and the offline scan read the *same* ready instant.
#[test]
fn single_fault_telemetry_matches_measure_exactly() {
    let mut cfg = StationConfig::paper();
    cfg.telemetry_enabled = true;
    for component in ["pbcom", "rtu", "mbus"] {
        let mut station = Station::new(
            cfg.clone(),
            TreeVariant::III,
            Box::new(PerfectOracle::new()),
            0x7E1E_0001,
        )
        .expect("valid station");
        station.warm_up();
        let injected = station.inject_kill(component).expect("known component");
        station.run_for(SimDuration::from_secs(90));
        let offline = measure_recovery(station.trace(), component, injected)
            .expect("single failures recover")
            .recovery_s();
        let telemetry = station.telemetry();
        let hist = telemetry
            .duration("recovery_time", component)
            .expect("telemetry observed the recovery");
        assert_eq!(hist.count(), 1);
        let online = hist.mean_s();
        assert!(
            (online - offline).abs() < 1e-6,
            "{component}: online {online:.6}s vs offline {offline:.6}s"
        );
    }
}

/// The timeline renderer and both exporters carry the episode.
#[test]
fn exporters_and_timeline_cover_the_episode() {
    let mut cfg = StationConfig::paper();
    cfg.telemetry_enabled = true;
    let mut station = Station::new(
        cfg,
        TreeVariant::III,
        Box::new(PerfectOracle::new()),
        0x7E1E_0002,
    )
    .expect("valid station");
    station.warm_up();
    station.inject_kill("ses").expect("known component");
    station.run_for(SimDuration::from_secs(90));
    let telemetry = station.telemetry();

    let timeline = render_timeline(&telemetry);
    for needle in [
        "episode timeline",
        "injected",
        "restarting",
        "cured",
        "recovery_time",
    ] {
        assert!(
            timeline.contains(needle),
            "timeline missing {needle:?}:\n{timeline}"
        );
    }

    let json = telemetry.to_json();
    for needle in [
        "\"counters\"",
        "\"restarts_issued\"",
        "\"durations\"",
        "\"recovery_time{ses}\"",
        "\"events\"",
    ] {
        assert!(json.contains(needle), "JSON missing {needle}");
    }
    // Hand-rolled JSON must at least be balanced.
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced JSON"
    );

    let prom = telemetry.to_prometheus();
    for needle in [
        "# TYPE rr_restarts_issued counter",
        "# TYPE rr_recovery_time_seconds histogram",
        "rr_recovery_time_seconds_count",
        "rr_recovery_time_seconds_sum",
        "le=\"+Inf\"",
    ] {
        assert!(prom.contains(needle), "Prometheus text missing {needle}");
    }
}

/// Telemetry left disabled (the paper configuration) stays empty even
/// through a full recovery episode — the zero-overhead-when-off contract.
#[test]
fn disabled_telemetry_records_nothing() {
    let mut station = Station::new(
        StationConfig::paper(),
        TreeVariant::III,
        Box::new(PerfectOracle::new()),
        0x7E1E_0003,
    )
    .expect("valid station");
    station.warm_up();
    station.inject_kill("rtu").expect("known component");
    station.run_for(SimDuration::from_secs(90));
    let telemetry = station.telemetry();
    assert!(!telemetry.is_enabled());
    assert!(telemetry.events().is_empty());
    assert_eq!(telemetry.counter("restarts_issued", ""), 0);
    assert!(telemetry.durations().next().is_none());
    assert_eq!(telemetry.to_json(), Registry::disabled().to_json());
}

//! rr-abs: interval abstract interpretation over the restart-group algebra.
//!
//! The §3.2/§4 algebra in [`rr_core::analysis`] answers "is this tree
//! transformation profitable?" at a *point*: one calibrated failure model,
//! one cost model. Calibrations drift — boot times change with hardware,
//! failure rates with workload — and a decision made at the point says
//! nothing about its neighborhood. This crate re-answers the question over
//! parameter *boxes*: every calibrated scalar becomes an interval, every
//! algebra operation an outward-rounded abstract transformer, and the answer
//! becomes a certified three-valued verdict — the transformation is
//! profitable at **every** point of the box ([`Verdict::Always`]), at
//! **none** ([`Verdict::Never`]), or the box straddles the break-even
//! surface and is bisected into certified sub-regions
//! ([`refine::certify`]).
//!
//! The layers, bottom-up:
//!
//! - [`interval`]: the domain — closed `f64` intervals with directed
//!   outward rounding, so soundness composes per operation.
//! - [`boxes`]: named products of intervals ([`ParamBox`]) acting as
//!   multipliers on a calibrated base model (`"boot:pbcom" ↦ [0.8, 1.2]`).
//! - [`algebra`]: the lifted §3.2 relations (availability, group MTTF/MTTR
//!   bounds, weighted MTTR, mode probabilities).
//! - [`cost`]: [`IntervalCostModel`], the abstract
//!   [`SimpleCostModel`](rr_core::analysis::SimpleCostModel).
//! - [`form`]: linear cost forms with syntactic term cancellation — the cure
//!   for the interval dependency problem when subtracting two MTTRs that
//!   read the same parameters.
//! - [`scenario`]: a before/after tree pair evaluated abstractly (interval
//!   profit over a box) and concretely (point profit via the unmodified core
//!   algebra).
//! - [`advisor`]: Table 3's "useful when" conditions quantified over boxes.
//! - [`refine`]: worklist bisection producing a [`ProfitabilityMap`] whose
//!   regions carry machine-checked profitability certificates.
//!
//! Soundness contract, enforced by the property suite in
//! `tests/soundness.rs`: for any box and any concretely sampled point inside
//! it, the concrete evaluation lies inside the abstract interval — so a
//! region certified `Always` can never contain a point where the
//! transformation loses.

#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod advisor;
pub mod algebra;
pub mod boxes;
pub mod cost;
pub mod error;
pub mod form;
pub mod interval;
pub mod refine;
pub mod scenario;

pub use advisor::Verdict;
pub use boxes::ParamBox;
pub use cost::IntervalCostModel;
pub use error::AbsError;
pub use form::{mode_recovery_form, CostForm, Term};
pub use interval::Interval;
pub use refine::{certify, ProfitabilityMap, RefineConfig, Region};
pub use scenario::Scenario;

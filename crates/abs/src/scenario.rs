//! Transformation scenarios: a before/after tree pair over a shared failure
//! and cost model, with profitability evaluated both abstractly (over a
//! [`ParamBox`]) and concretely (at a sampled point).
//!
//! Profitability is `MTTR_before − MTTR_after` in expected seconds per
//! failure: positive means the transformation pays off. The abstract
//! evaluation goes through [`mode_recovery_form`] so that cost terms the two
//! trees share cancel symbolically before intervals are introduced (see
//! [`form`](crate::form)); the concrete evaluation calls the unmodified
//! [`rr_core::analysis::expected_system_mttr_s`] twice, which is exactly what
//! the soundness suite checks the abstract result against.

use std::collections::BTreeMap;

use rr_core::analysis::{expected_system_mttr_s, OracleQuality, SimpleCostModel};
use rr_core::model::{FailureMode, FailureModel};
use rr_core::tree::RestartTree;
use rr_core::TreeError;

use crate::algebra::mode_probabilities;
use crate::boxes::ParamBox;
use crate::cost::IntervalCostModel;
use crate::error::AbsError;
use crate::form::mode_recovery_form;
use crate::interval::Interval;

/// A candidate tree transformation under a drifting parameter environment.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    before: RestartTree,
    after: RestartTree,
    quality: OracleQuality,
    base_modes: Vec<FailureMode>,
    base_cost: SimpleCostModel,
}

impl Scenario {
    /// Builds a scenario. Both trees must attach every component the modes
    /// mention.
    ///
    /// # Errors
    ///
    /// Returns [`AbsError::Analysis`] with the first unattached component if
    /// a mode references a component missing from either tree, or
    /// [`AbsError::EmptyBox`] if `base_modes` is empty.
    pub fn new(
        name: impl Into<String>,
        before: RestartTree,
        after: RestartTree,
        quality: OracleQuality,
        base_modes: Vec<FailureMode>,
        base_cost: SimpleCostModel,
    ) -> Result<Scenario, AbsError> {
        if base_modes.is_empty() {
            return Err(AbsError::EmptyBox);
        }
        let model: FailureModel = base_modes.iter().cloned().collect();
        for tree in [&before, &after] {
            if let Err(missing) = model.validate_against(tree) {
                let first = missing.into_iter().next().unwrap_or_default();
                return Err(TreeError::UnknownComponent(first).into());
            }
        }
        Ok(Scenario {
            name: name.into(),
            before,
            after,
            quality,
            base_modes,
            base_cost,
        })
    }

    /// The scenario's name (e.g. `"split-fedrcom"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tree before the transformation.
    pub fn before(&self) -> &RestartTree {
        &self.before
    }

    /// The tree after the transformation.
    pub fn after(&self) -> &RestartTree {
        &self.after
    }

    /// The oracle quality both trees are evaluated under.
    pub fn quality(&self) -> OracleQuality {
        self.quality
    }

    /// The base (calibrated, undrifted) failure modes.
    pub fn base_modes(&self) -> &[FailureMode] {
        &self.base_modes
    }

    /// The base (calibrated, undrifted) cost model.
    pub fn base_cost(&self) -> &SimpleCostModel {
        &self.base_cost
    }

    /// Every parameter dimension this scenario reads: the cost dimensions of
    /// the base model plus one `rate:<mode>` dimension per failure mode, in
    /// sorted order. A drift box over these covers the scenario completely.
    pub fn dim_names(&self) -> Vec<String> {
        let mut names = IntervalCostModel::dim_names(&self.base_cost);
        names.extend(self.base_modes.iter().map(|m| format!("rate:{}", m.name)));
        names.sort();
        names.dedup();
        names
    }

    /// The base failure-mode rate scaled by the box's `rate:<mode>`
    /// multiplier interval.
    fn rate_interval(&self, mode: &FailureMode, pbox: &ParamBox) -> Result<Interval, AbsError> {
        let m = pbox.multiplier(&format!("rate:{}", mode.name));
        Ok(Interval::point(mode.rate_per_hour)?.mul(m))
    }

    /// Sound enclosure of `MTTR_before − MTTR_after` over every point of
    /// `pbox`: per-mode recovery forms subtract symbolically, each surviving
    /// delta is weighted by its interval mode probability.
    ///
    /// # Errors
    ///
    /// Returns [`AbsError`] if a mode references components outside a tree or
    /// a rate interval degenerates to zero.
    pub fn abstract_profit(&self, pbox: &ParamBox) -> Result<Interval, AbsError> {
        let icost = IntervalCostModel::from_base(&self.base_cost, pbox)?;
        let rates = self
            .base_modes
            .iter()
            .map(|m| self.rate_interval(m, pbox))
            .collect::<Result<Vec<_>, _>>()?;
        let probs = mode_probabilities(&rates)?;

        let mut profit = Interval::point(0.0)?;
        for (mode, p) in self.base_modes.iter().zip(probs) {
            let before = mode_recovery_form(&self.before, mode, self.quality)?;
            let after = mode_recovery_form(&self.after, mode, self.quality)?;
            let delta = before.sub(&after);
            if delta.is_zero() {
                // The transformation does not touch this mode's recovery:
                // exactly zero contribution, no interval blow-up.
                continue;
            }
            profit = profit.add(p.mul(delta.eval(&icost)));
        }
        Ok(profit)
    }

    /// The concrete failure model at a sampled point of the box.
    pub fn concrete_model(&self, point: &BTreeMap<String, f64>) -> FailureModel {
        self.base_modes
            .iter()
            .map(|m| {
                let mult = ParamBox::point_multiplier(point, &format!("rate:{}", m.name));
                FailureMode {
                    rate_per_hour: m.rate_per_hour * mult,
                    ..m.clone()
                }
            })
            .collect()
    }

    /// Concrete `MTTR_before − MTTR_after` at a sampled point, computed by
    /// the unmodified core algebra ([`expected_system_mttr_s`] twice) — the
    /// reference value [`abstract_profit`](Self::abstract_profit) must
    /// enclose.
    ///
    /// # Errors
    ///
    /// Returns [`AbsError::Analysis`] if the core evaluation fails.
    pub fn concrete_profit(&self, point: &BTreeMap<String, f64>) -> Result<f64, AbsError> {
        let cost = IntervalCostModel::concrete_at(&self.base_cost, point);
        let model = self.concrete_model(point);
        let before = expected_system_mttr_s(&self.before, &model, &cost, self.quality)?;
        let after = expected_system_mttr_s(&self.after, &model, &cost, self.quality)?;
        Ok(before - after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_core::tree::TreeSpec;

    fn base_cost() -> SimpleCostModel {
        SimpleCostModel::new(0.9, 2.0)
            .with_boot("ses", 5.25)
            .with_boot("str", 5.11)
            .with_contention(0.0119)
            .with_sync_pair("ses", "str", 3.35)
            .with_sync_pair("str", "ses", 3.75)
    }

    fn consolidate_scenario() -> Scenario {
        let before = TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_ses").with_component("ses"))
            .with_child(TreeSpec::cell("R_str").with_component("str"))
            .build()
            .unwrap();
        let after = TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .build()
            .unwrap();
        Scenario::new(
            "consolidate-ses-str",
            before,
            after,
            OracleQuality::Perfect,
            // Solo cures: in tree III each solo restart pays the sync
            // penalty, in tree IV the joint cell restarts both at once.
            vec![
                FailureMode::solo("ses", "ses", 0.2).unwrap(),
                FailureMode::solo("str", "str", 0.2).unwrap(),
            ],
            base_cost(),
        )
        .unwrap()
    }

    #[test]
    fn point_box_profit_matches_concrete() {
        let s = consolidate_scenario();
        let empty = ParamBox::new();
        let abs = s.abstract_profit(&empty).unwrap();
        let concrete = s.concrete_profit(&BTreeMap::new()).unwrap();
        assert!(
            (abs.midpoint() - concrete).abs() < 1e-9,
            "abs {abs} vs concrete {concrete}"
        );
        assert!(abs.width() < 1e-9, "point box must stay tight: {abs}");
        // Consolidating the correlated ses/str pair pays off (tree III → IV).
        assert!(abs.strictly_positive());
    }

    #[test]
    fn drifted_profit_encloses_sampled_points() {
        let s = consolidate_scenario();
        let pbox = ParamBox::drift(s.dim_names(), 0.2).unwrap();
        let abs = s.abstract_profit(&pbox).unwrap();
        for t in [0.0, 0.2, 0.5, 0.9, 1.0] {
            let point = pbox.sample_with(|_, lo, hi| lo + t * (hi - lo));
            let concrete = s.concrete_profit(&point).unwrap();
            assert!(abs.contains(concrete), "t = {t}: {concrete} not in {abs}");
        }
    }

    #[test]
    fn dim_names_include_rates_and_costs() {
        let s = consolidate_scenario();
        let names = s.dim_names();
        for expect in ["rate:ses", "rate:str", "boot:ses", "sync:str", "detect"] {
            assert!(names.iter().any(|n| n == expect), "{expect} missing");
        }
    }

    #[test]
    fn scenario_rejects_unattached_components() {
        let before = TreeSpec::cell("m").with_component("a").build().unwrap();
        let after = before.clone();
        let err = Scenario::new(
            "bad",
            before,
            after,
            OracleQuality::Perfect,
            vec![FailureMode::solo("ghost", "ghost", 1.0).unwrap()],
            SimpleCostModel::new(1.0, 1.0),
        )
        .unwrap_err();
        assert!(matches!(err, AbsError::Analysis(_)));
    }
}

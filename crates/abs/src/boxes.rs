//! Parameter boxes: named products of intervals.
//!
//! A [`ParamBox`] binds dimension names to intervals of *multipliers* applied
//! to a calibrated base model — `"rate:fedr-crash" ↦ [0.8, 1.2]` means "the
//! fedr crash rate drifts anywhere within ±20% of its measured value". A box
//! is the abstract analogue of a single parameter valuation; the advisor's
//! verdicts quantify over every point in it. Dimensions a box does not bind
//! are pinned to the point multiplier `1.0`.

use std::collections::BTreeMap;

use crate::error::AbsError;
use crate::interval::Interval;

/// A named box of parameter multipliers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamBox {
    dims: BTreeMap<String, Interval>,
}

impl ParamBox {
    /// The empty box (every parameter pinned at its base value).
    pub fn new() -> ParamBox {
        ParamBox::default()
    }

    /// A box drifting each of `names` by `±frac` around 1.
    ///
    /// # Errors
    ///
    /// Returns [`AbsError::MalformedDimension`] unless `0 <= frac < 1` is
    /// finite (a drift reaching 0 or below would let rates and costs vanish).
    pub fn drift<I, S>(names: I, frac: f64) -> Result<ParamBox, AbsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut b = ParamBox::new();
        for name in names {
            b = b.with_dim(name, 1.0 - frac, 1.0 + frac)?;
        }
        Ok(b)
    }

    /// Adds (or replaces) a dimension.
    ///
    /// # Errors
    ///
    /// Returns [`AbsError::MalformedDimension`] unless `0 < lo <= hi` and
    /// both are finite — multipliers must keep positive parameters positive.
    pub fn with_dim(mut self, name: impl Into<String>, lo: f64, hi: f64) -> Result<Self, AbsError> {
        let name = name.into();
        if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi) {
            return Err(AbsError::MalformedDimension { name, lo, hi });
        }
        self.dims.insert(
            name,
            Interval::new(lo, hi).unwrap_or_else(|e| unreachable!("checked: {e}")),
        );
        Ok(self)
    }

    /// The multiplier interval for `name`: the bound dimension, or the point
    /// `1.0` when unbound.
    pub fn multiplier(&self, name: &str) -> Interval {
        self.dims.get(name).copied().unwrap_or_else(|| {
            Interval::point(1.0).unwrap_or_else(|e| unreachable!("1.0 is finite: {e}"))
        })
    }

    /// The bound dimensions, in name order.
    pub fn dims(&self) -> impl Iterator<Item = (&str, Interval)> {
        self.dims.iter().map(|(n, iv)| (n.as_str(), *iv))
    }

    /// Number of bound dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the box binds no dimensions.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The largest relative width across dimensions — the refinement
    /// tolerance metric. Zero for the empty box.
    pub fn max_relative_width(&self) -> f64 {
        self.dims
            .values()
            .map(Interval::relative_width)
            .fold(0.0, f64::max)
    }

    /// Splits the box along its relatively widest dimension at the midpoint.
    /// Returns `None` if the box has no dimension of positive width.
    pub fn split(&self) -> Option<(ParamBox, ParamBox)> {
        let (name, iv) = self.dims.iter().max_by(|a, b| {
            a.1.relative_width()
                .partial_cmp(&b.1.relative_width())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        let (name, iv) = (name.clone(), *iv);
        if iv.width() <= 0.0 {
            return None;
        }
        let (lo_half, hi_half) = iv.bisect();
        let mut left = self.clone();
        let mut right = self.clone();
        left.dims.insert(name.clone(), lo_half);
        right.dims.insert(name.clone(), hi_half);
        Some((left, right))
    }

    /// A concrete point in the box: `pick(name, lo, hi)` chooses each bound
    /// dimension's multiplier (its result is clamped into the dimension);
    /// unbound parameters stay at 1.
    pub fn sample_with(
        &self,
        mut pick: impl FnMut(&str, f64, f64) -> f64,
    ) -> BTreeMap<String, f64> {
        self.dims
            .iter()
            .map(|(name, iv)| {
                let x = pick(name, iv.lo(), iv.hi()).clamp(iv.lo(), iv.hi());
                (name.clone(), x)
            })
            .collect()
    }

    /// The multiplier for `name` at a sampled point (1 when unbound).
    pub fn point_multiplier(point: &BTreeMap<String, f64>, name: &str) -> f64 {
        point.get(name).copied().unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_builds_symmetric_multipliers() {
        let b = ParamBox::drift(["rate:a", "boot:x"], 0.2).unwrap();
        assert_eq!(b.len(), 2);
        let m = b.multiplier("rate:a");
        assert_eq!((m.lo(), m.hi()), (0.8, 1.2));
        // Unbound dimension pins to 1.
        let one = b.multiplier("rate:ghost");
        assert_eq!((one.lo(), one.hi()), (1.0, 1.0));
    }

    #[test]
    fn malformed_dims_are_rejected() {
        assert!(ParamBox::new().with_dim("d", 1.2, 0.8).is_err());
        assert!(ParamBox::new().with_dim("d", 0.0, 1.0).is_err());
        assert!(ParamBox::new().with_dim("d", -0.5, 1.0).is_err());
        assert!(ParamBox::new().with_dim("d", 0.5, f64::NAN).is_err());
        assert!(ParamBox::drift(["d"], 1.0).is_err());
    }

    #[test]
    fn split_halves_the_widest_dimension() {
        let b = ParamBox::new()
            .with_dim("narrow", 0.95, 1.05)
            .unwrap()
            .with_dim("wide", 0.5, 2.0)
            .unwrap();
        let (l, r) = b.split().unwrap();
        assert_eq!(l.multiplier("narrow"), b.multiplier("narrow"));
        assert_eq!(l.multiplier("wide").lo(), 0.5);
        assert_eq!(l.multiplier("wide").hi(), r.multiplier("wide").lo());
        assert_eq!(r.multiplier("wide").hi(), 2.0);
        assert!(l.max_relative_width() < b.max_relative_width());
        // A pointwise box cannot split.
        let point = ParamBox::new().with_dim("p", 1.0, 1.0).unwrap();
        assert!(point.split().is_none());
        assert!(ParamBox::new().split().is_none());
    }

    #[test]
    fn sampling_stays_inside() {
        let b = ParamBox::drift(["a", "b"], 0.2).unwrap();
        let point = b.sample_with(|_, lo, hi| lo + 0.75 * (hi - lo));
        for (name, x) in &point {
            let iv = b.multiplier(name);
            assert!(iv.contains(*x));
        }
        // Out-of-range picks are clamped.
        let point = b.sample_with(|_, _, _| 99.0);
        assert!(point.values().all(|&x| x <= 1.2));
    }
}

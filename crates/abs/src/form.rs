//! Linear cost forms: symbolic recovery costs over named cost terms.
//!
//! Naively subtracting two interval MTTRs loses everything to the dependency
//! problem — `[a,b] − [a,b] = [a−b, b−a]`, not `0` — because interval
//! arithmetic forgets that both sides read the *same* uncertain parameters.
//! A [`CostForm`] keeps the cost symbolic instead: a linear combination of
//! [`Term`]s (detect latency, re-detect latency, restart of a specific
//! component set, a rapid-restart penalty). Two forms built over the same
//! parameters subtract *term-wise*, so shared terms cancel exactly before any
//! interval is introduced, and only the genuine difference between two
//! restart trees reaches interval evaluation. This is what lets the advisor
//! certify `MTTR_before − MTTR_after > 0` over a whole parameter box when the
//! raw subtraction would straddle zero.
//!
//! [`mode_recovery_form`] mirrors
//! [`expected_mode_recovery_s`](rr_core::analysis::expected_mode_recovery_s)
//! step for step; the agreement is enforced by tests evaluating both at
//! sampled points.

use std::collections::{BTreeMap, BTreeSet};

use rr_core::analysis::{CostModel, OracleQuality};
use rr_core::model::FailureMode;
use rr_core::tree::RestartTree;
use rr_core::TreeError;

use crate::cost::IntervalCostModel;
use crate::interval::Interval;

/// One symbolic cost parameter.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    /// Failure-detection latency (paid once per episode).
    Detect,
    /// Re-detection latency after a completed-but-wrong restart.
    Redetect,
    /// Restarting exactly this component set concurrently.
    Restart(BTreeSet<String>),
    /// The rapid-restart penalty of one component.
    Rapid(String),
}

/// A linear combination `Σ wᵢ · termᵢ` of cost terms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostForm {
    terms: BTreeMap<Term, f64>,
}

impl CostForm {
    /// The zero form.
    pub fn new() -> CostForm {
        CostForm::default()
    }

    /// Adds `weight · term`, dropping the term if its weight cancels to
    /// exactly zero.
    pub fn add_term(&mut self, term: Term, weight: f64) {
        use std::collections::btree_map::Entry;
        match self.terms.entry(term) {
            Entry::Vacant(slot) => {
                if weight != 0.0 {
                    slot.insert(weight);
                }
            }
            Entry::Occupied(mut slot) => {
                *slot.get_mut() += weight;
                if *slot.get() == 0.0 {
                    slot.remove();
                }
            }
        }
    }

    /// Adds `scale · other` term-wise.
    pub fn add_scaled(&mut self, other: &CostForm, scale: f64) {
        for (term, w) in &other.terms {
            self.add_term(term.clone(), w * scale);
        }
    }

    /// `self − other`, with syntactically identical terms cancelling exactly
    /// (equal weights subtract to `0.0` and vanish).
    #[must_use]
    pub fn sub(&self, other: &CostForm) -> CostForm {
        let mut out = self.clone();
        out.add_scaled(other, -1.0);
        out
    }

    /// The terms with non-zero weight, in term order.
    pub fn terms(&self) -> impl Iterator<Item = (&Term, f64)> {
        self.terms.iter().map(|(t, w)| (t, *w))
    }

    /// Whether the form is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Abstract evaluation: each term's interval from `cost`, combined with
    /// outward rounding.
    pub fn eval(&self, cost: &IntervalCostModel) -> Interval {
        let zero = Interval::point(0.0).unwrap_or_else(|e| unreachable!("0 is finite: {e}"));
        self.terms.iter().fold(zero, |acc, (term, w)| {
            let iv = match term {
                Term::Detect => cost.detection(),
                Term::Redetect => cost.redetection(),
                Term::Restart(comps) => {
                    let comps: Vec<String> = comps.iter().cloned().collect();
                    cost.restart(&comps)
                }
                Term::Rapid(c) => cost.rapid_restart_penalty(c),
            };
            acc.add(iv.scale(*w))
        })
    }

    /// Concrete evaluation at a point cost model (the value
    /// [`eval`](Self::eval) must enclose whenever `cost` encloses `point`).
    pub fn eval_point(&self, point: &dyn CostModel) -> f64 {
        self.terms
            .iter()
            .map(|(term, w)| {
                let v = match term {
                    Term::Detect => point.detection_s(),
                    Term::Redetect => point.redetection_s(),
                    Term::Restart(comps) => {
                        let comps: Vec<String> = comps.iter().cloned().collect();
                        point.restart_s(&comps)
                    }
                    Term::Rapid(c) => point.rapid_restart_penalty_s(c),
                };
                w * v
            })
            .sum()
    }
}

/// The symbolic expected recovery cost of one failure mode — the form whose
/// evaluation reproduces
/// [`expected_mode_recovery_s`](rr_core::analysis::expected_mode_recovery_s).
///
/// # Errors
///
/// Returns [`TreeError`] if the mode references components not in the tree.
pub fn mode_recovery_form(
    tree: &RestartTree,
    mode: &FailureMode,
    quality: OracleQuality,
) -> Result<CostForm, TreeError> {
    let minimal = tree.lowest_cover(&mode.cure_set)?;
    let own = tree
        .cell_of_component(&mode.trigger)
        .ok_or_else(|| TreeError::UnknownComponent(mode.trigger.clone()))?;

    let mut perfect = CostForm::new();
    perfect.add_term(Term::Detect, 1.0);
    perfect.add_term(
        Term::Restart(tree.components_under(minimal).into_iter().collect()),
        1.0,
    );
    let undershoot = match quality {
        OracleQuality::Perfect => return Ok(perfect),
        OracleQuality::Faulty { undershoot } => undershoot,
        OracleQuality::Naive => 1.0,
    };
    if own == minimal || undershoot == 0.0 {
        return Ok(perfect);
    }

    // Wrong-guess path, mirroring the concrete climb: restart the trigger's
    // own cell, re-detect, climb one level, until the minimal cell restarts.
    let mut wrong = CostForm::new();
    wrong.add_term(Term::Detect, 1.0);
    let mut restarted_counts: BTreeMap<String, u32> = BTreeMap::new();
    let mut cur = own;
    loop {
        let comps = tree.components_under(cur);
        wrong.add_term(Term::Restart(comps.iter().cloned().collect()), 1.0);
        for c in &comps {
            let count = restarted_counts.entry(c.clone()).or_insert(0);
            *count += 1;
            if *count > 1 {
                wrong.add_term(Term::Rapid(c.clone()), 1.0);
            }
        }
        if cur == minimal {
            break;
        }
        wrong.add_term(Term::Redetect, 1.0);
        cur = tree.parent(cur).unwrap_or(cur);
    }

    let mut total = CostForm::new();
    total.add_scaled(&perfect, 1.0 - undershoot);
    total.add_scaled(&wrong, undershoot);
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_core::analysis::{expected_mode_recovery_s, SimpleCostModel};
    use rr_core::tree::TreeSpec;

    use crate::boxes::ParamBox;

    fn cost() -> SimpleCostModel {
        SimpleCostModel::new(0.9, 2.0)
            .with_boot("mbus", 4.83)
            .with_boot("fedr", 4.86)
            .with_boot("pbcom", 20.34)
            .with_boot("ses", 5.25)
            .with_boot("str", 5.11)
            .with_boot("rtu", 4.69)
            .with_contention(0.0119)
            .with_sync_pair("ses", "str", 3.35)
            .with_sync_pair("str", "ses", 3.75)
            .with_rapid_restart_penalty("pbcom", 4.0)
    }

    fn tree_iv() -> RestartTree {
        TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
            .with_child(
                TreeSpec::cell("R_[fedr,pbcom]")
                    .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
                    .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom")),
            )
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
            .build()
            .unwrap()
    }

    #[test]
    fn form_point_eval_matches_concrete_recovery() {
        let tree = tree_iv();
        let c = cost();
        let joint =
            FailureMode::correlated("pbcom-joint", "pbcom", ["fedr", "pbcom"], 1.0).unwrap();
        for quality in [
            OracleQuality::Perfect,
            OracleQuality::Faulty { undershoot: 0.3 },
            OracleQuality::Naive,
        ] {
            for mode in [&FailureMode::solo("ses", "ses", 1.0).unwrap(), &joint] {
                let form = mode_recovery_form(&tree, mode, quality).unwrap();
                let direct = expected_mode_recovery_s(&tree, mode, &c, quality).unwrap();
                let via_form = form.eval_point(&c);
                assert!(
                    (direct - via_form).abs() < 1e-9,
                    "{}/{quality:?}: {direct} vs {via_form}",
                    mode.name
                );
            }
        }
    }

    #[test]
    fn abstract_eval_encloses_point_eval() {
        let tree = tree_iv();
        let base = cost();
        let pbox = ParamBox::drift(IntervalCostModel::dim_names(&base), 0.2).unwrap();
        let icost = IntervalCostModel::from_base(&base, &pbox).unwrap();
        let joint =
            FailureMode::correlated("pbcom-joint", "pbcom", ["fedr", "pbcom"], 1.0).unwrap();
        let form =
            mode_recovery_form(&tree, &joint, OracleQuality::Faulty { undershoot: 0.3 }).unwrap();
        let abs = form.eval(&icost);
        for t in [0.0, 0.3, 0.5, 0.8, 1.0] {
            let point = pbox.sample_with(|_, lo, hi| lo + t * (hi - lo));
            let concrete = IntervalCostModel::concrete_at(&base, &point);
            assert!(abs.contains(form.eval_point(&concrete)), "t = {t}");
        }
    }

    #[test]
    fn identical_forms_cancel_exactly() {
        let tree = tree_iv();
        let mode = FailureMode::solo("rtu", "rtu", 1.0).unwrap();
        let f = mode_recovery_form(&tree, &mode, OracleQuality::Perfect).unwrap();
        assert!(f.sub(&f).is_zero());
        // Shared terms cancel even between different oracle qualities when
        // the tree makes own == minimal (no wrong path exists for rtu).
        let g = mode_recovery_form(&tree, &mode, OracleQuality::Naive).unwrap();
        assert!(f.sub(&g).is_zero());
    }

    #[test]
    fn subtraction_keeps_only_the_difference() {
        // ses solo restart in tree III (own cell) vs tree IV (joint cell):
        // Detect cancels, the two Restart terms remain.
        let tree_iii = TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_ses").with_component("ses"))
            .with_child(TreeSpec::cell("R_str").with_component("str"))
            .build()
            .unwrap();
        let tree_iv = TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .build()
            .unwrap();
        let mode = FailureMode::solo("ses", "ses", 1.0).unwrap();
        let before = mode_recovery_form(&tree_iii, &mode, OracleQuality::Perfect).unwrap();
        let after = mode_recovery_form(&tree_iv, &mode, OracleQuality::Perfect).unwrap();
        let delta = before.sub(&after);
        let terms: Vec<_> = delta.terms().collect();
        assert_eq!(terms.len(), 2, "Detect must cancel: {terms:?}");
        assert!(terms.iter().all(|(t, _)| matches!(t, Term::Restart(_))));
        // And the delta evaluates to the concrete restart-cost difference.
        let c = cost();
        let solo = c.restart_s(&["ses".to_string()]);
        let joint = c.restart_s(&["ses".to_string(), "str".to_string()]);
        assert!((delta.eval_point(&c) - (solo - joint)).abs() < 1e-9);
    }
}

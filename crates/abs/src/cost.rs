//! The interval cost model: [`SimpleCostModel`] with every calibrated
//! parameter widened to an interval.
//!
//! Dimension naming convention (shared with [`ParamBox`] and the scenario
//! layer): `detect`, `redetect`, `contention` for the scalar knobs,
//! `boot:<component>`, `sync:<component>`, `rapid:<component>` for the
//! per-component ones, and `rate:<mode>` for failure-mode rates (handled by
//! the scenario, not here). Each dimension is a *multiplier* on the base
//! model's calibrated value.

use std::collections::BTreeMap;

use rr_core::analysis::{CostModel, SimpleCostModel};

use crate::boxes::ParamBox;
use crate::error::AbsError;
use crate::interval::Interval;

/// A cost model whose parameters are intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalCostModel {
    detection: Interval,
    redetection: Interval,
    boot: BTreeMap<String, Interval>,
    contention_quadratic: Interval,
    /// component → (sync peer, solo penalty interval).
    sync: BTreeMap<String, (String, Interval)>,
    rapid: BTreeMap<String, Interval>,
}

/// Widens `base * multiplier` into an interval.
fn widen(base: f64, m: Interval) -> Result<Interval, AbsError> {
    Interval::point(base).map(|b| b.mul(m))
}

impl IntervalCostModel {
    /// Lifts `base` over `pbox`: every parameter becomes
    /// `base value × multiplier interval` (unbound dimensions stay points).
    ///
    /// # Errors
    ///
    /// Returns [`AbsError::MalformedInterval`] if a base parameter is not
    /// finite.
    pub fn from_base(base: &SimpleCostModel, pbox: &ParamBox) -> Result<Self, AbsError> {
        let mut boot = BTreeMap::new();
        for (comp, s) in base.boot_times() {
            boot.insert(
                comp.to_string(),
                widen(s, pbox.multiplier(&format!("boot:{comp}")))?,
            );
        }
        let mut sync = BTreeMap::new();
        for (comp, peer, s) in base.sync_pairs() {
            sync.insert(
                comp.to_string(),
                (
                    peer.to_string(),
                    widen(s, pbox.multiplier(&format!("sync:{comp}")))?,
                ),
            );
        }
        let mut rapid = BTreeMap::new();
        for (comp, s) in base.rapid_restart_penalties() {
            rapid.insert(
                comp.to_string(),
                widen(s, pbox.multiplier(&format!("rapid:{comp}")))?,
            );
        }
        Ok(IntervalCostModel {
            detection: widen(base.detection_s(), pbox.multiplier("detect"))?,
            redetection: widen(base.redetection_s(), pbox.multiplier("redetect"))?,
            boot,
            contention_quadratic: widen(
                base.contention_quadratic(),
                pbox.multiplier("contention"),
            )?,
            sync,
            rapid,
        })
    }

    /// Every cost dimension name `base` exposes, in sorted order — the
    /// dimensions a full-drift box should bind.
    pub fn dim_names(base: &SimpleCostModel) -> Vec<String> {
        let mut names = vec![
            "contention".to_string(),
            "detect".to_string(),
            "redetect".to_string(),
        ];
        names.extend(base.boot_times().map(|(c, _)| format!("boot:{c}")));
        names.extend(base.sync_pairs().map(|(c, _, _)| format!("sync:{c}")));
        names.extend(
            base.rapid_restart_penalties()
                .map(|(c, _)| format!("rapid:{c}")),
        );
        names.sort();
        names
    }

    /// Instantiates `base` at a sampled point of the box (the concrete model
    /// the soundness suite evaluates).
    pub fn concrete_at(base: &SimpleCostModel, point: &BTreeMap<String, f64>) -> SimpleCostModel {
        let m = |name: String| ParamBox::point_multiplier(point, &name);
        let mut c = SimpleCostModel::new(
            base.detection_s() * m("detect".into()),
            base.redetection_s() * m("redetect".into()),
        )
        .with_contention(base.contention_quadratic() * m("contention".into()));
        for (comp, s) in base.boot_times() {
            c = c.with_boot(comp, s * m(format!("boot:{comp}")));
        }
        for (comp, peer, s) in base.sync_pairs() {
            c = c.with_sync_pair(comp, peer, s * m(format!("sync:{comp}")));
        }
        for (comp, s) in base.rapid_restart_penalties() {
            c = c.with_rapid_restart_penalty(comp, s * m(format!("rapid:{comp}")));
        }
        c
    }

    /// Detection latency interval.
    pub fn detection(&self) -> Interval {
        self.detection
    }

    /// Re-detection latency interval.
    pub fn redetection(&self) -> Interval {
        self.redetection
    }

    /// Rapid-restart penalty interval for `component` (point 0 if none).
    pub fn rapid_restart_penalty(&self, component: &str) -> Interval {
        self.rapid.get(component).copied().unwrap_or_else(|| {
            Interval::point(0.0).unwrap_or_else(|e| unreachable!("0 is finite: {e}"))
        })
    }

    /// The contention multiplier interval for `k` concurrent restarts:
    /// `1 + q·(k−1)²`, mirroring
    /// [`SimpleCostModel::contention_factor`].
    pub fn contention_factor(&self, k: usize) -> Interval {
        let one = Interval::point(1.0).unwrap_or_else(|e| unreachable!("1 is finite: {e}"));
        if k <= 1 {
            return one;
        }
        let sq = ((k - 1) as f64).powi(2);
        one.add(self.contention_quadratic.scale(sq))
    }

    /// Interval restart cost for exactly `components` concurrently,
    /// mirroring [`SimpleCostModel`]'s `restart_s`: the slowest member's
    /// boot (plus its solo-sync penalty when its peer is absent) times the
    /// contention factor.
    pub fn restart(&self, components: &[String]) -> Interval {
        let zero = Interval::point(0.0).unwrap_or_else(|e| unreachable!("0 is finite: {e}"));
        let mut slowest = zero;
        for comp in components {
            let boot = self.boot.get(comp).copied().unwrap_or(zero);
            let penalty = match self.sync.get(comp) {
                Some((peer, penalty)) if !components.contains(peer) => *penalty,
                _ => zero,
            };
            slowest = slowest.max(boot.add(penalty));
        }
        slowest.mul(self.contention_factor(components.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimpleCostModel {
        SimpleCostModel::new(0.9, 2.0)
            .with_boot("ses", 5.25)
            .with_boot("str", 5.11)
            .with_boot("pbcom", 20.34)
            .with_contention(0.0119)
            .with_sync_pair("ses", "str", 3.35)
            .with_rapid_restart_penalty("pbcom", 4.0)
    }

    #[test]
    fn point_box_reproduces_base_costs() {
        let model = IntervalCostModel::from_base(&base(), &ParamBox::new()).unwrap();
        let solo = model.restart(&["ses".to_string()]);
        let concrete = base().restart_s(&["ses".to_string()]);
        assert!(solo.contains(concrete));
        assert!(solo.width() < 1e-9, "point box should stay nearly exact");
        let pair = model.restart(&["ses".to_string(), "str".to_string()]);
        assert!(pair.contains(base().restart_s(&["ses".to_string(), "str".to_string()])));
    }

    #[test]
    fn drifted_box_encloses_sampled_costs() {
        let pbox = ParamBox::drift(IntervalCostModel::dim_names(&base()), 0.2).unwrap();
        let model = IntervalCostModel::from_base(&base(), &pbox).unwrap();
        for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let point = pbox.sample_with(|_, lo, hi| lo + t * (hi - lo));
            let concrete = IntervalCostModel::concrete_at(&base(), &point);
            for comps in [
                vec!["ses".to_string()],
                vec!["ses".to_string(), "str".to_string()],
                vec!["pbcom".to_string(), "ses".to_string(), "str".to_string()],
            ] {
                assert!(
                    model.restart(&comps).contains(concrete.restart_s(&comps)),
                    "restart({comps:?}) at t={t}"
                );
            }
            assert!(model.detection().contains(concrete.detection_s()));
            assert!(model.redetection().contains(concrete.redetection_s()));
            assert!(model
                .rapid_restart_penalty("pbcom")
                .contains(concrete.rapid_restart_penalty_s("pbcom")));
        }
    }

    #[test]
    fn dim_names_cover_every_parameter() {
        let names = IntervalCostModel::dim_names(&base());
        for expect in [
            "detect",
            "redetect",
            "contention",
            "boot:ses",
            "boot:str",
            "boot:pbcom",
            "sync:ses",
            "rapid:pbcom",
        ] {
            assert!(names.iter().any(|n| n == expect), "{expect} missing");
        }
    }
}

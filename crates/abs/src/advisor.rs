//! The abstract transformation advisor: Table 3's "useful when" conditions
//! evaluated over parameter *boxes* instead of points.
//!
//! Where the concrete advisor ([`rr_core::advisor::advise`]) answers "does
//! this transformation apply at these exact parameters?", the abstract
//! advisor answers one of three things about a whole box: the condition holds
//! at **every** point ([`Verdict::Always`]), at **no** point
//! ([`Verdict::Never`]), or the box genuinely straddles the threshold
//! ([`Verdict::Depends`]) and needs refinement
//! ([`refine`](crate::refine)). The thresholds mirror the concrete advisor's
//! constants exactly, so a `Depends` box always contains concrete points on
//! both sides of the decision.

use std::fmt;

use rr_core::advisor::OracleAssumption;

use crate::interval::Interval;

/// Mirror of the concrete advisor's consolidation threshold: consolidation
/// applies when `f_A + f_B ≤ CONSOLIDATE_RATIO · f_{A,B}`.
pub const CONSOLIDATE_RATIO: f64 = 0.25;

/// Mirror of the concrete advisor's disparate-cost threshold: promotion
/// applies when `restart(expensive) / restart(cheap) ≥ DISPARATE_COST_RATIO`.
pub const DISPARATE_COST_RATIO: f64 = 2.0;

/// A three-valued answer about a condition quantified over a box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The condition holds at every point of the box.
    Always,
    /// The condition holds at no point of the box.
    Never,
    /// The box contains points on both sides (or the abstraction cannot
    /// tell) — refine or report.
    Depends,
}

impl Verdict {
    /// Classifies a profitability interval: `Always` when the whole interval
    /// is strictly positive, `Never` when none of it is, `Depends` otherwise.
    pub fn from_profit(profit: Interval) -> Verdict {
        if profit.strictly_positive() {
            Verdict::Always
        } else if profit.non_positive() {
            Verdict::Never
        } else {
            Verdict::Depends
        }
    }

    /// Combines verdicts over a partition of the box: unanimous sub-regions
    /// keep their verdict, anything mixed is `Depends`.
    #[must_use]
    pub fn join(self, other: Verdict) -> Verdict {
        if self == other {
            self
        } else {
            Verdict::Depends
        }
    }

    /// Stable lower-case name (used in JSON artifacts and lint params).
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Always => "always",
            Verdict::Never => "never",
            Verdict::Depends => "depends",
        }
    }

    /// Parses [`as_str`](Self::as_str)'s output back.
    pub fn parse(s: &str) -> Option<Verdict> {
        match s {
            "always" => Some(Verdict::Always),
            "never" => Some(Verdict::Never),
            "depends" => Some(Verdict::Depends),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Abstract Table-3 consolidation condition
/// `f_A + f_B ≤ CONSOLIDATE_RATIO · f_{A,B}` over rate intervals.
pub fn consolidation_verdict(solo_sum: Interval, joint: Interval) -> Verdict {
    let threshold = joint.scale(CONSOLIDATE_RATIO);
    if solo_sum.hi() <= threshold.lo() {
        Verdict::Always
    } else if solo_sum.lo() > threshold.hi() {
        Verdict::Never
    } else {
        Verdict::Depends
    }
}

/// Abstract Table-3 promotion condition: the oracle may err **and** the
/// pair's restart costs are disparate,
/// `restart(expensive) ≥ DISPARATE_COST_RATIO · restart(cheap)`.
pub fn promotion_verdict(
    expensive_restart: Interval,
    cheap_restart: Interval,
    oracle: OracleAssumption,
) -> Verdict {
    if oracle == OracleAssumption::Perfect {
        // Table 3: promotion is useful only "when oracle is faulty".
        return Verdict::Never;
    }
    let threshold = cheap_restart.scale(DISPARATE_COST_RATIO);
    if expensive_restart.lo() >= threshold.hi() {
        Verdict::Always
    } else if expensive_restart.hi() < threshold.lo() {
        Verdict::Never
    } else {
        Verdict::Depends
    }
}

/// Abstract Table-3 grouping condition `f_{A,B} > 0` over a rate interval.
pub fn grouping_verdict(joint: Interval) -> Verdict {
    if joint.strictly_positive() {
        Verdict::Always
    } else if joint.non_positive() {
        Verdict::Never
    } else {
        Verdict::Depends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn verdict_from_profit_partitions_the_line() {
        assert_eq!(Verdict::from_profit(iv(0.1, 5.0)), Verdict::Always);
        assert_eq!(Verdict::from_profit(iv(-5.0, 0.0)), Verdict::Never);
        assert_eq!(Verdict::from_profit(iv(-1.0, 1.0)), Verdict::Depends);
        // The boundary: lo == 0 is not strictly profitable.
        assert_eq!(Verdict::from_profit(iv(0.0, 1.0)), Verdict::Depends);
    }

    #[test]
    fn join_is_unanimity() {
        assert_eq!(Verdict::Always.join(Verdict::Always), Verdict::Always);
        assert_eq!(Verdict::Never.join(Verdict::Never), Verdict::Never);
        assert_eq!(Verdict::Always.join(Verdict::Never), Verdict::Depends);
        assert_eq!(Verdict::Always.join(Verdict::Depends), Verdict::Depends);
    }

    #[test]
    fn round_trip_names() {
        for v in [Verdict::Always, Verdict::Never, Verdict::Depends] {
            assert_eq!(Verdict::parse(v.as_str()), Some(v));
        }
        assert_eq!(Verdict::parse("maybe"), None);
    }

    #[test]
    fn consolidation_tracks_the_ratio() {
        // ses/str advisory: solo ≈ 0.0 (modelled as tiny), joint 0.4.
        assert_eq!(
            consolidation_verdict(iv(0.0, 0.01), iv(0.32, 0.48)),
            Verdict::Always
        );
        // Solo rates clearly dominate: never consolidate.
        assert_eq!(
            consolidation_verdict(iv(5.0, 7.0), iv(0.32, 0.48)),
            Verdict::Never
        );
        // Box straddles the 0.25 threshold.
        assert_eq!(
            consolidation_verdict(iv(0.05, 0.15), iv(0.32, 0.48)),
            Verdict::Depends
        );
    }

    #[test]
    fn promotion_requires_errable_oracle_and_disparity() {
        let pbcom = iv(16.0, 25.0);
        let fedr = iv(3.8, 5.9);
        assert_eq!(
            promotion_verdict(pbcom, fedr, OracleAssumption::MayErr),
            Verdict::Always
        );
        assert_eq!(
            promotion_verdict(pbcom, fedr, OracleAssumption::Perfect),
            Verdict::Never
        );
        assert_eq!(
            promotion_verdict(iv(4.0, 5.0), fedr, OracleAssumption::MayErr),
            Verdict::Never
        );
        assert_eq!(
            promotion_verdict(iv(8.0, 13.0), fedr, OracleAssumption::MayErr),
            Verdict::Depends
        );
    }

    #[test]
    fn grouping_is_signed_rate() {
        assert_eq!(grouping_verdict(iv(0.1, 0.5)), Verdict::Always);
        assert_eq!(grouping_verdict(iv(0.0, 0.0)), Verdict::Never);
        assert_eq!(grouping_verdict(iv(-0.1, 0.1)), Verdict::Depends);
    }
}

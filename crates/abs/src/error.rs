//! Error types for the abstract-interpretation layer.

use std::fmt;

use rr_core::{AnalysisError, TreeError};

/// An error constructing or evaluating an abstract value.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsError {
    /// An interval's endpoints were inverted or non-finite.
    MalformedInterval {
        /// Lower endpoint as given.
        lo: f64,
        /// Upper endpoint as given.
        hi: f64,
    },
    /// Interval division by an interval containing zero.
    DivisorStraddlesZero {
        /// Divisor lower endpoint.
        lo: f64,
        /// Divisor upper endpoint.
        hi: f64,
    },
    /// A parameter box has no dimensions.
    EmptyBox,
    /// A parameter box dimension is malformed (inverted, non-finite, or
    /// non-positive where a positive multiplier is required).
    MalformedDimension {
        /// The dimension's name.
        name: String,
        /// Lower endpoint as given.
        lo: f64,
        /// Upper endpoint as given.
        hi: f64,
    },
    /// An abstract operation needed a parameter the box does not bind and
    /// the base model does not supply.
    UnknownDimension(String),
    /// A quantity that must be positive over the whole box was not.
    NonPositive {
        /// Which quantity.
        what: &'static str,
        /// The offending lower endpoint.
        lo: f64,
    },
    /// The underlying concrete algebra failed (tree or model error).
    Analysis(AnalysisError),
}

impl From<AnalysisError> for AbsError {
    fn from(e: AnalysisError) -> AbsError {
        AbsError::Analysis(e)
    }
}

impl From<TreeError> for AbsError {
    fn from(e: TreeError) -> AbsError {
        AbsError::Analysis(AnalysisError::Tree(e))
    }
}

impl fmt::Display for AbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsError::MalformedInterval { lo, hi } => {
                write!(f, "malformed interval [{lo}, {hi}]")
            }
            AbsError::DivisorStraddlesZero { lo, hi } => {
                write!(f, "interval division by [{lo}, {hi}], which contains 0")
            }
            AbsError::EmptyBox => write!(f, "parameter box has no dimensions"),
            AbsError::MalformedDimension { name, lo, hi } => {
                write!(f, "malformed box dimension {name:?}: [{lo}, {hi}]")
            }
            AbsError::UnknownDimension(name) => {
                write!(f, "box dimension {name:?} binds no known parameter")
            }
            AbsError::NonPositive { what, lo } => {
                write!(f, "{what} must be positive over the box, lower bound {lo}")
            }
            AbsError::Analysis(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for AbsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AbsError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AbsError::MalformedDimension {
            name: "rate:fedr-crash".into(),
            lo: 2.0,
            hi: 1.0,
        };
        assert!(e.to_string().contains("rate:fedr-crash"));
        let e: AbsError = TreeError::CannotModifyRoot.into();
        assert!(matches!(e, AbsError::Analysis(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! The interval domain: closed `[lo, hi]` ranges of `f64` with directed
//! (outward) rounding.
//!
//! Every arithmetic operation computes its endpoints in `f64` and then rounds
//! the lower endpoint down one ulp and the upper endpoint up one ulp
//! ([`f64::next_down`] / [`f64::next_up`]). That makes each operation a sound
//! over-approximation of the corresponding real-number operation: for any
//! reals `x ∈ a` and `y ∈ b`, `x ∘ y ∈ a ∘ b` regardless of how the hardware
//! rounds the endpoint computations. Soundness composes, so any expression
//! built from these operations encloses its concrete `f64` evaluation at
//! every point of the input box — the property the test suite samples for
//! and the certification in [`refine`](crate::refine) relies on.

use std::fmt;

use crate::error::AbsError;

/// A closed, non-empty interval `[lo, hi]` with finite endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The interval `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`AbsError::MalformedInterval`] unless `lo <= hi` and both
    /// endpoints are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Interval, AbsError> {
        if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
            return Err(AbsError::MalformedInterval { lo, hi });
        }
        Ok(Interval { lo, hi })
    }

    /// The degenerate interval `[x, x]`.
    ///
    /// # Errors
    ///
    /// Returns [`AbsError::MalformedInterval`] if `x` is not finite.
    pub fn point(x: f64) -> Result<Interval, AbsError> {
        Interval::new(x, x)
    }

    /// The lower endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// The width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// The midpoint, clamped into the interval.
    pub fn midpoint(&self) -> f64 {
        let m = self.lo + 0.5 * (self.hi - self.lo);
        m.clamp(self.lo, self.hi)
    }

    /// Width relative to the magnitude of the midpoint (plain width when the
    /// midpoint is ~0) — the bisection tolerance metric.
    pub fn relative_width(&self) -> f64 {
        let scale = self.midpoint().abs().max(1.0);
        self.width() / scale
    }

    /// Whether `x` lies in the interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether every point of the interval is strictly positive.
    pub fn strictly_positive(&self) -> bool {
        self.lo > 0.0
    }

    /// Whether every point of the interval is `<= 0`.
    pub fn non_positive(&self) -> bool {
        self.hi <= 0.0
    }

    /// Outward-rounded sum.
    pub fn add(&self, other: Interval) -> Interval {
        Interval {
            lo: (self.lo + other.lo).next_down(),
            hi: (self.hi + other.hi).next_up(),
        }
    }

    /// Outward-rounded difference.
    pub fn sub(&self, other: Interval) -> Interval {
        Interval {
            lo: (self.lo - other.hi).next_down(),
            hi: (self.hi - other.lo).next_up(),
        }
    }

    /// Outward-rounded product (all four endpoint combinations).
    pub fn mul(&self, other: Interval) -> Interval {
        let products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        Interval {
            lo: products
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
                .next_down(),
            hi: products
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
                .next_up(),
        }
    }

    /// Outward-rounded product with a scalar.
    pub fn scale(&self, k: f64) -> Interval {
        let (a, b) = (self.lo * k, self.hi * k);
        Interval {
            lo: a.min(b).next_down(),
            hi: a.max(b).next_up(),
        }
    }

    /// Outward-rounded quotient.
    ///
    /// # Errors
    ///
    /// Returns [`AbsError::DivisorStraddlesZero`] if `other` contains 0.
    pub fn div(&self, other: Interval) -> Result<Interval, AbsError> {
        if other.contains(0.0) {
            return Err(AbsError::DivisorStraddlesZero {
                lo: other.lo,
                hi: other.hi,
            });
        }
        let quotients = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ];
        Ok(Interval {
            lo: quotients
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
                .next_down(),
            hi: quotients
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
                .next_up(),
        })
    }

    /// Pointwise maximum: `[max(lo), max(hi)]` (exact — no rounding needed,
    /// `max` introduces no new values).
    pub fn max(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Pointwise minimum: `[min(lo), min(hi)]` (exact).
    pub fn min(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Smallest interval containing both (the join of the domain).
    pub fn hull(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Splits at the midpoint into `(low half, high half)`; the halves share
    /// the midpoint so no point of the original is lost.
    pub fn bisect(&self) -> (Interval, Interval) {
        let m = self.midpoint();
        (
            Interval { lo: self.lo, hi: m },
            Interval { lo: m, hi: self.hi },
        )
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn construction_rejects_malformed() {
        assert!(Interval::new(2.0, 1.0).is_err());
        assert!(Interval::new(f64::NAN, 1.0).is_err());
        assert!(Interval::new(0.0, f64::INFINITY).is_err());
        assert!(Interval::point(3.5).unwrap().contains(3.5));
    }

    #[test]
    fn arithmetic_encloses_point_results() {
        let a = iv(1.0, 2.0);
        let b = iv(-0.5, 3.0);
        assert!(a.add(b).contains(1.0 + -0.5) && a.add(b).contains(2.0 + 3.0));
        assert!(a.sub(b).contains(1.0 - 3.0) && a.sub(b).contains(2.0 - -0.5));
        assert!(a.mul(b).contains(2.0 * 3.0) && a.mul(b).contains(1.0 * -0.5));
        let q = a.div(iv(2.0, 4.0)).unwrap();
        assert!(q.contains(0.25) && q.contains(1.0));
        assert!(a.div(iv(-1.0, 1.0)).is_err());
    }

    #[test]
    fn rounding_is_outward() {
        let a = iv(0.1, 0.1);
        let s = a.add(iv(0.2, 0.2));
        // 0.1 + 0.2 != 0.3 in f64, but the outward-rounded sum must contain
        // the f64 result and be a non-degenerate enclosure.
        assert!(s.contains(0.1 + 0.2));
        assert!(s.lo < s.hi);
    }

    #[test]
    fn scale_handles_negative_factors() {
        let a = iv(1.0, 2.0);
        let n = a.scale(-3.0);
        assert!(n.contains(-6.0) && n.contains(-3.0));
        assert!(n.lo() <= -6.0 && n.hi() >= -3.0);
    }

    #[test]
    fn lattice_ops_and_bisection() {
        let a = iv(1.0, 4.0);
        let b = iv(2.0, 8.0);
        assert_eq!(a.hull(b), iv(1.0, 8.0));
        assert_eq!(a.max(b), iv(2.0, 8.0));
        assert_eq!(a.min(b), iv(1.0, 4.0));
        let (l, r) = a.bisect();
        assert_eq!(l.hi(), r.lo());
        assert_eq!(l.lo(), 1.0);
        assert_eq!(r.hi(), 4.0);
        assert!(a.relative_width() > iv(1.0, 1.5).relative_width());
    }
}

//! The §3.2 restart-group algebra lifted to intervals.
//!
//! Each function here is the abstract transformer of its concrete counterpart
//! in [`rr_core::analysis`]: for any choice of concrete inputs inside the
//! interval arguments, the concrete result lies inside the interval result.
//! Monotone operations (availability) evaluate at endpoints for tightness;
//! the rest compose the outward-rounded [`Interval`] primitives.

use rr_core::AnalysisError;

use crate::error::AbsError;
use crate::interval::Interval;

/// Abstract `MTTF / (MTTF + MTTR)` (§3).
///
/// Availability is increasing in MTTF and decreasing in MTTR, so the tight
/// enclosure evaluates the two extreme corners directly (with outward
/// rounding) instead of composing interval division — which would double-count
/// the MTTF dependency in the denominator.
///
/// # Errors
///
/// Returns [`AbsError::NonPositive`] unless both intervals are strictly
/// positive throughout.
pub fn availability(mttf_s: Interval, mttr_s: Interval) -> Result<Interval, AbsError> {
    if !mttf_s.strictly_positive() {
        return Err(AbsError::NonPositive {
            what: "MTTF",
            lo: mttf_s.lo(),
        });
    }
    if !mttr_s.strictly_positive() {
        return Err(AbsError::NonPositive {
            what: "MTTR",
            lo: mttr_s.lo(),
        });
    }
    let lo = (mttf_s.lo() / (mttf_s.lo() + mttr_s.hi()))
        .next_down()
        .max(0.0);
    let hi = (mttf_s.hi() / (mttf_s.hi() + mttr_s.lo()))
        .next_up()
        .min(1.0);
    Interval::new(lo, hi)
}

/// Abstract downtime seconds per year implied by an availability interval.
///
/// # Errors
///
/// Returns [`AbsError::NonPositive`] unless the interval lies in `(0, 1]`.
pub fn downtime_s_per_year(availability: Interval) -> Result<Interval, AbsError> {
    if !availability.strictly_positive() || availability.hi() > 1.0 {
        return Err(AbsError::NonPositive {
            what: "availability in (0, 1]",
            lo: availability.lo(),
        });
    }
    let one = Interval::point(1.0)?;
    let down = one.sub(availability).scale(365.25 * 24.0 * 3600.0);
    // Downtime cannot be negative; outward rounding may dip a hair below 0.
    Interval::new(down.lo().max(0.0), down.hi().max(0.0))
}

/// Abstract group MTTF bound of §3.2: pointwise minimum over members.
///
/// # Errors
///
/// Returns [`AbsError::Analysis`] wrapping [`AnalysisError::EmptyGroup`] if
/// `member_mttfs_s` is empty.
pub fn group_mttf_bound_s(member_mttfs_s: &[Interval]) -> Result<Interval, AbsError> {
    let (first, rest) =
        member_mttfs_s
            .split_first()
            .ok_or(AbsError::Analysis(AnalysisError::EmptyGroup {
                what: "group_mttf_bound_s",
            }))?;
    Ok(rest.iter().fold(*first, |acc, iv| acc.min(*iv)))
}

/// Abstract group MTTR bound of §3.2: pointwise maximum over members.
///
/// # Errors
///
/// Returns [`AbsError::Analysis`] wrapping [`AnalysisError::EmptyGroup`] if
/// `member_mttrs_s` is empty.
pub fn group_mttr_bound_s(member_mttrs_s: &[Interval]) -> Result<Interval, AbsError> {
    let (first, rest) =
        member_mttrs_s
            .split_first()
            .ok_or(AbsError::Analysis(AnalysisError::EmptyGroup {
                what: "group_mttr_bound_s",
            }))?;
    Ok(rest.iter().fold(*first, |acc, iv| acc.max(*iv)))
}

/// Abstract §4.1 weighted group MTTR: `Σ f_ci · MTTR_ci` over
/// `(probability, mttr)` interval pairs.
///
/// # Errors
///
/// Returns [`AbsError::Analysis`] wrapping
/// [`AnalysisError::UnnormalizedCures`] if the probability intervals cannot
/// sum to 1 — i.e. no point of the box satisfies the `A_cure` normalization
/// the concrete formula enforces.
pub fn weighted_group_mttr_s(cures: &[(Interval, Interval)]) -> Result<Interval, AbsError> {
    let zero = Interval::point(0.0)?;
    let total = cures.iter().fold(zero, |acc, (p, _)| acc.add(*p));
    if !total.contains(1.0) {
        return Err(AbsError::Analysis(AnalysisError::UnnormalizedCures {
            total: total.midpoint(),
        }));
    }
    Ok(cures
        .iter()
        .fold(zero, |acc, (p, mttr)| acc.add(p.mul(*mttr))))
}

/// Interval mode probabilities `p_i = r_i / Σ r_j` from per-mode rate
/// intervals. Sound but correlation-blind: each quotient treats the
/// numerator's contribution to the denominator as independent, so the
/// results over-approximate the true (normalized) probability simplex.
///
/// # Errors
///
/// Returns [`AbsError::NonPositive`] if any rate interval reaches zero (a
/// rate must stay positive over the whole box), or propagates the division
/// error if the total straddles zero (impossible once rates are positive).
pub fn mode_probabilities(rates: &[Interval]) -> Result<Vec<Interval>, AbsError> {
    for r in rates {
        if !r.strictly_positive() {
            return Err(AbsError::NonPositive {
                what: "failure rate",
                lo: r.lo(),
            });
        }
    }
    let zero = Interval::point(0.0)?;
    let total = rates.iter().fold(zero, |acc, r| acc.add(*r));
    rates
        .iter()
        .map(|r| {
            let q = r.div(total)?;
            // Probabilities live in [0, 1]; intersecting with that is sound
            // and keeps downstream products tight.
            Interval::new(q.lo().clamp(0.0, 1.0), q.hi().clamp(0.0, 1.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_core::analysis as concrete;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn availability_encloses_concrete_corners() {
        let mttf = iv(3000.0, 4200.0);
        let mttr = iv(20.0, 30.0);
        let a = availability(mttf, mttr).unwrap();
        for (f, r) in [
            (3000.0, 20.0),
            (3000.0, 30.0),
            (4200.0, 20.0),
            (3600.0, 24.75),
        ] {
            assert!(
                a.contains(concrete::availability(f, r).unwrap()),
                "({f}, {r})"
            );
        }
        assert!(a.lo() > 0.0 && a.hi() <= 1.0);
        assert!(availability(iv(-1.0, 1.0), mttr).is_err());
        assert!(availability(mttf, iv(0.0, 1.0)).is_err());
    }

    #[test]
    fn availability_point_is_tight() {
        let a = availability(iv(3600.0, 3600.0), iv(24.75, 24.75)).unwrap();
        let c = concrete::availability(3600.0, 24.75).unwrap();
        assert!(a.contains(c));
        assert!(a.width() < 1e-12);
    }

    #[test]
    fn downtime_encloses_concrete() {
        let a = iv(0.99, 0.999);
        let d = downtime_s_per_year(a).unwrap();
        for x in [0.99, 0.995, 0.999] {
            assert!(d.contains(concrete::downtime_s_per_year(x).unwrap()));
        }
        assert!(downtime_s_per_year(iv(0.5, 1.5)).is_err());
    }

    #[test]
    fn group_bounds_mirror_concrete() {
        let mttfs = [iv(90.0, 110.0), iv(40.0, 60.0), iv(70.0, 80.0)];
        let g = group_mttf_bound_s(&mttfs).unwrap();
        assert!(g.contains(concrete::group_mttf_bound_s(&[100.0, 50.0, 75.0]).unwrap()));
        let mttrs = [iv(4.0, 6.0), iv(20.0, 22.0), iv(8.0, 10.0)];
        let m = group_mttr_bound_s(&mttrs).unwrap();
        assert!(m.contains(concrete::group_mttr_bound_s(&[5.0, 21.0, 9.0]).unwrap()));
        assert!(group_mttf_bound_s(&[]).is_err());
        assert!(group_mttr_bound_s(&[]).is_err());
    }

    #[test]
    fn weighted_mttr_encloses_and_guards_normalization() {
        let cures = [
            (iv(0.45, 0.55), iv(9.0, 11.0)),
            (iv(0.25, 0.35), iv(18.0, 22.0)),
            (iv(0.15, 0.25), iv(4.0, 6.0)),
        ];
        let w = weighted_group_mttr_s(&cures).unwrap();
        let c = concrete::weighted_group_mttr_s(&[(0.5, 10.0), (0.3, 20.0), (0.2, 5.0)]).unwrap();
        assert!(w.contains(c));
        // Probabilities that cannot sum to 1 are rejected.
        let bad = [(iv(0.1, 0.2), iv(1.0, 2.0))];
        assert!(weighted_group_mttr_s(&bad).is_err());
    }

    #[test]
    fn mode_probabilities_enclose_concrete_fractions() {
        let rates = [iv(4.8, 7.2), iv(0.16, 0.24), iv(0.04, 0.06)];
        let ps = mode_probabilities(&rates).unwrap();
        // Concrete point: rates (6.0, 0.2, 0.05), total 6.25.
        for (p, r) in ps.iter().zip([6.0, 0.2, 0.05]) {
            assert!(p.contains(r / 6.25), "p for rate {r}");
            assert!(p.lo() >= 0.0 && p.hi() <= 1.0);
        }
        assert!(mode_probabilities(&[iv(0.0, 1.0)]).is_err());
    }
}

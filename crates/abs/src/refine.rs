//! Bisection refinement: turning one `Depends` box into a certified
//! partition of `Always` / `Never` / residual `Depends` regions.
//!
//! The worklist algorithm evaluates a scenario's abstract profitability over
//! each box; boxes whose interval straddles zero are split along their
//! relatively widest dimension and re-evaluated, until either the verdict
//! resolves, the box shrinks below the tolerance, or the split budget is
//! exhausted. The result is a [`ProfitabilityMap`]: a finite partition of the
//! original box in which every `Always` (resp. `Never`) region carries a
//! machine-checked interval certificate that the transformation is (resp. is
//! not) profitable at *every* contained parameter valuation.

use crate::advisor::Verdict;
use crate::boxes::ParamBox;
use crate::error::AbsError;
use crate::interval::Interval;
use crate::scenario::Scenario;

/// One certified sub-box of the parameter space.
#[derive(Debug, Clone)]
pub struct Region {
    /// The sub-box this verdict covers.
    pub pbox: ParamBox,
    /// The verdict over every point of the sub-box.
    pub verdict: Verdict,
    /// The profitability enclosure (`MTTR_before − MTTR_after`, seconds)
    /// that justified the verdict.
    pub profit: Interval,
}

/// Refinement limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineConfig {
    /// Stop splitting a `Depends` box once its
    /// [`max_relative_width`](ParamBox::max_relative_width) drops below
    /// this.
    pub tolerance: f64,
    /// Hard cap on the number of splits across the whole refinement.
    pub max_splits: usize,
}

impl Default for RefineConfig {
    fn default() -> RefineConfig {
        RefineConfig {
            tolerance: 0.02,
            max_splits: 4096,
        }
    }
}

/// A certified partition of a parameter box for one (scenario,
/// transformation) pair.
#[derive(Debug, Clone)]
pub struct ProfitabilityMap {
    /// The scenario name this map certifies.
    pub scenario: String,
    /// The original box the regions partition.
    pub root: ParamBox,
    /// The certified regions (disjoint up to shared faces, covering `root`).
    pub regions: Vec<Region>,
    /// How many bisections the refinement performed.
    pub splits: usize,
    /// The limits the refinement ran under.
    pub config: RefineConfig,
}

impl ProfitabilityMap {
    /// The map-wide verdict: unanimous regions keep their verdict, anything
    /// mixed (or any residual `Depends` region) is `Depends`.
    pub fn verdict(&self) -> Verdict {
        let mut it = self.regions.iter().map(|r| r.verdict);
        match it.next() {
            None => Verdict::Depends,
            Some(first) => it.fold(first, Verdict::join),
        }
    }

    /// The hull of every region's profitability enclosure.
    pub fn profit_hull(&self) -> Option<Interval> {
        let mut it = self.regions.iter().map(|r| r.profit);
        let first = it.next()?;
        Some(it.fold(first, |acc, p| acc.hull(p)))
    }

    /// Fraction of the root box's volume still carrying a `Depends` verdict
    /// (0 when fully resolved). Volume is measured relative to the root box,
    /// dimension by dimension; zero-width root dimensions contribute factor
    /// 1.
    pub fn depends_fraction(&self) -> f64 {
        self.regions
            .iter()
            .filter(|r| r.verdict == Verdict::Depends)
            .map(|r| relative_volume(&r.pbox, &self.root))
            // Not `.sum()`: the empty sum is `-0.0`, which leaks a spurious
            // sign into rendered fractions and JSON artifacts.
            .fold(0.0, |acc, v| acc + v)
    }
}

/// The volume of `sub` as a fraction of `root`, assuming `sub ⊆ root`.
fn relative_volume(sub: &ParamBox, root: &ParamBox) -> f64 {
    root.dims()
        .map(|(name, root_iv)| {
            if root_iv.width() <= 0.0 {
                1.0
            } else {
                sub.multiplier(name).width() / root_iv.width()
            }
        })
        .product()
}

/// Certifies `scenario`'s profitability over `pbox`, bisecting `Depends`
/// regions until they resolve or hit the configured limits.
///
/// # Errors
///
/// Returns [`AbsError`] if the scenario cannot be evaluated over a box (tree
/// mismatch, degenerate rates).
pub fn certify(
    scenario: &Scenario,
    pbox: &ParamBox,
    config: RefineConfig,
) -> Result<ProfitabilityMap, AbsError> {
    let mut work = vec![pbox.clone()];
    let mut regions = Vec::new();
    let mut splits = 0usize;

    while let Some(b) = work.pop() {
        let profit = scenario.abstract_profit(&b)?;
        let verdict = Verdict::from_profit(profit);
        if verdict == Verdict::Depends
            && b.max_relative_width() > config.tolerance
            && splits < config.max_splits
        {
            if let Some((left, right)) = b.split() {
                splits += 1;
                work.push(left);
                work.push(right);
                continue;
            }
        }
        regions.push(Region {
            pbox: b,
            verdict,
            profit,
        });
    }

    Ok(ProfitabilityMap {
        scenario: scenario.name().to_string(),
        root: pbox.clone(),
        regions,
        splits,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_core::analysis::{OracleQuality, SimpleCostModel};
    use rr_core::model::FailureMode;
    use rr_core::tree::TreeSpec;

    fn consolidate_scenario() -> Scenario {
        let before = TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_ses").with_component("ses"))
            .with_child(TreeSpec::cell("R_str").with_component("str"))
            .build()
            .unwrap();
        let after = TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .build()
            .unwrap();
        let cost = SimpleCostModel::new(0.9, 2.0)
            .with_boot("ses", 5.25)
            .with_boot("str", 5.11)
            .with_contention(0.0119)
            .with_sync_pair("ses", "str", 3.35)
            .with_sync_pair("str", "ses", 3.75);
        Scenario::new(
            "consolidate-ses-str",
            before,
            after,
            OracleQuality::Perfect,
            // Solo cures: the sync penalty makes solo restarts expensive in
            // the before-tree, so drifting it toward zero erodes the win.
            vec![
                FailureMode::solo("ses", "ses", 0.2).unwrap(),
                FailureMode::solo("str", "str", 0.2).unwrap(),
            ],
            cost,
        )
        .unwrap()
    }

    #[test]
    fn clear_profit_certifies_without_splitting() {
        let s = consolidate_scenario();
        let pbox = ParamBox::drift(s.dim_names(), 0.2).unwrap();
        let map = certify(&s, &pbox, RefineConfig::default()).unwrap();
        assert_eq!(map.verdict(), Verdict::Always);
        assert_eq!(map.splits, 0, "no bisection needed for a clear win");
        assert_eq!(map.regions.len(), 1);
        assert_eq!(map.depends_fraction(), 0.0);
        assert!(map.profit_hull().unwrap().strictly_positive());
    }

    #[test]
    fn straddling_box_bisects_and_shrinks_depends_mass() {
        // A box so wide that the sync-penalty advantage can invert: drift
        // the sync penalties down to near-zero while joint contention stays,
        // making consolidation unprofitable in part of the box.
        let s = consolidate_scenario();
        let pbox = ParamBox::new()
            .with_dim("sync:ses", 0.001, 1.0)
            .unwrap()
            .with_dim("sync:str", 0.001, 1.0)
            .unwrap();
        let coarse = certify(
            &s,
            &pbox,
            RefineConfig {
                tolerance: 1.0,
                max_splits: 0,
            },
        )
        .unwrap();
        assert_eq!(coarse.verdict(), Verdict::Depends);
        assert!((coarse.depends_fraction() - 1.0).abs() < 1e-12);

        let fine = certify(
            &s,
            &pbox,
            RefineConfig {
                tolerance: 0.01,
                max_splits: 4096,
            },
        )
        .unwrap();
        assert!(fine.splits > 0);
        assert!(
            fine.depends_fraction() < 0.25,
            "refinement must resolve most of the box: {}",
            fine.depends_fraction()
        );
        // Both profitable and unprofitable certified regions exist.
        assert!(fine.regions.iter().any(|r| r.verdict == Verdict::Always));
        assert!(fine.regions.iter().any(|r| r.verdict == Verdict::Never));
        // And the partition still covers the whole box.
        let total: f64 = fine
            .regions
            .iter()
            .map(|r| relative_volume(&r.pbox, &pbox))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "partition volume {total}");
    }

    #[test]
    fn split_budget_is_respected() {
        let s = consolidate_scenario();
        let pbox = ParamBox::new()
            .with_dim("sync:ses", 0.001, 1.0)
            .unwrap()
            .with_dim("sync:str", 0.001, 1.0)
            .unwrap();
        let map = certify(
            &s,
            &pbox,
            RefineConfig {
                tolerance: 1e-6,
                max_splits: 7,
            },
        )
        .unwrap();
        assert!(map.splits <= 7);
        assert_eq!(map.regions.len(), map.splits + 1);
    }
}

#![allow(clippy::disallowed_methods)]
//! Property suite for the soundness contract of the abstract interpretation.
//!
//! The contract: for every scenario `S`, parameter box `B`, and concrete
//! point `p ∈ B`, the concrete profitability `Δ(p)` (computed by the
//! unmodified `rr_core::analysis` algebra) lies inside the abstract
//! enclosure `Δ#(B)`. Everything rr-abs certifies — `Always` regions,
//! `Never` regions, the advisor's three-valued verdicts — follows from that
//! one containment, so this suite hammers it with randomized scenarios,
//! boxes, and sample points, then checks the corollaries: certified regions
//! never contradict sampled concrete evaluations, refinement converges, and
//! point-box verdicts agree with the concrete sign.

use std::collections::BTreeMap;

use rr_abs::advisor::{consolidation_verdict, Verdict};
use rr_abs::refine::{certify, RefineConfig};
use rr_abs::{Interval, ParamBox, Scenario};
use rr_core::analysis::{OracleQuality, SimpleCostModel};
use rr_core::model::FailureMode;
use rr_core::tree::{RestartTree, TreeSpec};
use rr_sim::{check, SimRng};

/// Relative slack for comparing one f64 expression against an interval
/// computed by a differently-associated expression. The abstract evaluator
/// rounds outward on every operation, but the *concrete* reference may
/// associate sums differently (e.g. `(1-u)·perfect + u·wrong` versus the
/// per-term weights of the linear form), so containment is checked up to a
/// few ulps, scaled generously.
fn eps_for(x: f64) -> f64 {
    1e-9 * (1.0 + x.abs())
}

fn assert_encloses(iv: Interval, x: f64, what: &str) {
    let eps = eps_for(x);
    assert!(
        iv.lo() - eps <= x && x <= iv.hi() + eps,
        "{what}: concrete {x} escapes abstract [{}, {}]",
        iv.lo(),
        iv.hi()
    );
}

fn flat_tree() -> RestartTree {
    TreeSpec::cell("root")
        .with_child(TreeSpec::cell("R_a").with_component("a"))
        .with_child(TreeSpec::cell("R_b").with_component("b"))
        .with_child(TreeSpec::cell("R_c").with_component("c"))
        .build()
        .unwrap()
}

fn grouped_tree() -> RestartTree {
    TreeSpec::cell("root")
        .with_child(TreeSpec::cell("R_[a,b]").with_components(["a", "b"]))
        .with_child(TreeSpec::cell("R_c").with_component("c"))
        .build()
        .unwrap()
}

/// A tree with an escalation chain under the `[a,b]` group, so a faulty
/// oracle's guess-too-low path (restart `a`'s own cell, re-detect, escalate
/// to the group, pay the rapid-restart penalty) is exercised.
fn nested_tree() -> RestartTree {
    TreeSpec::cell("root")
        .with_child(
            TreeSpec::cell("R_[a,b]")
                .with_child(TreeSpec::cell("R_a").with_component("a"))
                .with_child(TreeSpec::cell("R_b").with_component("b")),
        )
        .with_child(TreeSpec::cell("R_c").with_component("c"))
        .build()
        .unwrap()
}

/// A randomized cost model over components a/b/c with every lever the
/// abstract domain tracks: boots, contention, an a↔b sync pair, and rapid
/// penalties.
fn random_cost(rng: &mut SimRng) -> SimpleCostModel {
    SimpleCostModel::new(rng.uniform(0.1, 5.0), rng.uniform(0.5, 3.0))
        .with_boot("a", rng.uniform(1.0, 30.0))
        .with_boot("b", rng.uniform(1.0, 30.0))
        .with_boot("c", rng.uniform(1.0, 30.0))
        .with_contention(rng.uniform(0.0, 0.05))
        .with_sync_pair("a", "b", rng.uniform(0.0, 10.0))
        .with_sync_pair("b", "a", rng.uniform(0.0, 10.0))
        .with_rapid_restart_penalty("a", rng.uniform(0.0, 8.0))
        .with_rapid_restart_penalty("b", rng.uniform(0.0, 8.0))
}

/// Randomized failure modes: solo crashes on each component plus a
/// correlated mode whose minimal cure is the `[a,b]` group — the mode whose
/// recovery actually differs across the tree pairs above.
fn random_modes(rng: &mut SimRng) -> Vec<FailureMode> {
    vec![
        FailureMode::solo("a-crash", "a", rng.uniform(0.01, 8.0)).unwrap(),
        FailureMode::solo("b-crash", "b", rng.uniform(0.01, 8.0)).unwrap(),
        FailureMode::correlated("ab-joint", "a", ["a", "b"], rng.uniform(0.01, 2.0)).unwrap(),
        FailureMode::solo("c-crash", "c", rng.uniform(0.01, 8.0)).unwrap(),
    ]
}

fn random_quality(rng: &mut SimRng) -> OracleQuality {
    match rng.next_below(3) {
        0 => OracleQuality::Perfect,
        1 => OracleQuality::Faulty {
            undershoot: rng.uniform(0.0, 1.0),
        },
        _ => OracleQuality::Naive,
    }
}

fn random_scenario(rng: &mut SimRng) -> Scenario {
    let (before, after) = match rng.next_below(3) {
        0 => (flat_tree(), grouped_tree()),
        1 => (flat_tree(), nested_tree()),
        _ => (nested_tree(), grouped_tree()),
    };
    Scenario::new(
        "random",
        before,
        after,
        random_quality(rng),
        random_modes(rng),
        random_cost(rng),
    )
    .unwrap()
}

/// A random box over a random subset of the scenario's dimensions, with
/// random (possibly asymmetric, possibly zero-width) multiplier ranges.
fn random_box(rng: &mut SimRng, scenario: &Scenario) -> ParamBox {
    let mut b = ParamBox::new();
    for dim in scenario.dim_names() {
        match rng.next_below(3) {
            0 => {} // leave unbound: pinned at the base value
            1 => {
                let x = rng.uniform(0.2, 3.0);
                b = b.with_dim(dim, x, x).unwrap();
            }
            _ => {
                let lo = rng.uniform(0.2, 1.5);
                let hi = lo + rng.uniform(0.0, 1.5);
                b = b.with_dim(dim, lo, hi).unwrap();
            }
        }
    }
    b
}

fn random_point(rng: &mut SimRng, b: &ParamBox) -> BTreeMap<String, f64> {
    b.sample_with(|_, lo, hi| rng.uniform(lo, hi))
}

/// The core soundness property, 160 randomized (scenario, box, point)
/// triples: the concrete profitability at any sampled point lies inside the
/// abstract enclosure of any box containing it.
#[test]
fn concrete_profit_is_enclosed_by_abstract_profit() {
    check::run("abs-soundness", 160, |rng| {
        let scenario = random_scenario(rng);
        let pbox = random_box(rng, &scenario);
        let abstract_profit = scenario.abstract_profit(&pbox).unwrap();
        for _ in 0..4 {
            let point = random_point(rng, &pbox);
            let concrete = scenario.concrete_profit(&point).unwrap();
            assert_encloses(abstract_profit, concrete, scenario.name());
        }
    });
}

/// Degenerate (point) boxes: the enclosure collapses to (nearly) the
/// concrete value, so the advisor's verdict at a point box must agree with
/// the concrete sign whenever that sign is decisive.
#[test]
fn point_box_verdicts_agree_with_concrete_sign() {
    check::run("abs-point-agreement", 120, |rng| {
        let scenario = random_scenario(rng);
        let mut b = ParamBox::new();
        for dim in scenario.dim_names() {
            let x = rng.uniform(0.3, 2.5);
            b = b.with_dim(dim, x, x).unwrap();
        }
        let iv = scenario.abstract_profit(&b).unwrap();
        let point = random_point(rng, &b);
        let concrete = scenario.concrete_profit(&point).unwrap();
        assert_encloses(iv, concrete, "point box");
        assert!(
            iv.width() <= eps_for(concrete) * 16.0,
            "point-box enclosure stayed wide: [{}, {}]",
            iv.lo(),
            iv.hi()
        );
        let eps = eps_for(concrete);
        match Verdict::from_profit(iv) {
            Verdict::Always => assert!(concrete > -eps, "Always but concrete {concrete} <= 0"),
            Verdict::Never => assert!(concrete <= eps, "Never but concrete {concrete} > 0"),
            // A point enclosure may still straddle zero when the concrete
            // value itself is within rounding noise of the break-even.
            Verdict::Depends => assert!(concrete.abs() <= 16.0 * eps),
        }
    });
}

/// Certified regions are corollaries of the containment: sampling concrete
/// points inside an `Always` (resp. `Never`) region can never produce an
/// unprofitable (resp. profitable) valuation.
#[test]
fn certified_regions_never_contradict_sampled_points() {
    check::run("abs-region-agreement", 24, |rng| {
        let scenario = random_scenario(rng);
        let pbox = random_box(rng, &scenario);
        let map = certify(&scenario, &pbox, RefineConfig::default()).unwrap();
        for region in &map.regions {
            for _ in 0..3 {
                let point = random_point(rng, &region.pbox);
                let concrete = scenario.concrete_profit(&point).unwrap();
                assert_encloses(region.profit, concrete, "region");
                let eps = eps_for(concrete);
                match region.verdict {
                    Verdict::Always => assert!(concrete > -eps),
                    Verdict::Never => assert!(concrete <= eps),
                    Verdict::Depends => {}
                }
            }
        }
    });
}

/// Bisection convergence: on a box engineered to straddle the break-even
/// surface, a larger split budget never leaves *more* of the box undecided,
/// and the partition keeps covering the whole box.
#[test]
fn refinement_converges_monotonically() {
    // Consolidating a/b pays off when the sync penalty is large and hurts
    // when it is (near) zero, so sweeping the sync dimensions from ~0 to 1
    // guarantees a sign change inside the box.
    let scenario = Scenario::new(
        "converge",
        flat_tree(),
        grouped_tree(),
        OracleQuality::Perfect,
        vec![
            FailureMode::solo("a-crash", "a", 0.5).unwrap(),
            FailureMode::solo("b-crash", "b", 0.5).unwrap(),
            FailureMode::solo("c-crash", "c", 0.5).unwrap(),
        ],
        SimpleCostModel::new(1.0, 2.0)
            .with_boot("a", 5.0)
            .with_boot("b", 5.0)
            .with_boot("c", 5.0)
            .with_contention(0.02)
            .with_sync_pair("a", "b", 4.0)
            .with_sync_pair("b", "a", 4.0),
    )
    .unwrap();
    let pbox = ParamBox::new()
        .with_dim("sync:a", 0.001, 1.0)
        .unwrap()
        .with_dim("sync:b", 0.001, 1.0)
        .unwrap();
    let coarse = certify(
        &scenario,
        &pbox,
        RefineConfig {
            tolerance: 0.5,
            max_splits: 0,
        },
    )
    .unwrap();
    assert_eq!(coarse.verdict(), Verdict::Depends);
    let mut last = f64::INFINITY;
    for max_splits in [0, 4, 64, 1024] {
        let map = certify(
            &scenario,
            &pbox,
            RefineConfig {
                tolerance: 0.01,
                max_splits,
            },
        )
        .unwrap();
        let frac = map.depends_fraction();
        assert!(
            frac <= last + 1e-12,
            "budget {max_splits}: depends fraction grew from {last} to {frac}"
        );
        last = frac;
        let volume: f64 = map
            .regions
            .iter()
            .map(|r| {
                r.pbox
                    .dims()
                    .map(|(n, iv)| iv.width() / pbox.multiplier(n).width())
                    .product::<f64>()
            })
            .sum();
        assert!(
            (volume - 1.0).abs() < 1e-9,
            "partition volume {volume} != 1 at budget {max_splits}"
        );
    }
    assert!(
        last < 0.25,
        "refinement left {last} of the box undecided at the largest budget"
    );
}

/// The Table 3 consolidation rule at point intervals behaves like its
/// concrete counterpart, up to the deliberate `Depends` band near the
/// threshold boundary.
#[test]
fn consolidation_rule_matches_concrete_thresholds_at_points() {
    check::run("abs-advisor-thresholds", 120, |rng| {
        let solo = Interval::point(rng.uniform(0.01, 10.0)).unwrap();
        let joint = Interval::point(rng.uniform(0.1, 40.0)).unwrap();
        let verdict = consolidation_verdict(solo, joint);
        let threshold = 0.25 * joint.lo();
        let eps = eps_for(threshold) * 16.0;
        match verdict {
            Verdict::Always => assert!(solo.hi() <= threshold + eps),
            Verdict::Never => assert!(solo.lo() > threshold - eps),
            Verdict::Depends => assert!((solo.lo() - threshold).abs() <= eps),
        }
    });
}

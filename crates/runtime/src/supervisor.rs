//! The live supervisor: FD + REC over real threads.
//!
//! A [`Supervisor`] owns a set of services, a restart tree and an oracle
//! (both from `rr-core`). Its watchdog thread performs application-level
//! liveness pings (the §2.2 mechanism, scaled from seconds to tens of
//! milliseconds so demos run fast), reports failures to the recoverer, and
//! executes group restarts: kill every service in the chosen restart cell,
//! respawn each from its factory after its boot delay.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rr_core::oracle::{Failure, Oracle};
use rr_core::policy::RestartPolicy;
use rr_core::recoverer::{Recoverer, RecoveryDecision};
use rr_core::tree::RestartTree;
use rr_sim::telemetry::Registry;
use rr_sim::SimTime;
use std::sync::Mutex;
use std::sync::MutexGuard;

use crate::router::Router;
use crate::service::{spawn_service, ProcessHandle, ServiceFactory, PING, PONG};

/// Timing knobs for the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Ping period (Mercury: 1 s; demos: ~20 ms).
    pub ping_period: Duration,
    /// How long to wait for pongs before declaring a miss.
    pub ping_timeout: Duration,
    /// If a restarted service has not answered pings within this time, the
    /// restart is declared failed so escalation (or give-up) can proceed —
    /// without this, a service wedging during boot deadlocks its episode.
    pub restart_deadline: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            ping_period: Duration::from_millis(20),
            ping_timeout: Duration::from_millis(10),
            restart_deadline: Duration::from_millis(500),
        }
    }
}

struct ServiceSpec {
    factory: ServiceFactory,
    boot: Duration,
}

struct Inner {
    specs: HashMap<String, ServiceSpec>,
    procs: HashMap<String, ProcessHandle>,
    recoverer: Recoverer<Box<dyn Oracle + Send>>,
    /// Components awaiting reboot completion per episode, with the time the
    /// restart was issued.
    pending: HashMap<String, (Instant, Vec<String>)>,
    /// Services the policy has given up on (hard failures, §2.2): left down
    /// for a human, no longer watched.
    abandoned: Vec<String>,
    epoch: Instant,
    restarts: u64,
    /// Recovery-episode telemetry, wall-clock timestamps mapped onto
    /// [`SimTime`] relative to the supervisor's epoch.
    telemetry: Registry,
}

impl Inner {
    fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.epoch.elapsed().as_secs_f64())
    }
}

/// Locks a mutex, recovering the data if a previous holder panicked. The
/// supervisor's invariants hold between statements, not across the guard's
/// lifetime, so a poisoned lock means "a thread died mid-round", not "the
/// state is garbage" — the watchdog re-derives liveness every round anyway.
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A live supervision tree over OS threads.
pub struct Supervisor {
    router: Router,
    inner: Arc<Mutex<Inner>>,
    config: WatchdogConfig,
    watchdog_stop: Arc<AtomicBool>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("services", &self.router.names())
            .finish()
    }
}

impl Supervisor {
    /// Creates a supervisor over `tree`, using `oracle` as the restart
    /// policy brain.
    pub fn new(
        tree: RestartTree,
        oracle: Box<dyn Oracle + Send>,
        config: WatchdogConfig,
    ) -> Supervisor {
        let recoverer = Recoverer::new(tree, oracle, RestartPolicy::new());
        Supervisor {
            router: Router::new(),
            inner: Arc::new(Mutex::new(Inner {
                specs: HashMap::new(),
                procs: HashMap::new(),
                recoverer,
                pending: HashMap::new(),
                abandoned: Vec::new(),
                epoch: Instant::now(),
                restarts: 0,
                telemetry: Registry::new(),
            })),
            config,
            watchdog_stop: Arc::new(AtomicBool::new(false)),
            watchdog: Mutex::new(None),
        }
    }

    /// The router, for injecting traffic from tests/demos.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Total restarts the supervisor has executed.
    pub fn restarts(&self) -> u64 {
        lock_recovering(&self.inner).restarts
    }

    /// Services the restart policy has abandoned as hard failures
    /// ("the policy keeps track of past restarts to prevent infinite
    /// restarts of 'hard' failures", §2.2). They stay down for a human.
    pub fn abandoned(&self) -> Vec<String> {
        lock_recovering(&self.inner).abandoned.clone()
    }

    /// A snapshot of the recovery-episode telemetry recorded so far
    /// (restart counts, per-component MTTR histograms, the episode stream).
    pub fn telemetry(&self) -> Registry {
        lock_recovering(&self.inner).telemetry.clone()
    }

    /// Replaces the restart policy (e.g. to tighten the storm limit in
    /// tests or demos). Prior restart history is discarded.
    pub fn set_policy(&self, policy: RestartPolicy) {
        lock_recovering(&self.inner).recoverer.set_policy(policy);
    }

    /// Registers and starts a service. The name must be a component attached
    /// to the restart tree.
    ///
    /// # Panics
    ///
    /// Panics if the name is not in the restart tree.
    pub fn add_service(
        &self,
        name: &str,
        boot: Duration,
        mut factory: impl FnMut() -> Box<dyn crate::service::Service> + Send + 'static,
    ) {
        let mut inner = lock_recovering(&self.inner);
        assert!(
            inner.recoverer.tree().cell_of_component(name).is_some(),
            "service {name:?} is not attached to the restart tree"
        );
        let service = factory();
        let handle = spawn_service(name.to_string(), self.router.clone(), service, boot);
        inner.procs.insert(name.to_string(), handle);
        inner.specs.insert(
            name.to_string(),
            ServiceSpec {
                factory: Box::new(factory),
                boot,
            },
        );
    }

    /// Waits until every registered service answers pings (initial boot).
    ///
    /// # Panics
    ///
    /// Panics if services fail to come up within `deadline`.
    pub fn await_ready(&self, deadline: Duration) {
        let names: Vec<String> = lock_recovering(&self.inner).specs.keys().cloned().collect();
        let until = Instant::now() + deadline;
        let rx = self.router.register("__await");
        loop {
            for name in &names {
                self.router.send("__await", name, PING);
            }
            let round_end =
                Instant::now() + self.config.ping_timeout.max(Duration::from_millis(20));
            let mut answered = 0;
            while Instant::now() < round_end && answered < names.len() {
                if let Ok(post) = rx.recv_timeout(Duration::from_millis(5)) {
                    if post.body == PONG {
                        answered += 1;
                    }
                }
            }
            if answered >= names.len() {
                break;
            }
            assert!(Instant::now() < until, "services failed to boot");
        }
        self.router.unregister("__await");
    }

    /// Injects a fail-silent crash of `name` (kills the thread's event loop
    /// and unregisters its mailbox) without telling the supervisor — the
    /// watchdog must notice on its own.
    pub fn inject_kill(&self, name: &str) {
        let mut inner = lock_recovering(&self.inner);
        if let Some(handle) = inner.procs.get_mut(name) {
            handle.kill();
        }
        let now = inner.now();
        inner.telemetry.record_injected(now, name, "kill");
        self.router.unregister(name);
    }

    /// Starts the watchdog (FD + REC).
    pub fn start_watchdog(&self) {
        let router = self.router.clone();
        let inner = self.inner.clone();
        let stop = self.watchdog_stop.clone();
        let config = self.config;
        match std::thread::Builder::new()
            .name("rr-watchdog".into())
            .spawn(move || watchdog_loop(router, inner, stop, config))
        {
            Ok(handle) => *lock_recovering(&self.watchdog) = Some(handle),
            Err(_) => {
                // No watchdog thread could be started: record the degraded
                // state instead of aborting. Services keep running unwatched;
                // a later start_watchdog call may succeed.
                lock_recovering(&self.inner)
                    .telemetry
                    .incr("watchdog_spawn_failures");
            }
        }
    }

    /// Stops the watchdog and every service. Service threads are signalled
    /// and detached rather than joined: a wedged service (the hard-failure
    /// case) must not be able to hang shutdown. Healthy threads observe the
    /// stop flag within one poll interval and exit.
    pub fn shutdown(&self) {
        self.watchdog_stop.store(true, Ordering::SeqCst);
        if let Some(t) = lock_recovering(&self.watchdog).take() {
            let _ = t.join();
        }
        let mut inner = lock_recovering(&self.inner);
        let names: Vec<String> = inner.procs.keys().cloned().collect();
        for name in names {
            self.router.unregister(&name);
            if let Some(mut h) = inner.procs.remove(&name) {
                h.kill();
            }
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn watchdog_loop(
    router: Router,
    inner: Arc<Mutex<Inner>>,
    stop: Arc<AtomicBool>,
    config: WatchdogConfig,
) {
    let rx = router.register("__watchdog");
    let mut down: HashMap<String, bool> = HashMap::new();
    while !stop.load(Ordering::SeqCst) {
        let names: Vec<String> = {
            let inner = lock_recovering(&inner);
            inner.specs.keys().cloned().collect()
        };
        for name in &names {
            router.send("__watchdog", name, PING);
        }
        // Collect pongs.
        let round_end = Instant::now() + config.ping_timeout;
        let mut alive: Vec<String> = Vec::new();
        loop {
            let left = round_end.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            if let Ok(post) = rx.recv_timeout(left) {
                if post.body == PONG {
                    alive.push(post.from);
                }
            }
        }

        let mut to_restart: Vec<Vec<String>> = Vec::new();
        {
            let mut guard = lock_recovering(&inner);
            let now = guard.now();
            // Recoveries: pending components that answered again.
            let mut completed: Vec<String> = Vec::new();
            let mut overdue: Vec<String> = Vec::new();
            let mut came_back: Vec<String> = Vec::new();
            for (episode, (issued, pend)) in guard.pending.iter_mut() {
                pend.retain(|c| {
                    let back = alive.contains(c);
                    if back {
                        came_back.push(c.clone());
                    }
                    !back
                });
                if pend.is_empty() {
                    completed.push(episode.clone());
                } else if issued.elapsed() > config.restart_deadline {
                    overdue.push(episode.clone());
                }
            }
            for comp in came_back {
                guard.telemetry.record_component_ready(now, &comp);
            }
            for episode in overdue {
                // The reboot blew its deadline (e.g. the service wedges
                // during boot): declare the restart complete-but-failed so
                // the next missed ping escalates instead of waiting forever.
                guard.pending.remove(&episode);
                guard.recoverer.on_restart_complete(&episode, now);
                guard
                    .telemetry
                    .incr_labeled("restart_deadline_misses", &episode);
            }
            for episode in completed {
                guard.pending.remove(&episode);
                guard.recoverer.on_restart_complete(&episode, now);
                guard.recoverer.on_cured(&episode, now);
                guard.telemetry.record_cured(now, &episode);
                down.insert(episode, false);
            }
            // Failures.
            for name in &names {
                if guard.abandoned.contains(name) {
                    continue; // hard failure: a human must intervene
                }
                if alive.contains(name) {
                    down.insert(name.clone(), false);
                    continue;
                }
                if guard.pending.values().any(|(_, p)| p.contains(name)) {
                    continue; // rebooting on our orders
                }
                if guard.recoverer.is_in_flight(name) {
                    continue;
                }
                if !down.get(name).copied().unwrap_or(false) {
                    guard.telemetry.record_suspected(now, name);
                }
                down.insert(name.clone(), true);
                let decision = guard.recoverer.on_failure(Failure::solo(name.clone()), now);
                match decision {
                    RecoveryDecision::Restart {
                        components,
                        attempt,
                        origins,
                        ..
                    } => {
                        guard
                            .pending
                            .insert(name.clone(), (Instant::now(), components.clone()));
                        guard.restarts += 1;
                        guard.telemetry.record_restarting(
                            now,
                            name,
                            &components,
                            &origins,
                            attempt,
                        );
                        to_restart.push(components);
                    }
                    RecoveryDecision::AlreadyRecovering { .. } => {}
                    RecoveryDecision::GiveUp { reason, .. } => {
                        guard
                            .telemetry
                            .record_quarantined(now, name, &reason.to_string());
                        guard.abandoned.push(name.clone());
                    }
                }
            }
            // Execute restarts while holding the lock (kill + respawn are
            // quick; boots happen on the new threads).
            for components in &to_restart {
                for comp in components {
                    router.unregister(comp);
                    if let Some(handle) = guard.procs.get_mut(comp) {
                        handle.kill();
                    }
                    // A component can appear in a cell without a registered
                    // spec (registered late, or torn down concurrently):
                    // skip it rather than aborting the watchdog thread.
                    let Some(spec) = guard.specs.get_mut(comp) else {
                        continue;
                    };
                    let (service, boot) = ((spec.factory)(), spec.boot);
                    let handle = spawn_service(comp.clone(), router.clone(), service, boot);
                    guard.procs.insert(comp.clone(), handle);
                }
            }
        }
        std::thread::sleep(config.ping_period);
    }
    router.unregister("__watchdog");
}

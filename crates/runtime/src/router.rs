//! Message routing between live services.
//!
//! The threaded runtime's equivalent of Mercury's `mbus`: services address
//! posts by name; the router delivers them to the target's mailbox. A killed
//! service is unregistered, so posts to it vanish silently — the fail-silent
//! behaviour recursive restartability assumes.

use std::collections::HashMap;
use std::sync::Arc;

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{PoisonError, RwLock};

/// A message between services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Post {
    /// Sender name.
    pub from: String,
    /// Payload (the live runtime is transport-agnostic; Mercury's XML
    /// envelopes fit here unchanged).
    pub body: String,
}

/// Why a send failed. Both cases are silent losses from the sender's point
/// of view — the router models `mbus`, whose delivery guarantee is "none" —
/// but supervisors use the distinction for diagnostics: an unregistered
/// target is the normal fail-silent window during recovery, while a
/// disconnected mailbox means the service died without unregistering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// No mailbox is registered under the target name.
    Unregistered,
    /// The mailbox exists but its receiver has been dropped.
    Disconnected,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Unregistered => write!(f, "target is not registered"),
            SendError::Disconnected => write!(f, "target mailbox is disconnected"),
        }
    }
}

impl std::error::Error for SendError {}

/// A clonable, thread-safe name → mailbox registry.
#[derive(Debug, Clone, Default)]
pub struct Router {
    inner: Arc<RwLock<HashMap<String, Sender<Post>>>>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers (or replaces) a mailbox for `name`; returns its receiver.
    pub fn register(&self, name: &str) -> Receiver<Post> {
        let (tx, rx) = channel();
        self.inner
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), tx);
        rx
    }

    /// Unregisters `name`: subsequent posts to it are dropped.
    pub fn unregister(&self, name: &str) {
        self.inner
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name);
    }

    /// Sends a post, reporting why it was dropped. A lock poisoned by a
    /// panicking service thread is recovered, not propagated: the registry
    /// map is always left in a consistent state by the registry operations,
    /// and the router must keep routing while the supervisor restarts
    /// whatever panicked.
    ///
    /// # Errors
    ///
    /// [`SendError::Unregistered`] if no mailbox holds the target name,
    /// [`SendError::Disconnected`] if the mailbox's receiver is gone.
    pub fn try_send(&self, from: &str, to: &str, body: impl Into<String>) -> Result<(), SendError> {
        let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        let tx = guard.get(to).ok_or(SendError::Unregistered)?;
        tx.send(Post {
            from: from.to_string(),
            body: body.into(),
        })
        .map_err(|_| SendError::Disconnected)
    }

    /// Sends a post; returns `false` if the target is unregistered or its
    /// mailbox is gone (both are silent losses by design). The typed
    /// variant is [`try_send`](Self::try_send).
    pub fn send(&self, from: &str, to: &str, body: impl Into<String>) -> bool {
        self.try_send(from, to, body).is_ok()
    }

    /// `true` if a mailbox is registered for `name`.
    pub fn is_registered(&self, name: &str) -> bool {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_send_receive() {
        let router = Router::new();
        let rx = router.register("echo");
        assert!(router.send("caller", "echo", "hi"));
        let post = rx.recv().unwrap();
        assert_eq!(post.from, "caller");
        assert_eq!(post.body, "hi");
    }

    #[test]
    fn unregistered_targets_are_silent() {
        let router = Router::new();
        assert!(!router.send("a", "ghost", "boo"));
        let _rx = router.register("x");
        router.unregister("x");
        assert!(!router.send("a", "x", "boo"));
        assert!(!router.is_registered("x"));
    }

    #[test]
    fn reregistration_replaces_mailbox() {
        let router = Router::new();
        let old_rx = router.register("svc");
        let new_rx = router.register("svc");
        assert!(router.send("a", "svc", "to-new"));
        assert!(new_rx.try_recv().is_ok());
        assert!(old_rx.try_recv().is_err(), "old mailbox no longer fed");
    }

    #[test]
    fn try_send_distinguishes_loss_reasons() {
        let router = Router::new();
        assert_eq!(
            router.try_send("a", "ghost", "boo"),
            Err(SendError::Unregistered)
        );
        let rx = router.register("svc");
        drop(rx);
        assert_eq!(
            router.try_send("a", "svc", "boo"),
            Err(SendError::Disconnected)
        );
        let _rx = router.register("svc");
        assert_eq!(router.try_send("a", "svc", "hi"), Ok(()));
    }

    #[test]
    fn names_sorted() {
        let router = Router::new();
        let _b = router.register("b");
        let _a = router.register("a");
        assert_eq!(router.names(), vec!["a".to_string(), "b".to_string()]);
    }
}

//! Message routing between live services.
//!
//! The threaded runtime's equivalent of Mercury's `mbus`: services address
//! posts by name; the router delivers them to the target's mailbox. A killed
//! service is unregistered, so posts to it vanish silently — the fail-silent
//! behaviour recursive restartability assumes.

use std::collections::HashMap;
use std::sync::Arc;

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::RwLock;

/// A message between services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Post {
    /// Sender name.
    pub from: String,
    /// Payload (the live runtime is transport-agnostic; Mercury's XML
    /// envelopes fit here unchanged).
    pub body: String,
}

/// A clonable, thread-safe name → mailbox registry.
#[derive(Debug, Clone, Default)]
pub struct Router {
    inner: Arc<RwLock<HashMap<String, Sender<Post>>>>,
}

impl Router {
    /// Creates an empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers (or replaces) a mailbox for `name`; returns its receiver.
    pub fn register(&self, name: &str) -> Receiver<Post> {
        let (tx, rx) = channel();
        self.inner.write().unwrap().insert(name.to_string(), tx);
        rx
    }

    /// Unregisters `name`: subsequent posts to it are dropped.
    pub fn unregister(&self, name: &str) {
        self.inner.write().unwrap().remove(name);
    }

    /// Sends a post; returns `false` if the target is unregistered or its
    /// mailbox is gone (both are silent losses by design).
    pub fn send(&self, from: &str, to: &str, body: impl Into<String>) -> bool {
        let guard = self.inner.read().unwrap();
        let Some(tx) = guard.get(to) else {
            return false;
        };
        tx.send(Post {
            from: from.to_string(),
            body: body.into(),
        })
        .is_ok()
    }

    /// `true` if a mailbox is registered for `name`.
    pub fn is_registered(&self, name: &str) -> bool {
        self.inner.read().unwrap().contains_key(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_send_receive() {
        let router = Router::new();
        let rx = router.register("echo");
        assert!(router.send("caller", "echo", "hi"));
        let post = rx.recv().unwrap();
        assert_eq!(post.from, "caller");
        assert_eq!(post.body, "hi");
    }

    #[test]
    fn unregistered_targets_are_silent() {
        let router = Router::new();
        assert!(!router.send("a", "ghost", "boo"));
        let _rx = router.register("x");
        router.unregister("x");
        assert!(!router.send("a", "x", "boo"));
        assert!(!router.is_registered("x"));
    }

    #[test]
    fn reregistration_replaces_mailbox() {
        let router = Router::new();
        let old_rx = router.register("svc");
        let new_rx = router.register("svc");
        assert!(router.send("a", "svc", "to-new"));
        assert!(new_rx.try_recv().is_ok());
        assert!(old_rx.try_recv().is_err(), "old mailbox no longer fed");
    }

    #[test]
    fn names_sorted() {
        let router = Router::new();
        let _b = router.register("b");
        let _a = router.register("a");
        assert_eq!(router.names(), vec!["a".to_string(), "b".to_string()]);
    }
}

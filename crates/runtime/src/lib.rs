//! # rr-runtime — a live, threaded recursive-restartability runtime
//!
//! The simulator (`rr-sim` + `mercury`) reproduces the paper's experiments in
//! virtual time; this crate runs the same supervision concepts on *real OS
//! threads*: services with mailboxes ([`Router`]), fail-silent kills,
//! application-level liveness pings, and a watchdog ([`Supervisor`]) that
//! drives an `rr-core` [`Recoverer`](rr_core::Recoverer) over a restart tree
//! — the Erlang/OTP-style supervision pattern the paper's ideas prefigure,
//! with restart *groups* instead of one-for-one strategies.
//!
//! Timescales are milliseconds instead of Mercury's seconds so demos and
//! tests run quickly; the structure is otherwise identical.
//!
//! ```
//! use rr_core::tree::TreeSpec;
//! use rr_core::PerfectOracle;
//! use rr_runtime::{Post, Service, ServiceCtx, Supervisor, WatchdogConfig};
//! use std::time::Duration;
//!
//! struct Echo;
//! impl Service for Echo {
//!     fn on_post(&mut self, post: Post, ctx: &mut ServiceCtx<'_>) {
//!         ctx.send(&post.from, format!("echo:{}", post.body));
//!     }
//! }
//!
//! let tree = TreeSpec::cell("root")
//!     .with_child(TreeSpec::cell("R_echo").with_component("echo"))
//!     .build()?;
//! let sup = Supervisor::new(tree, Box::new(PerfectOracle::new()), WatchdogConfig::default());
//! sup.add_service("echo", Duration::from_millis(5), || Box::new(Echo));
//! sup.await_ready(Duration::from_secs(5));
//! sup.start_watchdog();
//!
//! // Fail-silently kill the service; the watchdog restarts it.
//! sup.inject_kill("echo");
//! let deadline = std::time::Instant::now() + Duration::from_secs(5);
//! while sup.restarts() == 0 {
//!     assert!(std::time::Instant::now() < deadline);
//!     std::thread::sleep(Duration::from_millis(5));
//! }
//! sup.shutdown();
//! # Ok::<(), rr_core::TreeError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![warn(missing_docs)]

pub mod router;
pub mod service;
pub mod supervisor;

pub use router::{Post, Router};
pub use service::{Service, ServiceCtx, PING, PONG};
pub use supervisor::{Supervisor, WatchdogConfig};

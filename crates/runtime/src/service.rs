//! Live services: the threaded counterpart of the simulator's actors.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use std::sync::mpsc::RecvTimeoutError;

use crate::router::{Post, Router};

/// The liveness probe body the runtime answers automatically.
pub const PING: &str = "__ping";
/// The liveness reply body.
pub const PONG: &str = "__pong";

/// A live service: user logic driven by the per-process thread.
///
/// Restart semantics match the paper's: a restart constructs a *fresh*
/// service value from the factory, so all state is lost — "restarts
/// unequivocally return software to its start state" (§3).
pub trait Service: Send {
    /// Called once per incarnation, after the (simulated) boot delay.
    fn on_start(&mut self, ctx: &mut ServiceCtx<'_>) {
        let _ = ctx;
    }

    /// Handles one post.
    fn on_post(&mut self, post: Post, ctx: &mut ServiceCtx<'_>);
}

/// Capabilities available to a service while handling an event.
#[derive(Debug)]
pub struct ServiceCtx<'a> {
    name: &'a str,
    router: &'a Router,
}

impl ServiceCtx<'_> {
    /// The service's registered name.
    pub fn name(&self) -> &str {
        self.name
    }

    /// Sends a post to another service (silently dropped if it is down).
    pub fn send(&self, to: &str, body: impl Into<String>) -> bool {
        self.router.send(self.name, to, body)
    }
}

/// Constructor for a service incarnation.
pub type ServiceFactory = Box<dyn FnMut() -> Box<dyn Service> + Send>;

/// Handle to a running service process. The thread handle is retained for
/// the unit tests (which join cooperatively exiting services); the
/// supervisor itself signals and detaches, so a wedged service cannot hang
/// shutdown.
#[derive(Debug)]
pub(crate) struct ProcessHandle {
    pub(crate) stop: Arc<AtomicBool>,
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) thread: Option<JoinHandle<()>>,
}

impl ProcessHandle {
    /// Requests the thread to exit and detaches it (fail-silent kill: the
    /// thread notices the flag at its next poll).
    pub(crate) fn kill(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    #[cfg(test)]
    pub(crate) fn join(&mut self) {
        self.kill();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Spawns a service thread: waits out `boot`, registers with the router,
/// runs `on_start`, then serves the mailbox until stopped. The runtime
/// answers [`PING`] posts itself — a wedged `on_post` therefore stops pongs,
/// exactly like a hung JVM.
///
/// A service that **panics** in `on_start` or `on_post` is treated as a
/// crash fault, not a runtime bug: the panic is caught, the mailbox is
/// unregistered, and the thread exits cleanly. The service stops answering
/// pings, so the watchdog detects the crash on the next round and recovers
/// it through the ordinary restart path.
///
/// If the OS refuses to spawn the thread at all, the returned handle is
/// already dead (stop flag set, no thread) — the same missed-ping detection
/// turns the failed spawn into a retried restart instead of an abort.
pub(crate) fn spawn_service(
    name: String,
    router: Router,
    mut service: Box<dyn Service>,
    boot: Duration,
) -> ProcessHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let spawned = std::thread::Builder::new()
        .name(name.clone())
        .spawn(move || {
            // Simulated boot (JVM start / hardware negotiation).
            std::thread::sleep(boot);
            if stop_flag.load(Ordering::SeqCst) {
                return;
            }
            let rx = router.register(&name);
            let started = catch_unwind(AssertUnwindSafe(|| {
                let mut ctx = ServiceCtx {
                    name: &name,
                    router: &router,
                };
                service.on_start(&mut ctx);
            }));
            if started.is_err() {
                // Crashed during boot: go silent and let the watchdog see it.
                router.unregister(&name);
                return;
            }
            loop {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                match rx.recv_timeout(Duration::from_millis(5)) {
                    Ok(post) => {
                        if stop_flag.load(Ordering::SeqCst) {
                            break;
                        }
                        if post.body == PING {
                            router.send(&name, &post.from, PONG);
                        } else {
                            let handled = catch_unwind(AssertUnwindSafe(|| {
                                let mut ctx = ServiceCtx {
                                    name: &name,
                                    router: &router,
                                };
                                service.on_post(post, &mut ctx);
                            }));
                            if handled.is_err() {
                                // The service crashed on this post. Exit
                                // fail-silent: deregister so nothing else is
                                // delivered, stop answering pings, and let
                                // the watchdog's crash-fault path restart us.
                                router.unregister(&name);
                                return;
                            }
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        });
    match spawned {
        Ok(thread) => ProcessHandle {
            stop,
            thread: Some(thread),
        },
        Err(_) => {
            // Could not start the thread (resource exhaustion). Hand back a
            // dead process; missed pings will drive a retry via restart.
            stop.store(true, Ordering::SeqCst);
            ProcessHandle { stop, thread: None }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Service for Echo {
        fn on_post(&mut self, post: Post, ctx: &mut ServiceCtx<'_>) {
            ctx.send(&post.from, format!("echo:{}", post.body));
        }
    }

    #[test]
    fn service_answers_pings_and_posts() {
        let router = Router::new();
        let probe_rx = router.register("probe");
        let mut handle = spawn_service(
            "echo".into(),
            router.clone(),
            Box::new(Echo),
            Duration::from_millis(1),
        );
        // Wait for registration.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !router.is_registered("echo") {
            assert!(
                std::time::Instant::now() < deadline,
                "echo never registered"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        router.send("probe", "echo", PING);
        let pong = probe_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(pong.body, PONG);
        router.send("probe", "echo", "hello");
        let reply = probe_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(reply.body, "echo:hello");
        handle.join();
    }

    #[test]
    fn killed_service_goes_silent() {
        let router = Router::new();
        let probe_rx = router.register("probe");
        let mut handle = spawn_service(
            "victim".into(),
            router.clone(),
            Box::new(Echo),
            Duration::from_millis(1),
        );
        while !router.is_registered("victim") {
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.kill();
        router.unregister("victim");
        std::thread::sleep(Duration::from_millis(20));
        assert!(!router.send("probe", "victim", PING));
        assert!(probe_rx.recv_timeout(Duration::from_millis(50)).is_err());
        handle.join();
    }
}

#![allow(clippy::disallowed_methods)]
//! Integration tests for the live threaded supervisor: consolidated group
//! restarts, repeated failures, state loss on restart, and clean shutdown —
//! the paper's semantics on real OS threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rr_core::tree::TreeSpec;
use rr_core::PerfectOracle;
use rr_runtime::{Post, Service, ServiceCtx, Supervisor, WatchdogConfig, PING, PONG};

struct Counter {
    processed: u64,
    incarnations: Arc<AtomicU64>,
}

impl Service for Counter {
    fn on_start(&mut self, _ctx: &mut ServiceCtx<'_>) {
        self.incarnations.fetch_add(1, Ordering::SeqCst);
    }

    fn on_post(&mut self, post: Post, ctx: &mut ServiceCtx<'_>) {
        self.processed += 1;
        ctx.send(&post.from, format!("count:{}", self.processed));
    }
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn pipeline_tree() -> rr_core::RestartTree {
    TreeSpec::cell("pipeline")
        .with_child(TreeSpec::cell("R_solo").with_component("solo"))
        .with_child(TreeSpec::cell("R_[a,b]").with_components(["a", "b"]))
        .build()
        .unwrap()
}

fn build() -> (Supervisor, Arc<AtomicU64>, Arc<AtomicU64>, Arc<AtomicU64>) {
    let sup = Supervisor::new(
        pipeline_tree(),
        Box::new(PerfectOracle::new()),
        WatchdogConfig::default(),
    );
    let inc_solo = Arc::new(AtomicU64::new(0));
    let inc_a = Arc::new(AtomicU64::new(0));
    let inc_b = Arc::new(AtomicU64::new(0));
    for (name, counter) in [("solo", &inc_solo), ("a", &inc_a), ("b", &inc_b)] {
        let c = counter.clone();
        sup.add_service(name, Duration::from_millis(5), move || {
            Box::new(Counter {
                processed: 0,
                incarnations: c.clone(),
            })
        });
    }
    sup.await_ready(Duration::from_secs(10));
    sup.start_watchdog();
    (sup, inc_solo, inc_a, inc_b)
}

#[test]
fn solo_failure_restarts_only_its_cell() {
    let (sup, inc_solo, inc_a, inc_b) = build();
    let a_before = inc_a.load(Ordering::SeqCst);
    let b_before = inc_b.load(Ordering::SeqCst);
    sup.inject_kill("solo");
    assert!(
        wait_until(Duration::from_secs(10), || inc_solo.load(Ordering::SeqCst)
            >= 2),
        "solo must be reincarnated"
    );
    // a and b were untouched.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(inc_a.load(Ordering::SeqCst), a_before);
    assert_eq!(inc_b.load(Ordering::SeqCst), b_before);
    sup.shutdown();
}

#[test]
fn consolidated_cell_restarts_both_members() {
    let (sup, _inc_solo, inc_a, inc_b) = build();
    let b_before = inc_b.load(Ordering::SeqCst);
    sup.inject_kill("a");
    assert!(
        wait_until(Duration::from_secs(10), || {
            inc_a.load(Ordering::SeqCst) >= 2 && inc_b.load(Ordering::SeqCst) > b_before
        }),
        "killing a must also reincarnate its cellmate b"
    );
    sup.shutdown();
}

#[test]
fn state_is_wiped_by_restart() {
    let (sup, inc_solo, ..) = build();
    let rx = sup.router().register("probe");
    // Feed it three jobs; counter reaches 3.
    for _ in 0..3 {
        sup.router().send("probe", "solo", "job");
    }
    let mut last = String::new();
    for _ in 0..3 {
        last = rx.recv_timeout(Duration::from_secs(2)).unwrap().body;
    }
    assert_eq!(last, "count:3");
    sup.inject_kill("solo");
    assert!(wait_until(Duration::from_secs(10), || {
        inc_solo.load(Ordering::SeqCst) >= 2 && sup.router().is_registered("solo")
    }));
    // Drain any stragglers, then the fresh incarnation counts from 1.
    while rx.try_recv().is_ok() {}
    sup.router().send("probe", "solo", "job");
    let body = rx.recv_timeout(Duration::from_secs(2)).unwrap().body;
    assert_eq!(
        body, "count:1",
        "restart must return the service to its start state"
    );
    sup.shutdown();
}

#[test]
fn repeated_failures_keep_being_cured() {
    let (sup, inc_solo, ..) = build();
    for round in 2..5u64 {
        sup.inject_kill("solo");
        assert!(
            wait_until(Duration::from_secs(10), || inc_solo.load(Ordering::SeqCst)
                >= round),
            "round {round} not recovered"
        );
        // Let the cure be confirmed before the next kill.
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(sup.restarts() >= 3);
    sup.shutdown();
}

/// A service whose `on_start` wedges forever: restart never cures it (a
/// "hard" failure in the paper's terms).
struct Wedged;
impl Service for Wedged {
    fn on_start(&mut self, _ctx: &mut ServiceCtx<'_>) {
        // Simulate a service that hangs during initialization: it never
        // reaches its mailbox loop quickly enough to answer pings.
        std::thread::sleep(Duration::from_secs(3600));
    }
    fn on_post(&mut self, _post: Post, _ctx: &mut ServiceCtx<'_>) {}
}

#[test]
fn hard_failures_are_abandoned_not_looped_on() {
    let tree = TreeSpec::cell("root")
        .with_child(TreeSpec::cell("R_ok").with_component("ok"))
        .with_child(TreeSpec::cell("R_wedged").with_component("wedged"))
        .build()
        .unwrap();
    let sup = Supervisor::new(
        tree,
        Box::new(PerfectOracle::new()),
        WatchdogConfig::default(),
    );
    // A tight policy so the test converges quickly: two strikes and out.
    sup.set_policy(
        rr_core::RestartPolicy::new()
            .with_escalation_limit(2)
            .with_rate_limit(2, Duration::from_secs(3600).into()),
    );
    let healthy = Arc::new(AtomicU64::new(0));
    let h = healthy.clone();
    sup.add_service("ok", Duration::from_millis(5), move || {
        Box::new(Counter {
            processed: 0,
            incarnations: h.clone(),
        })
    });
    let wedged_inc = Arc::new(AtomicU64::new(0));
    let w = wedged_inc.clone();
    sup.add_service("wedged", Duration::from_millis(5), move || {
        w.fetch_add(1, Ordering::SeqCst);
        Box::new(Wedged)
    });
    // Only wait for the healthy service (the wedged one never answers).
    let rx = sup.router().register("probe");
    assert!(wait_until(Duration::from_secs(10), || {
        sup.router().send("probe", "ok", PING);
        rx.recv_timeout(Duration::from_millis(50))
            .map(|p| p.body == PONG)
            .unwrap_or(false)
    }));
    sup.start_watchdog();

    // The watchdog tries, then gives up.
    assert!(
        wait_until(Duration::from_secs(15), || {
            sup.abandoned().contains(&"wedged".to_string())
        }),
        "policy must abandon the wedged service (incarnations: {})",
        wedged_inc.load(Ordering::SeqCst)
    );
    let incarnations_at_giveup = wedged_inc.load(Ordering::SeqCst);
    // And stops restarting it.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(wedged_inc.load(Ordering::SeqCst), incarnations_at_giveup);
    // The healthy service is unaffected.
    sup.router().send("probe", "ok", "job");
    assert!(rx
        .recv_timeout(Duration::from_secs(2))
        .map(|p| p.body.starts_with("count:") || p.body == PONG)
        .unwrap_or(false));
    sup.shutdown();
}

#[test]
fn shutdown_unregisters_everything() {
    let (sup, ..) = build();
    sup.shutdown();
    for name in ["solo", "a", "b"] {
        assert!(!sup.router().is_registered(name), "{name} still registered");
    }
    // Posts after shutdown are silently dropped, not panics.
    assert!(!sup.router().send("x", "solo", PING));
}

#[test]
fn watchdog_answers_are_real_pongs() {
    // Sanity-check the ping protocol itself.
    let (sup, ..) = build();
    let rx = sup.router().register("probe");
    sup.router().send("probe", "a", PING);
    let reply = rx.recv_timeout(Duration::from_secs(2)).unwrap();
    assert_eq!(reply.body, PONG);
    assert_eq!(reply.from, "a");
    sup.shutdown();
}

/// A service that panics while handling a specific post — the crash-fault
/// regression for the supervisor's panic hardening: the panic must be
/// contained to the service's own thread, detected as a missed ping, and
/// cured by an ordinary restart. Before the hardening this panicked straight
/// through the service loop and the component simply went dark forever (and
/// a panic while the supervisor's lock was held would poison every later
/// `lock()` in the watchdog).
struct PanicsOnPoison {
    incarnations: Arc<AtomicU64>,
}

impl Service for PanicsOnPoison {
    fn on_start(&mut self, _ctx: &mut ServiceCtx<'_>) {
        self.incarnations.fetch_add(1, Ordering::SeqCst);
    }

    fn on_post(&mut self, post: Post, ctx: &mut ServiceCtx<'_>) {
        if post.body == "poison" {
            panic!("injected service panic");
        }
        ctx.send(&post.from, PONG);
    }
}

#[test]
fn panicking_child_is_recovered_as_a_crash_fault() {
    let tree = TreeSpec::cell("root")
        .with_child(TreeSpec::cell("R_frag").with_component("fragile"))
        .build()
        .unwrap();
    let sup = Supervisor::new(
        tree,
        Box::new(PerfectOracle::new()),
        WatchdogConfig::default(),
    );
    let inc = Arc::new(AtomicU64::new(0));
    let i = inc.clone();
    sup.add_service("fragile", Duration::from_millis(5), move || {
        Box::new(PanicsOnPoison {
            incarnations: i.clone(),
        })
    });
    sup.await_ready(Duration::from_secs(10));
    sup.start_watchdog();
    assert!(wait_until(Duration::from_secs(5), || {
        inc.load(Ordering::SeqCst) >= 1
    }));

    // Poison it: the service thread panics on this post.
    sup.router().send("probe", "fragile", "poison");

    // The watchdog must notice the silent death and reincarnate it.
    assert!(
        wait_until(Duration::from_secs(10), || inc.load(Ordering::SeqCst) >= 2),
        "panicked service must be restarted, not left dark"
    );
    assert!(sup.restarts() >= 1, "the restart must go through REC");

    // The fresh incarnation serves traffic again.
    let rx = sup.router().register("probe");
    assert!(wait_until(Duration::from_secs(5), || {
        sup.router().send("probe", "fragile", "job");
        rx.recv_timeout(Duration::from_millis(100))
            .map(|p| p.body == PONG)
            .unwrap_or(false)
    }));

    // Telemetry saw the whole episode: a suspicion, a restart, and (once
    // the watchdog confirms the reincarnation answers pings) a cure.
    assert!(
        wait_until(Duration::from_secs(10), || {
            sup.telemetry().counter("episodes_cured", "") >= 1
        }),
        "the cure must be confirmed and recorded"
    );
    let telemetry = sup.telemetry();
    assert!(telemetry.counter("fd_suspicions", "fragile") >= 1);
    assert!(telemetry.counter("restarts_issued", "") >= 1);
    assert!(telemetry.counter("component_restarts", "fragile") >= 1);
    sup.shutdown();
}

/// Repeated panics escalate through the policy like any other crash fault
/// and are eventually abandoned as hard failures — the supervisor thread
/// itself must survive every one of them.
#[test]
fn always_panicking_child_is_abandoned_without_killing_the_supervisor() {
    struct AlwaysPanics;
    impl Service for AlwaysPanics {
        fn on_start(&mut self, _ctx: &mut ServiceCtx<'_>) {
            panic!("panic during boot");
        }
        fn on_post(&mut self, _post: Post, _ctx: &mut ServiceCtx<'_>) {}
    }
    let tree = TreeSpec::cell("root")
        .with_child(TreeSpec::cell("R_ok").with_component("ok"))
        .with_child(TreeSpec::cell("R_bad").with_component("bad"))
        .build()
        .unwrap();
    let sup = Supervisor::new(
        tree,
        Box::new(PerfectOracle::new()),
        WatchdogConfig::default(),
    );
    sup.set_policy(
        rr_core::RestartPolicy::new()
            .with_escalation_limit(2)
            .with_rate_limit(2, Duration::from_secs(3600).into()),
    );
    let healthy = Arc::new(AtomicU64::new(0));
    let h = healthy.clone();
    sup.add_service("ok", Duration::from_millis(5), move || {
        Box::new(Counter {
            processed: 0,
            incarnations: h.clone(),
        })
    });
    sup.add_service("bad", Duration::from_millis(5), move || {
        Box::new(AlwaysPanics)
    });
    // Only the healthy service will ever answer.
    let rx = sup.router().register("probe");
    assert!(wait_until(Duration::from_secs(10), || {
        sup.router().send("probe", "ok", PING);
        rx.recv_timeout(Duration::from_millis(50))
            .map(|p| p.body == PONG)
            .unwrap_or(false)
    }));
    sup.start_watchdog();
    assert!(
        wait_until(Duration::from_secs(15), || {
            sup.abandoned().contains(&"bad".to_string())
        }),
        "a child that panics every boot must be quarantined"
    );
    // The healthy sibling and the supervisor both still work.
    sup.router().send("probe", "ok", "job");
    assert!(rx
        .recv_timeout(Duration::from_secs(2))
        .map(|p| p.body.starts_with("count:"))
        .unwrap_or(false));
    assert!(sup.telemetry().counter("episodes_gaveup", "") >= 1);
    sup.shutdown();
}

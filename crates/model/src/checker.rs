//! Exhaustive bounded exploration with minimal counterexamples.
//!
//! Iterative-deepening DFS over [`Model`] states: the checker explores every
//! interleaving of enabled actions up to a depth bound, deduplicating states
//! by their canonical [`State::signature`] (a memoized signature is
//! re-expanded only when revisited with more remaining budget, which keeps
//! pruning sound per iteration). Because the depth bound grows one step at a
//! time and action order is deterministic, the **first** violation found has
//! a minimal-length trace, and [`replay`] can re-execute it step by step —
//! the counterexample is evidence, not just a claim.
//!
//! With [`CheckConfig::por`] on (the default) the search consults
//! [`FlowContext::ample`] at every expanded state: when the static analysis
//! certifies a singleton ample set, only that action is recursed into and
//! the remaining interleavings of the commuting cluster are pruned. Three
//! guards keep the reduction sound end to end:
//!
//! * **probing** — every enabled action is still *applied* at every visited
//!   state, so safety violations surfacing in `apply` (antichain breaks,
//!   rogue restarts, suspicion loss) are caught even on pruned branches;
//!   only the recursion is reduced;
//! * **cycle proviso** — if the ample successor's signature is already on
//!   the current DFS path, the state is expanded fully instead, so the
//!   liveness-under-fairness check cannot be starved around a reduced cycle
//!   (the protocol's state graph is in fact acyclic — every action bumps a
//!   monotone counter — so the proviso is insurance, not a hot path);
//! * **re-minimization** — a reduced search may reach a violation by a
//!   non-minimal trace, so [`check`] re-runs the *full* search bounded by
//!   the reduced trace's length and reports that counterexample, keeping
//!   minimized counterexamples byte-identical with and without reduction.

use rr_sim::{FxHashMap, FxHashSet};

use crate::flow::FlowContext;
use crate::machine::{Action, Model, ModelError, State, Violation};

/// Exploration bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Maximum interleaving depth (protocol steps per trace).
    pub max_depth: usize,
    /// Hard cap on visited states; exceeding it aborts with an error (the
    /// RRL701 lint estimates this *before* running).
    pub state_budget: u64,
    /// Apply rr-flow's ample-set partial-order reduction (default). Turn
    /// off to force full interleaving exploration — the `--no-por` escape
    /// hatch and the reference side of the differential suite.
    pub por: bool,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            max_depth: crate::DEFAULT_DEPTH,
            state_budget: crate::DEFAULT_STATE_BUDGET,
            por: true,
        }
    }
}

/// A violating run: the broken invariant plus the minimal action trace that
/// reaches it from the initial state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The invariant that broke (or the liveness property).
    pub violation: Violation,
    /// The actions from the initial state, in order; replay with
    /// [`replay`].
    pub trace: Vec<Action>,
}

impl Counterexample {
    /// Renders the trace in the golden-trace line format
    /// (`<nanos> mark <label>`), one protocol step per second of virtual
    /// time, so CI prints counterexamples exactly like trace diffs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, action) in self.trace.iter().enumerate() {
            let nanos = (i as u64 + 1) * 1_000_000_000;
            out.push_str(&format!("{nanos} mark {}\n", action.label()));
        }
        out.push_str(&format!(
            "violation {}: {}\n",
            self.violation.kind.name(),
            self.violation.detail
        ));
        out
    }
}

/// What an exploration did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// States visited across all deepening iterations (with revisits).
    pub states_explored: u64,
    /// Distinct canonical signatures seen in the deepest iteration.
    pub distinct_states: u64,
    /// The depth bound actually explored.
    pub depth: usize,
    /// Quiescent states (no action enabled) that passed the liveness check.
    pub quiescent_states: u64,
    /// The first violation found, with its minimal trace.
    pub violation: Option<Counterexample>,
}

struct Search<'m> {
    model: &'m Model,
    /// The ample-set oracle; `None` explores every interleaving.
    flow: Option<&'m FlowContext>,
    budget: u64,
    states_explored: u64,
    quiescent_states: u64,
    /// signature → most remaining depth it was expanded with (this
    /// iteration); re-expand only with strictly more budget. Lookup-only
    /// (never iterated), so the deterministic `FxHashMap` is safe and the
    /// string hashing it avoids is the dedup hot path.
    seen: FxHashMap<String, usize>,
    /// Signatures of the states on the current DFS path — the cycle
    /// proviso's witness set. Membership-only, so `FxHashSet` is safe.
    on_stack: FxHashSet<String>,
    trace: Vec<Action>,
}

impl Search<'_> {
    fn dfs(
        &mut self,
        state: &State,
        remaining: usize,
    ) -> Result<Option<Counterexample>, ModelError> {
        self.states_explored += 1;
        if self.states_explored > self.budget {
            return Err(ModelError {
                message: format!(
                    "state budget {} exhausted — shrink the scenario or raise the bound \
                     (rr-lint RRL701 estimates this up front)",
                    self.budget
                ),
            });
        }
        let actions = self.model.enabled(state);
        if actions.is_empty() {
            self.quiescent_states += 1;
            if let Err(violation) = self.model.check_quiescent(state) {
                return Ok(Some(Counterexample {
                    violation,
                    trace: self.trace.clone(),
                }));
            }
            return Ok(None);
        }
        if remaining == 0 {
            return Ok(None);
        }
        // Probe: apply *every* enabled action first, so safety violations
        // raised by `apply` are never missed even when recursion is pruned.
        let mut successors = Vec::with_capacity(actions.len());
        for action in &actions {
            match self.model.apply(state, action) {
                Ok(next) => successors.push(next),
                Err(violation) => {
                    let mut trace = self.trace.clone();
                    trace.push(action.clone());
                    return Ok(Some(Counterexample { violation, trace }));
                }
            }
        }
        let ample = self
            .flow
            .and_then(|flow| flow.ample(self.model, state, &actions));
        let chosen: Vec<usize> = match ample {
            Some(i) => {
                // Cycle proviso (liveness condition C3): a reduced step that
                // closes a cycle through the current path could postpone the
                // pruned actions forever; expand fully instead.
                let sig = successors[i].signature(self.model.tree());
                if self.on_stack.contains(&sig) {
                    (0..actions.len()).collect()
                } else {
                    vec![i]
                }
            }
            None => (0..actions.len()).collect(),
        };
        for i in chosen {
            let next = &successors[i];
            let signature = next.signature(self.model.tree());
            let left = remaining - 1;
            match self.seen.get(&signature) {
                Some(&had) if had >= left => continue,
                _ => {
                    self.seen.insert(signature.clone(), left);
                }
            }
            self.trace.push(actions[i].clone());
            self.on_stack.insert(signature.clone());
            let found = self.dfs(next, left)?;
            self.on_stack.remove(&signature);
            self.trace.pop();
            if found.is_some() {
                return Ok(found);
            }
        }
        Ok(None)
    }
}

fn explore(
    model: &Model,
    cfg: &CheckConfig,
    flow: Option<&FlowContext>,
) -> Result<CheckOutcome, ModelError> {
    let initial = model.initial();
    let mut states_explored = 0;
    let mut outcome = CheckOutcome {
        states_explored: 0,
        distinct_states: 0,
        depth: 0,
        quiescent_states: 0,
        violation: None,
    };
    for bound in 1..=cfg.max_depth.max(1) {
        let mut search = Search {
            model,
            flow,
            budget: cfg.state_budget.saturating_sub(states_explored),
            states_explored: 0,
            quiescent_states: 0,
            seen: FxHashMap::default(),
            on_stack: FxHashSet::default(),
            trace: Vec::new(),
        };
        search.on_stack.insert(initial.signature(model.tree()));
        let found = search.dfs(&initial, bound).map_err(|e| ModelError {
            message: format!("depth {bound}: {}", e.message),
        })?;
        states_explored += search.states_explored;
        outcome.states_explored = states_explored;
        outcome.distinct_states = search.seen.len() as u64 + 1;
        outcome.depth = bound;
        outcome.quiescent_states = search.quiescent_states;
        if let Some(counterexample) = found {
            outcome.violation = Some(counterexample);
            return Ok(outcome);
        }
    }
    Ok(outcome)
}

/// Exhaustively explores `model` up to `cfg.max_depth`, iterative-deepening
/// so the first counterexample found is minimal.
///
/// With `cfg.por` on, the search is reduced by rr-flow's ample sets (see the
/// module docs for the soundness guards). A violation found by the reduced
/// search is re-minimized by a full search bounded at the reduced trace's
/// length, so the reported counterexample is byte-identical to what full
/// exploration would print; if that re-run cannot complete within the state
/// budget, the reduced (still replayable, possibly non-minimal)
/// counterexample is reported instead.
///
/// # Errors
///
/// Returns a [`ModelError`] if the state budget is exhausted before the
/// exploration completes.
pub fn check(model: &Model, cfg: &CheckConfig) -> Result<CheckOutcome, ModelError> {
    let flow = cfg.por.then(|| FlowContext::new(model));
    let mut outcome = explore(model, cfg, flow.as_ref())?;
    if let (true, Some(reduced_ce)) = (cfg.por, &outcome.violation) {
        let minimize = CheckConfig {
            max_depth: reduced_ce.trace.len(),
            state_budget: cfg.state_budget,
            por: false,
        };
        if let Ok(CheckOutcome {
            violation: Some(minimal),
            ..
        }) = explore(model, &minimize, None)
        {
            outcome.violation = Some(minimal);
        }
    }
    Ok(outcome)
}

/// Re-executes a counterexample trace from the initial state, returning the
/// violation it reproduces (`None` if the trace no longer violates — i.e.
/// the counterexample went stale against the current code).
pub fn replay(model: &Model, trace: &[Action]) -> Option<Violation> {
    let mut state = model.initial();
    for action in trace {
        if !model.enabled(&state).contains(action) {
            return None;
        }
        match model.apply(&state, action) {
            Ok(next) => state = next,
            Err(violation) => return Some(violation),
        }
    }
    if model.enabled(&state).is_empty() {
        model.check_quiescent(&state).err()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Model, ViolationKind};
    use crate::scenario;
    use rr_core::tree::{RestartTree, TreeSpec};

    fn tree_iv() -> RestartTree {
        TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
            .with_child(
                TreeSpec::cell("R_[fedr,pbcom]")
                    .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
                    .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom")),
            )
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
            .build()
            .unwrap()
    }

    fn model(text: &str) -> Model {
        Model::new(tree_iv(), &scenario::parse(text).unwrap()).unwrap()
    }

    #[test]
    fn clean_scenario_explores_with_zero_violations() {
        let m = model("tree IV\nfault pbcom\nfault fedr cures fedr pbcom\n");
        let outcome = check(&m, &CheckConfig::default()).unwrap();
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(
            outcome.quiescent_states > 0,
            "liveness was actually checked"
        );
        assert!(outcome.distinct_states > 10);
    }

    #[test]
    fn naive_oracle_escalation_is_clean_too() {
        let m = model("tree IV\noracle naive\nfault fedr cures fedr pbcom\n");
        let outcome = check(&m, &CheckConfig::default()).unwrap();
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    }

    #[test]
    fn drop_report_yields_minimal_counterexample() {
        let m = model("tree IV\nfault rtu\nmutate drop-report\n");
        let outcome = check(&m, &CheckConfig::default()).unwrap();
        let ce = outcome.violation.expect("must be rejected");
        assert_eq!(ce.violation.kind, ViolationKind::ComponentLost);
        // Minimal: inject, then the dropped report. Nothing shorter exists.
        assert_eq!(ce.trace.len(), 2);
        assert_eq!(replay(&m, &ce.trace), Some(ce.violation.clone()));
        assert!(ce.render().contains("mark inject:rtu"));
        assert!(ce.render().contains("violation component-lost"));
    }

    #[test]
    fn bypass_planner_yields_replayable_counterexample() {
        let m = model("tree IV\nfault pbcom\nfault fedr cures fedr pbcom\nmutate bypass-planner\n");
        let outcome = check(&m, &CheckConfig::default()).unwrap();
        let ce = outcome.violation.expect("must be rejected");
        assert_eq!(replay(&m, &ce.trace), Some(ce.violation.clone()));
    }

    #[test]
    fn admission_scenario_explores_clean() {
        let m = model("tree IV\nadmission\nfault pbcom\nfault fedr cures fedr pbcom\n");
        let outcome = check(&m, &CheckConfig::default()).unwrap();
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.quiescent_states > 0);
    }

    #[test]
    fn starve_deferred_yields_minimal_starvation_counterexample() {
        let m = model("tree IV\nadmission\nfault rtu\nmutate starve-deferred\n");
        let outcome = check(&m, &CheckConfig::default()).unwrap();
        let ce = outcome.violation.expect("must be rejected");
        assert_eq!(ce.violation.kind, ViolationKind::Starvation);
        // Minimal: inject, defer, rollover — then the queue is stuck for good.
        assert_eq!(ce.trace.len(), 3);
        assert_eq!(replay(&m, &ce.trace), Some(ce.violation.clone()));
        assert!(ce.render().contains("mark defer:rtu"));
        assert!(ce.render().contains("violation deferred-starved"));
    }

    #[test]
    fn determinism_same_scenario_same_counterexample() {
        let text = "tree IV\nfault pbcom\nfault fedr cures fedr pbcom\nmutate bypass-planner\n";
        let a = check(&model(text), &CheckConfig::default()).unwrap();
        let b = check(&model(text), &CheckConfig::default()).unwrap();
        assert_eq!(a.violation, b.violation);
        assert_eq!(a.states_explored, b.states_explored);
    }

    #[test]
    fn state_budget_exhaustion_is_an_error_not_a_pass() {
        let m = model("tree IV\nfault pbcom\nfault rtu\nfault mbus\n");
        let tiny = CheckConfig {
            max_depth: 12,
            state_budget: 50,
            por: false,
        };
        assert!(check(&m, &tiny).is_err());
    }
}

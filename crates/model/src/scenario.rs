//! The scenario format the model checker explores.
//!
//! A scenario names a restart tree, an oracle, the set of faults the
//! adversary may inject, and optionally a *mutation* — a deliberately broken
//! protocol driver the checker must reject (the seeded-violation fixtures
//! under `tests/model-fixtures/`). The textual form is line-oriented, with
//! `#` comments, mirroring `rr_sim::FaultScript`:
//!
//! ```text
//! # Two correlated faults on tree IV.
//! tree IV
//! oracle perfect
//! depth 12
//! fault pbcom
//! fault fedr cures fedr pbcom
//! ```

use std::fmt;

/// Which oracle drives the modelled recoverer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleKind {
    /// [`rr_core::PerfectOracle`]: minimal restart policy (§3.3).
    #[default]
    Perfect,
    /// [`rr_core::NaiveOracle`]: own cell first, escalate on persistence.
    Naive,
}

impl OracleKind {
    /// Short name, as written in scenario files.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Perfect => "perfect",
            OracleKind::Naive => "naive",
        }
    }
}

/// One fault the adversary may inject: it manifests in `component` and is
/// cured only by a restart covering all of `cure_set`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The component the failure manifests in.
    pub component: String,
    /// The minimal cure set (always contains `component`).
    pub cure_set: Vec<String>,
}

/// A deliberately broken protocol driver, used to seed violations the
/// checker must catch (the `broken` fixture). Mutations perturb the *driver*
/// around the real recoverer, not the recoverer itself — modelling the bugs
/// an integration layer could introduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Accepted suspicion reports are silently dropped before they reach the
    /// recoverer: the component is lost and its fault never cures.
    DropReport,
    /// Suspicions bypass the episode planner: the driver consults the oracle
    /// and pushes the cell's restart button directly, without merge
    /// protection — concurrent rogue restarts break the antichain.
    BypassPlanner,
    /// The admission controller's drain tick never fires: deferred restart
    /// requests are parked forever, starving the components they cover
    /// (requires the `admission` directive).
    StarveDeferred,
    /// A rehydrating store integration skips snapshot verification: a
    /// component resumes from a stale checkpoint, reports ready and beacons
    /// healthily, but the fault persists in the resurrected state (requires
    /// the `rehydrate` directive).
    StaleRehydrate,
}

impl Mutation {
    /// The name used in scenario files.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::DropReport => "drop-report",
            Mutation::BypassPlanner => "bypass-planner",
            Mutation::StarveDeferred => "starve-deferred",
            Mutation::StaleRehydrate => "stale-rehydrate",
        }
    }
}

/// A deliberately unsound independence assumption forced into rr-flow's
/// dependence analysis — the partial-order-reduction analogue of a
/// [`Mutation`]: it over-prunes the exploration, and the differential mode
/// (reduced vs full) must catch the resulting verdict drift. Never use one
/// outside a fixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PorAssumption {
    /// Pretend every suspicion commutes with everything: whenever a suspect
    /// action is enabled, the reduction explores only it — deferral and
    /// batch branches are pruned away, so deferral-path violations (e.g. a
    /// starved drain tick) become unreachable in the reduced graph.
    SuspectsIndependent,
}

impl PorAssumption {
    /// The name used in scenario files.
    pub fn name(self) -> &'static str {
        match self {
            PorAssumption::SuspectsIndependent => "suspects-independent",
        }
    }
}

/// A parsed model-checking scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The restart tree's name (`I`–`V` / `1`–`5`), resolved by the caller.
    pub tree: String,
    /// The oracle driving the recoverer.
    pub oracle: OracleKind,
    /// Exploration-depth override, if the file sets one.
    pub depth: Option<usize>,
    /// The faults the adversary may inject, in declaration order.
    pub faults: Vec<FaultSpec>,
    /// The seeded protocol bug, if any.
    pub mutation: Option<Mutation>,
    /// Whether the deadline-aware admission controller is modelled: the
    /// driver may nondeterministically defer an accepted report, and a drain
    /// step later admits it.
    pub admission: bool,
    /// Whether the crash-safe state store is modelled: any in-flight restart
    /// may complete either cold or by rehydrating from a checkpoint, and the
    /// rehydrated path must preserve every invariant.
    pub rehydrate: bool,
    /// A deliberately unsound independence assumption forced into the
    /// partial-order reduction (fixtures only; see [`PorAssumption`]).
    pub por_assume: Option<PorAssumption>,
}

/// A syntax or semantic error in a scenario file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line the error was found on (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "scenario: {}", self.message)
        } else {
            write!(f, "scenario line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

fn err(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line,
        message: message.into(),
    }
}

/// Parses the textual scenario format.
pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
    let mut tree: Option<String> = None;
    let mut oracle = OracleKind::default();
    let mut depth: Option<usize> = None;
    let mut faults: Vec<FaultSpec> = Vec::new();
    let mut mutation: Option<Mutation> = None;
    let mut admission = false;
    let mut rehydrate = false;
    let mut por_assume: Option<PorAssumption> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().unwrap_or("");
        match keyword {
            "tree" => {
                let name = words
                    .next()
                    .ok_or_else(|| err(lineno, "tree needs a name"))?;
                if words.next().is_some() {
                    return Err(err(lineno, "tree takes exactly one name"));
                }
                if tree.replace(name.to_string()).is_some() {
                    return Err(err(lineno, "tree declared twice"));
                }
            }
            "oracle" => {
                let name = words
                    .next()
                    .ok_or_else(|| err(lineno, "oracle needs a kind (perfect|naive)"))?;
                oracle = match name {
                    "perfect" => OracleKind::Perfect,
                    "naive" => OracleKind::Naive,
                    other => return Err(err(lineno, format!("unknown oracle `{other}`"))),
                };
            }
            "depth" => {
                let value = words
                    .next()
                    .ok_or_else(|| err(lineno, "depth needs a number"))?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| err(lineno, format!("bad depth `{value}`")))?;
                if parsed == 0 {
                    return Err(err(lineno, "depth must be at least 1"));
                }
                depth = Some(parsed);
            }
            "fault" => {
                let component = words
                    .next()
                    .ok_or_else(|| err(lineno, "fault needs a component"))?
                    .to_string();
                let mut cure_set = vec![component.clone()];
                match words.next() {
                    None => {}
                    Some("cures") => {
                        for c in words.by_ref() {
                            if !cure_set.iter().any(|have| have == c) {
                                cure_set.push(c.to_string());
                            }
                        }
                        if cure_set.len() == 1 {
                            return Err(err(lineno, "cures needs at least one component"));
                        }
                    }
                    Some(other) => {
                        return Err(err(lineno, format!("expected `cures`, got `{other}`")))
                    }
                }
                if faults.iter().any(|f| f.component == component) {
                    return Err(err(
                        lineno,
                        format!("duplicate fault for component `{component}`"),
                    ));
                }
                faults.push(FaultSpec {
                    component,
                    cure_set,
                });
            }
            "mutate" => {
                let name = words
                    .next()
                    .ok_or_else(|| err(lineno, "mutate needs a mutation name"))?;
                let m = match name {
                    "drop-report" => Mutation::DropReport,
                    "bypass-planner" => Mutation::BypassPlanner,
                    "starve-deferred" => Mutation::StarveDeferred,
                    "stale-rehydrate" => Mutation::StaleRehydrate,
                    other => return Err(err(lineno, format!("unknown mutation `{other}`"))),
                };
                if mutation.replace(m).is_some() {
                    return Err(err(lineno, "mutate declared twice"));
                }
            }
            "admission" => {
                if words.next().is_some() {
                    return Err(err(lineno, "admission takes no arguments"));
                }
                admission = true;
            }
            "rehydrate" => {
                if words.next().is_some() {
                    return Err(err(lineno, "rehydrate takes no arguments"));
                }
                rehydrate = true;
            }
            "por-assume" => {
                let name = words
                    .next()
                    .ok_or_else(|| err(lineno, "por-assume needs an assumption name"))?;
                let a = match name {
                    "suspects-independent" => PorAssumption::SuspectsIndependent,
                    other => return Err(err(lineno, format!("unknown por assumption `{other}`"))),
                };
                if por_assume.replace(a).is_some() {
                    return Err(err(lineno, "por-assume declared twice"));
                }
            }
            other => return Err(err(lineno, format!("unknown directive `{other}`"))),
        }
    }

    let tree = tree.ok_or_else(|| err(0, "missing `tree` directive"))?;
    if faults.is_empty() {
        return Err(err(0, "a scenario needs at least one `fault`"));
    }
    if mutation == Some(Mutation::StarveDeferred) && !admission {
        return Err(err(
            0,
            "mutate starve-deferred requires the `admission` directive",
        ));
    }
    if mutation == Some(Mutation::StaleRehydrate) && !rehydrate {
        return Err(err(
            0,
            "mutate stale-rehydrate requires the `rehydrate` directive",
        ));
    }
    Ok(Scenario {
        tree,
        oracle,
        depth,
        faults,
        mutation,
        admission,
        rehydrate,
        por_assume,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_scenario() {
        let s = parse(
            "# header comment\n\
             tree IV\n\
             oracle naive   # trailing comment\n\
             depth 9\n\
             fault pbcom\n\
             fault fedr cures fedr pbcom\n\
             mutate drop-report\n",
        )
        .unwrap();
        assert_eq!(s.tree, "IV");
        assert_eq!(s.oracle, OracleKind::Naive);
        assert_eq!(s.depth, Some(9));
        assert_eq!(s.faults.len(), 2);
        assert_eq!(s.faults[1].cure_set, vec!["fedr", "pbcom"]);
        assert_eq!(s.mutation, Some(Mutation::DropReport));
    }

    #[test]
    fn defaults_are_perfect_oracle_no_depth_no_mutation() {
        let s = parse("tree I\nfault rtu\n").unwrap();
        assert_eq!(s.oracle, OracleKind::Perfect);
        assert_eq!(s.depth, None);
        assert_eq!(s.mutation, None);
        assert_eq!(s.faults[0].cure_set, vec!["rtu"]);
    }

    #[test]
    fn rejects_missing_tree_and_missing_faults() {
        assert!(parse("fault rtu\n").unwrap_err().message.contains("tree"));
        assert!(parse("tree I\n").unwrap_err().message.contains("fault"));
    }

    #[test]
    fn rejects_unknown_directives_with_line_numbers() {
        let e = parse("tree I\nfault rtu\nbogus x\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn rejects_duplicate_faults_and_bad_mutations() {
        assert!(parse("tree I\nfault rtu\nfault rtu\n").is_err());
        assert!(parse("tree I\nfault rtu\nmutate nope\n").is_err());
    }

    #[test]
    fn por_assume_directive_parses() {
        let s = parse("tree IV\nfault rtu\npor-assume suspects-independent\n").unwrap();
        assert_eq!(s.por_assume, Some(PorAssumption::SuspectsIndependent));
        assert_eq!(s.por_assume.unwrap().name(), "suspects-independent");
        assert_eq!(parse("tree IV\nfault rtu\n").unwrap().por_assume, None);
        assert!(parse("tree IV\nfault rtu\npor-assume nope\n").is_err());
        let e = parse(
            "tree IV\nfault rtu\npor-assume suspects-independent\n\
             por-assume suspects-independent\n",
        )
        .unwrap_err();
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn rehydrate_directive_parses_and_gates_its_mutation() {
        let s = parse("tree IV\nrehydrate\nfault rtu\n").unwrap();
        assert!(s.rehydrate);
        assert!(!s.admission);
        let s = parse("tree IV\nrehydrate\nfault rtu\nmutate stale-rehydrate\n").unwrap();
        assert_eq!(s.mutation, Some(Mutation::StaleRehydrate));
        let e = parse("tree IV\nfault rtu\nmutate stale-rehydrate\n").unwrap_err();
        assert!(e.message.contains("rehydrate"));
        assert!(parse("tree IV\nrehydrate now\nfault rtu\n").is_err());
    }
}

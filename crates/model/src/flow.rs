//! rr-flow: static action-independence analysis for the recovery protocol,
//! and the ample-set partial-order reduction it feeds.
//!
//! The checker's action alphabet (inject / suspect / suspect-batch /
//! complete / complete-rehydrated / confirm / rollover / defer / admit) acts
//! on well-separated pieces of protocol state: a fault's lifecycle slot, a
//! component's suspicion latch, an episode's plan-queue slot (a restart
//! cell), the admission deferral queue, the stale-rehydrate mask. Which
//! cells an action can ever touch is a *static* property of the tree, the
//! oracle and the fault set: the oracle is stateless, so the full escalation
//! chain of every fault — first recommendation, then parent per re-detection
//! up to the first cell covering the cure set — is computable before
//! exploration starts. Two actions are independent iff their footprints are
//! disjoint under the §3.2 tree algebra: two cells interfere iff one is an
//! ancestor of the other ([`rr_core::tree::RestartTree::overlaps`]), because
//! that is exactly when the planner's LCA merge promotion entangles their
//! episodes.
//!
//! [`FlowContext::ample`] turns the analysis into an **ample set** for the
//! checker: at each state it proposes (at most) one enabled action whose
//! singleton preserves every checked property — the pruned interleavings
//! either commute with it outright or differ from the kept one only by a
//! stutter (a transient detector-latch set that converges at the next
//! rollover). The candidate classes, in priority order, each with the
//! argument for why nothing observable is lost:
//!
//! 1. **Terminal tail** — every fault is cured or quarantined. The only
//!    enabled actions are completions that cure nothing, confirmations,
//!    pure-dequeue admits and latch-clearing rollovers, all pairwise
//!    commuting forever; any one of them is ample. Collapses the k! orders
//!    of the end-game to a single path.
//! 2. **Confirm** — the episode's origins are all cured, so they are never
//!    re-reported, never merged (the planner merges in-flight episodes
//!    only), and never quarantined; confirmation touches nothing any other
//!    action reads.
//! 3. **Inject** — an injection only flips its own fault pending → active
//!    and arms its suspectability bit; the readers of that bit (the
//!    fault's own detection, batches containing it) only become enabled in
//!    the ample successor's future, and completions cure exactly their
//!    reported origins, so both inject orders and the inject/complete
//!    orders converge. Mutation-free scenarios only, and stood down while
//!    admission moves are enabled.
//! 4. **Quiet-phase complete** — every suspicion the detector could fire
//!    targets a component covered by an in-flight restart, so each one is
//!    an AlreadyRecovering latch write (stutter); completions of distinct
//!    episodes cure disjoint fault sets (two antichain-incomparable cells
//!    cannot cover the same component). Serialize on the first completion.
//! 5. **Serialized detection** — the live faults are pairwise independent
//!    (no chain cell of one overlaps another's interference footprint):
//!    separate cells, separate episodes, no reachable LCA merge, and a
//!    correlated batch decomposes into the sequential suspicions. Fire the
//!    first fresh suspicion; all orders converge to the same signature.
//! 6. **Single-cell detection** — every live fault's chain is one shared
//!    cell (tree I's shape), so every suspicion and batch plans or joins
//!    the episode at that cell with origins accumulating; orders converge.
//! 7. **Stale-latch rollover** — nothing in flight and every latched
//!    component's fault is terminal: the rollover clears latches that can
//!    never re-fire and cannot escalate or re-arm anything the
//!    alternatives depend on.
//! 8. **Complete** — ample iff the episode's cell overlaps no cell in any
//!    non-terminal fault's escalation chain. Then completing cures and
//!    unmasks nothing (a covering cell would overlap the chain), no future
//!    plan or merge can reach the cell (merge targets stay within chain
//!    cells and the in-flight antichain), and the rehydrated twin produces
//!    a signature-identical successor, so exploring one of the pair loses
//!    nothing.
//! 9. **Rollover** — ample iff nothing can be suspected: no current
//!    targets, no pending injection to create one, and no masked component
//!    that an in-flight completion could unmask into one.
//! 10. **Suspect, single actor** — ample iff this is the only suspectable
//!     component, every other fault is terminal, no latch is set (else
//!     rollover is enabled and the pair does not commute), nothing is in
//!     flight or deferred, and the admission controller is off (else the
//!     defer alternative is mutually disabling). Serializes the
//!     suspect → complete → re-suspect escalation chains that dominate the
//!     naive-oracle state space.
//! 11. **Admit, single actor** — the drain-step analogue of 10.
//!
//! Classes 3–7 are *effect-equivalence* reductions, not textbook persistent
//! sets: the epoch rollover couples every detector latch, so condition C1
//! fails formally even where the pruned orders provably converge. Their
//! justification is the confluence arguments above plus the differential
//! property suite, which replays every tree × oracle × mutation flavour
//! with the reduction on and off and demands identical verdicts. They are
//! therefore gated to mutation-free scenarios with no admission move
//! enabled, where the convergence arguments hold unconditionally.
//!
//! When the scenario seeds a [`Mutation`], the chains are extended
//! conservatively to the root: a stale rehydration can strand an episode
//! above its cure cell, so the tight chain bound no longer holds. Reduction
//! on mutated scenarios is mostly disabled — their violations are shallow
//! and found by probing anyway (the checker applies *every* enabled action
//! at every visited state; only recursion is pruned).
//!
//! [`analyze`] renders the same footprint model as a report: per-fault
//! escalation chains, the template-level dependence matrix, and the
//! fault-interference graph (RRL95x lints and the `rr-flow` CLI audit
//! consume it). A scenario's [`PorAssumption`] deliberately falsifies both
//! the matrix and the ample choice — the differential mode must catch the
//! drift, which is the por-unsound fixture's job.
//!
//! Soundness caveats are spelled out in DESIGN.md §16: the cycle-closing
//! proviso for liveness lives in the checker (a reduced successor on the
//! current DFS path forces full expansion), and the differential suite
//! validates verdict equality on every tree × oracle × mutation flavour.

use std::collections::{BTreeMap, BTreeSet};

use rr_core::oracle::{Failure, Oracle};
use rr_core::tree::{NodeId, RestartTree};

use crate::machine::{Action, FaultStatus, Model, ModelOracle, State, MODEL_ESCALATION_LIMIT};
use crate::scenario::PorAssumption;

/// `true` if restarting `cell` restarts every component in `set`.
fn cell_covers_set(tree: &RestartTree, cell: NodeId, set: &[String]) -> bool {
    set.iter().all(|c| tree.covers(cell, c))
}

/// The cells `failure`'s episode can ever occupy: the oracle's first
/// recommendation, then one parent per re-detection, up to and including the
/// first cell whose subtree covers the whole cure set (a completed restart
/// there cures the fault, so escalation never passes it). With `to_root`
/// the chain runs all the way up regardless — the conservative bound used
/// when a mutation can strand an uncured fault above its cure cell.
fn escalation_chain(
    tree: &RestartTree,
    mut oracle: ModelOracle,
    failure: &Failure,
    to_root: bool,
) -> Vec<NodeId> {
    let mut chain = vec![oracle.recommend(tree, failure, 0, None)];
    loop {
        let last = *chain
            .last()
            .unwrap_or_else(|| unreachable!("chain nonempty"));
        if cell_covers_set(tree, last, &failure.cure_set) && !to_root {
            break;
        }
        match tree.parent(last) {
            Some(parent) => chain.push(parent),
            None => break,
        }
    }
    chain
}

/// The precomputed dependence data [`FlowContext::ample`] consults at every
/// explored state. Built once per [`Model`]; everything here is derived from
/// the tree, the (stateless) oracle and the fault set alone.
pub struct FlowContext {
    /// Per fault (index-aligned with [`Model::faults`]): its escalation
    /// chain of cells.
    chains: Vec<Vec<NodeId>>,
    /// Per fault: every cell that overlaps some chain cell — the fault's
    /// full interference footprint under the §3.2 algebra.
    interferes: Vec<BTreeSet<NodeId>>,
    /// `chain_covers_cure[j][i]`: some cell in fault `j`'s chain covers
    /// fault `i`'s entire cure set (so a completion of `j`'s episode could
    /// cure `i`).
    chain_covers_cure: Vec<Vec<bool>>,
    por_assume: Option<PorAssumption>,
}

impl FlowContext {
    /// Precomputes the dependence data for `model`.
    pub fn new(model: &Model) -> FlowContext {
        let tree = model.tree();
        let conservative = model.mutation().is_some();
        let chains: Vec<Vec<NodeId>> = model
            .faults()
            .iter()
            .map(|f| escalation_chain(tree, model.oracle(), f, conservative))
            .collect();
        let cells = tree.cells();
        let interferes: Vec<BTreeSet<NodeId>> = chains
            .iter()
            .map(|chain| {
                cells
                    .iter()
                    .copied()
                    .filter(|&c| chain.iter().any(|&d| tree.overlaps(c, d)))
                    .collect()
            })
            .collect();
        let covering_cells: Vec<BTreeSet<NodeId>> = model
            .faults()
            .iter()
            .map(|f| {
                cells
                    .iter()
                    .copied()
                    .filter(|&c| cell_covers_set(tree, c, &f.cure_set))
                    .collect()
            })
            .collect();
        let chain_covers_cure: Vec<Vec<bool>> = chains
            .iter()
            .map(|chain| {
                covering_cells
                    .iter()
                    .map(|covers| chain.iter().any(|c| covers.contains(c)))
                    .collect()
            })
            .collect();
        FlowContext {
            chains,
            interferes,
            chain_covers_cure,
            por_assume: model.por_assume(),
        }
    }

    /// The escalation chains, for reporting.
    pub fn chains(&self) -> &[Vec<NodeId>] {
        &self.chains
    }

    /// Proposes the index (into `actions`) of an enabled action whose
    /// singleton is a sound ample set in `state`, or `None` if no candidate
    /// class matches and the checker must expand fully. `actions` must be
    /// exactly `model.enabled(state)`.
    pub fn ample(&self, model: &Model, state: &State, actions: &[Action]) -> Option<usize> {
        // The deliberately unsound fixture override: pretend suspicions
        // commute with everything, pruning the defer/batch alternatives.
        if self.por_assume == Some(PorAssumption::SuspectsIndependent) {
            if let Some(i) = actions
                .iter()
                .position(|a| matches!(a, Action::Suspect { .. }))
            {
                return Some(i);
            }
        }
        let non_terminal: Vec<usize> = (0..model.faults().len())
            .filter(|&i| {
                matches!(
                    state.fault_status(i),
                    FaultStatus::Pending | FaultStatus::Active
                )
            })
            .collect();

        // 1. Terminal tail: every remaining action commutes with every
        // other, now and forever. Any one of them is ample.
        if non_terminal.is_empty() {
            return Some(0);
        }

        // 2. Confirm: cured origins are never re-reported or merged.
        if let Some(i) = actions
            .iter()
            .position(|a| matches!(a, Action::Confirm { .. }))
        {
            return Some(i);
        }

        let any_pending = non_terminal
            .iter()
            .any(|&j| state.fault_status(j) == FaultStatus::Pending);
        let no_queue_moves = !actions
            .iter()
            .any(|a| matches!(a, Action::Defer { .. } | Action::Admit { .. }));

        // 3. Inject serialization: an injection only flips its own fault
        // from pending to active and arms its suspectability bit. The
        // readers of that bit — the fault's own detection, and batches
        // containing it — only become enabled *after* the injection, i.e.
        // in the ample successor's future, which the reduced search keeps.
        // Completions never touch it: a restart cures exactly the origins
        // reported to its episode, so a fault injected before or after a
        // completion ends up in the same slot either way. Orders with other
        // injections converge to the same signature outright. Mutated
        // drivers (dropped reports, rogue plans) make detection effects
        // order-sensitive, so the class keeps the shared mutation-free
        // gate; admission moves reorder the queue injections feed, so they
        // disable it too.
        if model.mutation().is_none() && no_queue_moves {
            if let Some(i) = actions
                .iter()
                .position(|a| matches!(a, Action::Inject { .. }))
            {
                return Some(i);
            }
        }

        // Classes 4–7 prune the failure-detector latch noise. They share a
        // gate: mutation-free scenario (a mutated driver distorts
        // suspect/complete effects — rogue plans, stale masks — so every
        // latch write may matter), every fault injected, and no admission
        // moves enabled (defer/admit reorder the queue the latches feed).
        // Probing still applies every pruned action at every visited state.
        if model.mutation().is_none() && !any_pending && no_queue_moves {
            let flights = state.in_flight_cells();
            let tree = model.tree();
            let covered = |c: &str| flights.iter().any(|&cell| tree.covers(cell, c));

            // 4. Quiet phase: every suspicion the detector could fire
            // targets a component already covered by an in-flight restart,
            // so the recoverer would answer AlreadyRecovering — each such
            // suspect is a pure latch write whose only observable effect is
            // delaying its own re-firing to the next epoch (a stutter under
            // every checked property). Completions are the only progress
            // actions, they cure pairwise disjoint fault sets (two
            // antichain-incomparable cells cannot cover the same
            // component), and the suspicion/rollover latch cluster commutes
            // around them up to that stutter. Serialize on the first
            // completion and prune the latch noise.
            let suspects_noop = actions.iter().all(|a| match a {
                Action::Suspect { component } => covered(component),
                Action::SuspectBatch { components } => components.iter().all(|c| covered(c)),
                _ => true,
            });
            if suspects_noop {
                if let Some(i) = actions.iter().position(|a| {
                    matches!(
                        a,
                        Action::Complete { .. } | Action::CompleteRehydrated { .. }
                    )
                }) {
                    return Some(i);
                }
            }

            // 5. Serialized detection: when the live faults are pairwise
            // independent (no chain cell of one overlaps the interference
            // footprint of another), their suspicions commute — separate
            // cells, separate episodes, no LCA merge is reachable, and a
            // correlated batch decomposes into the sequential suspicions
            // (same episodes, same latches). Fire the first suspicion of a
            // not-yet-covered fault; the pruned orders and the batch
            // converge to the same signature.
            let independent = non_terminal.iter().all(|&i| {
                non_terminal.iter().all(|&j| {
                    i == j
                        || self.chains[i]
                            .iter()
                            .all(|c| !self.interferes[j].contains(c))
                })
            });
            if independent {
                if let Some(i) = actions
                    .iter()
                    .position(|a| matches!(a, Action::Suspect { component } if !covered(component)))
                {
                    return Some(i);
                }
            }

            // 6. Single-cell detection: every live fault's chain is the
            // same lone cell (tree I's shape — one restart group), so
            // every suspicion and every batch plans or joins an episode at
            // that one cell with its origins accumulating. Any firing
            // order, and the batch, converge to the same episode state;
            // serialize on the first fresh suspicion.
            let lone_cell = self
                .chains
                .first()
                .and_then(|c| (c.len() == 1).then(|| c[0]));
            let single_cell = lone_cell.is_some_and(|cell| {
                non_terminal
                    .iter()
                    .all(|&i| self.chains[i].len() == 1 && self.chains[i][0] == cell)
            });
            if single_cell {
                if let Some(i) = actions
                    .iter()
                    .position(|a| matches!(a, Action::Suspect { component } if !covered(component)))
                {
                    return Some(i);
                }
            }

            // 7. Stale-latch rollover: nothing is in flight and every
            // latched component's fault is already terminal, so this
            // rollover only clears latches that can never re-fire — it
            // cannot escalate an episode or re-arm a live suspicion the
            // alternatives depend on. The remaining alternatives (fresh
            // suspicions of live faults) commute with it up to the
            // transient latch set.
            if flights.is_empty() {
                let latched_terminal = state.suspected().iter().all(|comp| {
                    match model.faults().iter().position(|f| f.component == *comp) {
                        Some(j) => !matches!(
                            state.fault_status(j),
                            FaultStatus::Pending | FaultStatus::Active
                        ),
                        None => true,
                    }
                });
                if latched_terminal {
                    if let Some(i) = actions.iter().position(|a| matches!(a, Action::Rollover)) {
                        return Some(i);
                    }
                }
            }
        }

        // 8. Complete whose cell is outside every live chain's footprint.
        for (i, action) in actions.iter().enumerate() {
            if let Action::Complete { owner } = action {
                let Some(cell) = state.in_flight_cell_of(owner) else {
                    continue;
                };
                if non_terminal
                    .iter()
                    .all(|&j| !self.interferes[j].contains(&cell))
                {
                    return Some(i);
                }
            }
        }

        let any_suspectable = actions
            .iter()
            .any(|a| matches!(a, Action::Suspect { .. } | Action::Defer { .. }));

        // 9. Rollover that cannot race a suspicion: no target exists and
        // none can appear before the latches clear.
        if !any_suspectable && !any_pending {
            let unmaskable = !state.masked().is_empty() && !state.in_flight_cells().is_empty();
            if !unmaskable {
                if let Some(i) = actions.iter().position(|a| matches!(a, Action::Rollover)) {
                    return Some(i);
                }
            }
        }

        // 10. Single-actor suspect: the lone live fault walking its
        // escalation chain with nothing else in motion.
        if !model.admission()
            && state.suspected().is_empty()
            && state.deferred().is_empty()
            && state.in_flight_cells().is_empty()
        {
            let suspects: Vec<usize> = actions
                .iter()
                .enumerate()
                .filter(|(_, a)| matches!(a, Action::Suspect { .. }))
                .map(|(i, _)| i)
                .collect();
            if let [lone] = suspects[..] {
                if let Action::Suspect { component } = &actions[lone] {
                    let lone_live = non_terminal.len() == 1
                        && model.faults()[non_terminal[0]].component == *component;
                    if lone_live {
                        return Some(lone);
                    }
                }
            }
        }

        // 11. Single-actor admit: the drain-step analogue of 10.
        if !any_suspectable
            && !any_pending
            && state.deferred().len() == 1
            && state.in_flight_cells().is_empty()
        {
            for (i, action) in actions.iter().enumerate() {
                if let Action::Admit { component } = action {
                    let lone_live = non_terminal
                        .iter()
                        .all(|&j| model.faults()[j].component == *component);
                    if lone_live {
                        return Some(i);
                    }
                }
            }
        }

        None
    }
}

/// The static dependence report: what [`FlowContext`] knows, rendered for
/// the RRL95x lints, the `rr-flow` CLI audit and the property suites.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowAnalysis {
    /// Fault components, in scenario declaration order.
    pub faults: Vec<String>,
    /// Per fault: the escalation chain as `(cell label, covers-cure-set)`
    /// pairs, first recommendation first.
    pub chains: Vec<Vec<(String, bool)>>,
    /// The escalation limit the bound policy gives up at — chains must
    /// reach a covering cell within this many attempts or the fault can
    /// only quarantine.
    pub escalation_limit: usize,
    /// Action templates, one per action class × fault the scenario can
    /// produce (labelled like trace marks: `inject:rtu`, `detect:rtu`, …),
    /// plus the global `epoch:rollover`.
    pub templates: Vec<String>,
    /// `dependent[a][b]`: templates `a` and `b` share a footprint resource
    /// with a conflicting access. Symmetric with a true diagonal — unless a
    /// [`PorAssumption`] deliberately broke it.
    pub dependent: Vec<Vec<bool>>,
    /// `fault_interference[i][j]`: the two faults' chains contain
    /// overlapping cells, so their episodes can entangle via LCA merge
    /// promotion. Symmetric, true diagonal.
    pub fault_interference: Vec<Vec<bool>>,
}

/// The protocol resources an action template reads or writes. Cell-granular
/// where the tree algebra is the arbiter (episode slots), component- or
/// fault-granular elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Resource {
    /// Fault `i`'s lifecycle slot (pending / active / cured / quarantined).
    Fault(usize),
    /// Fault `i`'s suspicion latch.
    Latch(usize),
    /// Component `i`'s batch-membership bit: whether `i` is currently
    /// suspectable. A batch suspicion exists exactly for the set of raised
    /// bits, so actions that flip a bit conflict with suspicions that read
    /// it — but a suspicion only *reads* the bits of components whose
    /// escalation chains interfere with its own (a batch over disjoint
    /// chains plans exactly like sequential solo suspicions, so its
    /// membership is immaterial there).
    BatchBit(usize),
    /// The episode plan-queue slot at a restart cell.
    Episode(NodeId),
    /// Fault `i`'s slot in the admission deferral queue.
    Deferral(usize),
    /// Fault `i`'s stale-rehydrate mask bit.
    Mask(usize),
}

/// How a template touches a resource. Two commuting writes (e.g. two
/// confirmations releasing disjoint episodes through the same queue) do not
/// conflict; a full write conflicts with everything but absence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Access {
    Read,
    Commuting,
    Full,
}

fn conflicts(a: Access, b: Access) -> bool {
    a != b || a == Access::Full
}

/// Merges `access` into `fp`, keeping the strongest level per resource.
fn touch(fp: &mut BTreeMap<Resource, Access>, resource: Resource, access: Access) {
    let slot = fp.entry(resource).or_insert(access);
    let rank = |a: Access| match a {
        Access::Read => 0,
        Access::Commuting => 1,
        Access::Full => 2,
    };
    if rank(access) > rank(*slot) {
        *slot = access;
    }
}

/// Computes the static dependence report for `model` (see [`FlowAnalysis`]).
/// A batch suspicion's footprint is the union of its members' `detect`
/// templates, so the per-component templates cover the whole alphabet.
pub fn analyze(model: &Model) -> FlowAnalysis {
    let tree = model.tree();
    let ctx = FlowContext::new(model);
    let faults: Vec<String> = model.faults().iter().map(|f| f.component.clone()).collect();
    let chains: Vec<Vec<(String, bool)>> = model
        .faults()
        .iter()
        .zip(&ctx.chains)
        .map(|(f, chain)| {
            chain
                .iter()
                .map(|&c| {
                    (
                        tree.label(c).to_string(),
                        cell_covers_set(tree, c, &f.cure_set),
                    )
                })
                .collect()
        })
        .collect();

    let mut templates: Vec<String> = Vec::new();
    let mut footprints: Vec<BTreeMap<Resource, Access>> = Vec::new();
    let mut add = |label: String, fp: BTreeMap<Resource, Access>| {
        templates.push(label);
        footprints.push(fp);
    };
    for (i, fault) in model.faults().iter().enumerate() {
        let component = &fault.component;
        let chain = &ctx.chains[i];
        // The faults a completion of this chain could cure (or, under a
        // stale rehydration, mask).
        let curable: Vec<usize> = (0..model.faults().len())
            .filter(|&k| ctx.chain_covers_cure[i][k])
            .collect();

        // The merge partners whose batch membership this fault's suspicion
        // actually reads: only interference makes co-membership matter.
        let partners: Vec<usize> = (0..model.faults().len())
            .filter(|&k| k != i && ctx.chains[k].iter().any(|c| ctx.interferes[i].contains(c)))
            .collect();

        let mut fp = BTreeMap::new();
        touch(&mut fp, Resource::Fault(i), Access::Full);
        touch(&mut fp, Resource::BatchBit(i), Access::Full);
        add(format!("inject:{component}"), fp);

        let mut fp = BTreeMap::new();
        touch(&mut fp, Resource::Fault(i), Access::Read);
        touch(&mut fp, Resource::Latch(i), Access::Full);
        touch(&mut fp, Resource::BatchBit(i), Access::Full);
        for &k in &partners {
            touch(&mut fp, Resource::BatchBit(k), Access::Read);
        }
        for &c in chain {
            touch(&mut fp, Resource::Episode(c), Access::Full);
        }
        add(format!("detect:{component}"), fp);

        if model.admission() {
            let mut fp = BTreeMap::new();
            touch(&mut fp, Resource::Latch(i), Access::Full);
            touch(&mut fp, Resource::Deferral(i), Access::Full);
            touch(&mut fp, Resource::BatchBit(i), Access::Full);
            add(format!("defer:{component}"), fp);

            let mut fp = BTreeMap::new();
            touch(&mut fp, Resource::Deferral(i), Access::Full);
            touch(&mut fp, Resource::Fault(i), Access::Read);
            touch(&mut fp, Resource::BatchBit(i), Access::Full);
            for &c in chain {
                touch(&mut fp, Resource::Episode(c), Access::Full);
            }
            add(format!("admit:{component}"), fp);
        }

        let mut ready = BTreeMap::new();
        for &c in chain {
            touch(&mut ready, Resource::Episode(c), Access::Full);
        }
        for &k in &curable {
            // Curing (or unmasking) flips what is suspectable, hence the
            // cured components' batch-membership bits.
            touch(&mut ready, Resource::Fault(k), Access::Full);
            touch(&mut ready, Resource::Mask(k), Access::Full);
            touch(&mut ready, Resource::BatchBit(k), Access::Full);
        }
        add(format!("ready:{component}"), ready.clone());
        if model.rehydrate() {
            add(format!("rehydrate:{component}"), ready);
        }

        let mut fp = BTreeMap::new();
        for &c in chain {
            touch(&mut fp, Resource::Episode(c), Access::Commuting);
        }
        add(format!("cured:{component}"), fp);
    }
    let mut fp = BTreeMap::new();
    for i in 0..model.faults().len() {
        touch(&mut fp, Resource::Latch(i), Access::Full);
    }
    add("epoch:rollover".to_string(), fp);

    let n = templates.len();
    let mut dependent = vec![vec![false; n]; n];
    for a in 0..n {
        for b in 0..n {
            if a == b {
                // Reflexive-safe: an action never commutes with itself —
                // a sound reduction may drop orders, never occurrences.
                dependent[a][b] = true;
                continue;
            }
            dependent[a][b] = footprints[a].iter().any(|(resource, &acc_a)| {
                footprints[b]
                    .get(resource)
                    .is_some_and(|&acc_b| conflicts(acc_a, acc_b))
            });
        }
    }
    if model.por_assume() == Some(PorAssumption::SuspectsIndependent) {
        // The unsound fixture override, applied one-way: suspect rows are
        // zeroed but their columns are not, so the matrix turns asymmetric
        // — exactly the shape RRL953 rejects.
        for (idx, label) in templates.iter().enumerate() {
            if label.starts_with("detect:") {
                for cell in dependent[idx].iter_mut() {
                    *cell = false;
                }
            }
        }
    }

    let m = faults.len();
    let fault_interference: Vec<Vec<bool>> = (0..m)
        .map(|i| {
            (0..m)
                .map(|j| i == j || ctx.chains[i].iter().any(|c| ctx.interferes[j].contains(c)))
                .collect()
        })
        .collect();

    FlowAnalysis {
        faults,
        chains,
        escalation_limit: MODEL_ESCALATION_LIMIT as usize,
        templates,
        dependent,
        fault_interference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CheckConfig;
    use crate::scenario;
    use rr_core::tree::TreeSpec;

    fn tree_iv() -> RestartTree {
        TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
            .with_child(
                TreeSpec::cell("R_[fedr,pbcom]")
                    .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
                    .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom")),
            )
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
            .build()
            .unwrap()
    }

    fn model(text: &str) -> Model {
        Model::new(tree_iv(), &scenario::parse(text).unwrap()).unwrap()
    }

    fn labels(tree: &RestartTree, chain: &[NodeId]) -> Vec<String> {
        chain.iter().map(|&c| tree.label(c).to_string()).collect()
    }

    #[test]
    fn perfect_oracle_chain_is_the_lowest_cover() {
        let m = model("tree IV\nfault fedr cures fedr pbcom\n");
        let ctx = FlowContext::new(&m);
        assert_eq!(labels(m.tree(), &ctx.chains[0]), ["R_[fedr,pbcom]"]);
    }

    #[test]
    fn naive_oracle_chain_climbs_to_the_cure_cell() {
        let m = model("tree IV\noracle naive\nfault fedr cures fedr pbcom\n");
        let ctx = FlowContext::new(&m);
        assert_eq!(
            labels(m.tree(), &ctx.chains[0]),
            ["R_fedr", "R_[fedr,pbcom]"]
        );
    }

    #[test]
    fn mutations_extend_chains_conservatively_to_the_root() {
        let m = model("tree IV\nfault rtu\nmutate drop-report\n");
        let ctx = FlowContext::new(&m);
        assert_eq!(labels(m.tree(), &ctx.chains[0]), ["R_rtu", "mercury"]);
    }

    #[test]
    fn injection_is_ample_in_clean_scenarios_but_not_under_mutation() {
        // Injections only flip their own fault's slot: the initial state's
        // competing injections serialize on the first one, interfering cure
        // sets or not.
        for text in [
            "tree IV\nfault rtu\nfault ses\n",
            "tree IV\nfault pbcom\nfault fedr cures fedr pbcom\n",
        ] {
            let m = model(text);
            let ctx = FlowContext::new(&m);
            let s = m.initial();
            let actions = m.enabled(&s);
            let idx = ctx.ample(&m, &s, &actions).expect("injection is ample");
            assert_eq!(
                actions[idx],
                Action::Inject {
                    component: actions
                        .iter()
                        .find_map(|a| match a {
                            Action::Inject { component } => Some(component.clone()),
                            _ => None,
                        })
                        .expect("an injection is enabled initially"),
                }
            );
        }

        // A mutated driver makes detection effects order-sensitive, so the
        // class stands down and the checker explores both inject orders.
        let m = model("tree IV\nfault rtu\nfault ses\nmutate drop-report\n");
        let ctx = FlowContext::new(&m);
        let s = m.initial();
        let actions = m.enabled(&s);
        assert_eq!(ctx.ample(&m, &s, &actions), None);
    }

    #[test]
    fn por_assume_override_forces_the_suspect() {
        let m = model("tree IV\nadmission\nfault rtu\npor-assume suspects-independent\n");
        let ctx = FlowContext::new(&m);
        let s = m.initial();
        let s = m
            .apply(
                &s,
                &Action::Inject {
                    component: "rtu".into(),
                },
            )
            .unwrap();
        let actions = m.enabled(&s);
        assert!(actions.iter().any(|a| matches!(a, Action::Defer { .. })));
        let idx = ctx.ample(&m, &s, &actions).expect("override always fires");
        assert_eq!(
            actions[idx],
            Action::Suspect {
                component: "rtu".into()
            }
        );
    }

    #[test]
    fn analysis_matrix_is_symmetric_with_true_diagonal() {
        let m = model("tree IV\nadmission\nrehydrate\nfault pbcom\nfault fedr cures fedr pbcom\n");
        let a = analyze(&m);
        let n = a.templates.len();
        assert_eq!(a.dependent.len(), n);
        for r in 0..n {
            assert_eq!(a.dependent[r].len(), n);
            assert!(a.dependent[r][r], "{} must self-conflict", a.templates[r]);
            for c in 0..n {
                assert_eq!(
                    a.dependent[r][c], a.dependent[c][r],
                    "{} vs {}",
                    a.templates[r], a.templates[c]
                );
            }
        }
        // Interference witness: fedr's chain cell is pbcom's parent.
        assert!(a.fault_interference[0][1]);
        assert!(a.fault_interference[1][0]);
    }

    #[test]
    fn disjoint_faults_do_not_interfere() {
        let m = model("tree IV\nfault rtu\nfault ses\n");
        let a = analyze(&m);
        assert!(!a.fault_interference[0][1]);
        assert!(a.fault_interference[0][0]);
        // And their inject templates are independent.
        let rtu = a.templates.iter().position(|t| t == "inject:rtu").unwrap();
        let ready_ses = a.templates.iter().position(|t| t == "ready:ses").unwrap();
        assert!(!a.dependent[rtu][ready_ses]);
    }

    #[test]
    fn por_assume_breaks_the_matrix_asymmetrically() {
        let m = model("tree IV\nfault rtu\npor-assume suspects-independent\n");
        let a = analyze(&m);
        let detect = a.templates.iter().position(|t| t == "detect:rtu").unwrap();
        assert!(a.dependent[detect].iter().all(|&d| !d));
        let ready = a.templates.iter().position(|t| t == "ready:rtu").unwrap();
        assert!(a.dependent[ready][detect], "columns stay — asymmetric");
    }

    #[test]
    fn reduction_preserves_clean_verdicts_and_shrinks_the_space() {
        let text = "tree IV\nfault rtu\nfault ses\n";
        let m = model(text);
        let full = crate::checker::check(
            &m,
            &CheckConfig {
                por: false,
                ..CheckConfig::default()
            },
        )
        .unwrap();
        let reduced = crate::checker::check(&m, &CheckConfig::default()).unwrap();
        assert!(full.violation.is_none());
        assert!(reduced.violation.is_none());
        assert!(
            reduced.distinct_states < full.distinct_states,
            "reduced {} vs full {}",
            reduced.distinct_states,
            full.distinct_states
        );
        assert!(reduced.quiescent_states > 0, "liveness still checked");
    }
}

//! # rr-model — bounded model checking for the recovery protocol
//!
//! `rr-lint` (see `crates/lint`) verifies *static* configurations; this crate
//! verifies the *dynamic* protocol. It extracts the recovery pipeline as an
//! explicit state machine — pending faults, FD suspicion state, the episode
//! plan queue with its antichain and LCA merges, per-cell restart status and
//! quarantine bookkeeping — and exhaustively explores **every interleaving**
//! of the protocol's atomic steps up to a configurable depth:
//!
//! * fault arrival ([`Action::Inject`]),
//! * suspicion firing, alone or as a correlated batch ([`Action::Suspect`],
//!   [`Action::SuspectBatch`] — the latter drives the parallel planner's
//!   merge logic),
//! * restart completion, cold or via verified checkpoint replay
//!   ([`Action::Complete`], [`Action::CompleteRehydrated`] — the latter
//!   enabled when the scenario declares `rehydrate`, so the crash-safe
//!   store's fast path interleaves with everything else),
//! * cure confirmation ([`Action::Confirm`]),
//! * ping-epoch rollover ([`Action::Rollover`], which re-arms detection and
//!   drives escalation),
//! * admission-controller deferral and drain ([`Action::Defer`],
//!   [`Action::Admit`] — enabled when the scenario declares `admission`, so
//!   load shedding interleaves with planning and merges).
//!
//! Crucially the machine drives the **real** [`rr_core::Recoverer`] — not a
//! re-implementation — so what is checked is the shipped planner/merge/policy
//! code. Exploration is iterative-deepening DFS with canonical-state
//! signatures for deduplication, so the first violation found has a
//! **minimal-length, replayable** counterexample ([`checker::Counterexample`],
//! rendered in the golden-trace line format).
//!
//! Checked safety invariants (see [`machine::ViolationKind`]):
//!
//! * in-flight restarts always form an antichain (no cell restarts
//!   concurrently with an ancestor or descendant — no double restarts),
//! * no accepted suspicion is ever lost: every reported, uncured component is
//!   tracked by an open episode, a covering in-flight restart, or quarantine,
//! * every issued restart covers all the origins it answers (restart order
//!   respects the tree's dependency structure),
//! * quarantine is monotone, and no restart is issued for a quarantined
//!   component.
//!
//! Liveness is checked **under fairness**: at every quiescent state (no
//! action enabled) each injected fault must have reached cured or
//! quarantined, and no deadline-covered component may starve in the
//! admission controller's deferral queue. Interleavings that cycle forever without quiescing (e.g. a
//! suspicion re-armed by every epoch rollover) are exactly the unfair
//! schedules the assumption excludes; see DESIGN.md §12 for the soundness
//! caveats.
//!
//! The second half of the crate is the [`hb`] **happens-before verifier**:
//! `rr-sim`'s telemetry registry stamps every episode event with a vector
//! clock ([`rr_sim::VectorClock`]), and [`hb::verify_registry`] checks a
//! recorded stream post-hoc for causal-order violations — an episode
//! reported ready before its restart, a cure for an episode that was merged
//! away, stale-epoch attribution and the like.
//!
//! Deliberately broken protocol drivers for fixture tests are modelled as
//! [`scenario::Mutation`]s (a rogue restart that bypasses the planner, a
//! dropped failure report, a starved admission drain tick, a rehydration
//! from an unverified stale checkpoint); the checker must reject them
//! deterministically.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![warn(missing_docs)]

pub mod checker;
pub mod flow;
pub mod hb;
pub mod machine;
pub mod scenario;

pub use checker::{check, replay, CheckConfig, CheckOutcome, Counterexample};
pub use flow::{analyze, FlowAnalysis, FlowContext};
pub use hb::{verify, verify_registry, HbViolation};
pub use machine::{Action, Model, ModelError, State, Violation, ViolationKind};
pub use scenario::{FaultSpec, Mutation, OracleKind, PorAssumption, Scenario, ScenarioError};

/// Default exploration depth (number of interleaved protocol steps). Deep
/// enough to cover inject → suspect → merge → escalate → quarantine chains
/// for every default scenario — with several steps of slack past the
/// longest such chain — while staying well inside the state budget. The
/// headroom over the old bound of 13 comes from rr-flow's partial-order
/// reduction ([`flow`], on by default via [`CheckConfig::por`]): the
/// signature space (not the trace tree) is what bounds the default
/// scenarios, it is depth-independent, and the reduction shrinks it several
/// fold, so the audit over trees I–V completes at this depth within the
/// same 2M-state budget as the unreduced audit did at 13.
pub const DEFAULT_DEPTH: usize = 16;

/// Default bound on states the checker will visit before declaring a run
/// infeasible. `rr-lint`'s RRL701 flags scenarios whose estimated state
/// space exceeds this before anyone burns the CPU finding out.
pub const DEFAULT_STATE_BUDGET: u64 = 2_000_000;

/// The deepest episode-plan queue (simultaneous suspicions in one batch)
/// the default audit exercises — the widest leaf antichain of trees I–V.
/// `rr-lint`'s RRL702 flags configurations that can queue deeper than this,
/// because behaviour beyond the checked bound is unverified.
pub const CHECKED_QUEUE_BOUND: usize = 6;

//! The recovery protocol as an explicit state machine.
//!
//! A [`Model`] binds a restart tree to a [`Scenario`]; a [`State`] is one
//! global configuration of the protocol. The state wraps the **real**
//! [`Recoverer`] (cloned at every step — this is why `rr-core` grew a `Clone`
//! impl and the [`Recoverer::protocol_snapshot`] extraction hook), plus the
//! environment the recoverer reacts to: which faults are pending / active /
//! resolved, which components the failure detector has convicted this ping
//! epoch, and which suspicions a mutated (buggy) driver has mishandled.
//!
//! [`Model::enabled`] enumerates the atomic protocol steps possible in a
//! state; [`Model::apply`] executes one and checks every safety invariant on
//! the successor, returning a [`Violation`] the moment one breaks.

use std::collections::BTreeSet;

use rr_core::oracle::{Failure, Oracle, RestartOutcome};
use rr_core::policy::RestartPolicy;
use rr_core::recoverer::{Recoverer, RecoveryDecision};
use rr_core::schedule::is_antichain;
use rr_core::tree::{NodeId, RestartTree};
use rr_core::{NaiveOracle, PerfectOracle};
use rr_sim::SimTime;

use crate::scenario::{Mutation, OracleKind, PorAssumption, Scenario};

/// The escalation limit every [`Model`] binds its restart policy to. Small
/// enough that give-up/quarantine paths are reachable within the default
/// exploration depth; exported to the crate so rr-flow's static
/// escalation-chain analysis and the RRL95x lints reason about the same
/// bound the checker actually runs with.
pub(crate) const MODEL_ESCALATION_LIMIT: u32 = 3;

/// A cloneable oracle for the modelled recoverer. (`Box<dyn Oracle>` is not
/// `Clone`, and the checker forks the recoverer at every explored state.)
#[derive(Debug, Clone, Copy)]
pub enum ModelOracle {
    /// Minimal restart policy with ground-truth cure knowledge.
    Perfect(PerfectOracle),
    /// Own cell first, escalate on persistence.
    Naive(NaiveOracle),
}

impl ModelOracle {
    /// The oracle for a scenario's [`OracleKind`].
    pub fn new(kind: OracleKind) -> ModelOracle {
        match kind {
            OracleKind::Perfect => ModelOracle::Perfect(PerfectOracle::new()),
            OracleKind::Naive => ModelOracle::Naive(NaiveOracle::new()),
        }
    }
}

impl Oracle for ModelOracle {
    fn recommend(
        &mut self,
        tree: &RestartTree,
        failure: &Failure,
        attempt: u32,
        last: Option<NodeId>,
    ) -> NodeId {
        match self {
            ModelOracle::Perfect(o) => o.recommend(tree, failure, attempt, last),
            ModelOracle::Naive(o) => o.recommend(tree, failure, attempt, last),
        }
    }

    fn observe(&mut self, failure: &Failure, outcome: RestartOutcome) {
        match self {
            ModelOracle::Perfect(o) => o.observe(failure, outcome),
            ModelOracle::Naive(o) => o.observe(failure, outcome),
        }
    }

    fn describe(&self) -> String {
        match self {
            ModelOracle::Perfect(o) => o.describe(),
            ModelOracle::Naive(o) => o.describe(),
        }
    }
}

/// Where one injected fault is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStatus {
    /// Not injected yet (the adversary may still inject it).
    Pending,
    /// Injected and uncured: its component is down.
    Active,
    /// A restart covering its cure set completed.
    Cured,
    /// The policy gave up on it.
    Quarantined,
}

impl FaultStatus {
    fn sig_char(self) -> char {
        match self {
            FaultStatus::Pending => 'p',
            FaultStatus::Active => 'a',
            FaultStatus::Cured => 'c',
            FaultStatus::Quarantined => 'q',
        }
    }
}

/// One atomic protocol step. Actions carry component names (not indices) so
/// a counterexample trace is readable on its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// The adversary injects the fault manifesting in `component`.
    Inject {
        /// The fault's component.
        component: String,
    },
    /// The failure detector convicts `component` and reports it.
    Suspect {
        /// The convicted component.
        component: String,
    },
    /// The failure detector convicts several components in the same instant
    /// and reports them as one batch (the correlated-failure path that
    /// drives the parallel planner's antichain/merge logic).
    SuspectBatch {
        /// The convicted components, in deterministic order.
        components: Vec<String>,
    },
    /// The in-flight restart owned by `owner` completes (all components of
    /// its cell are booted again).
    Complete {
        /// The episode owner.
        owner: String,
    },
    /// The in-flight restart owned by `owner` completes by *rehydrating*:
    /// every restarted component replays its verified checkpoint instead of
    /// cold-booting. Only enabled when the scenario declares `rehydrate`;
    /// indistinguishable from [`Action::Complete`] to the recoverer, which
    /// is exactly the safety claim the checker discharges.
    CompleteRehydrated {
        /// The episode owner.
        owner: String,
    },
    /// The cure of `owner`'s episode is confirmed (its origins answered
    /// liveness pings after the restart).
    Confirm {
        /// The episode owner.
        owner: String,
    },
    /// The FD's ping epoch rolls over: suspicion latches clear, so persisting
    /// failures are re-detected (and escalate).
    Rollover,
    /// The admission controller defers the conviction of `component` under
    /// overload: the report is accepted and queued, but no restart launches
    /// yet. Only enabled when the scenario declares `admission`.
    Defer {
        /// The deferred component.
        component: String,
    },
    /// The admission controller's drain step admits the queued report for
    /// `component`, forwarding it to the recoverer (a no-op if the fault
    /// resolved or quarantined while queued).
    Admit {
        /// The admitted component.
        component: String,
    },
}

impl Action {
    /// A golden-trace-style label (`inject:pbcom`, `detect:fedr`, …).
    pub fn label(&self) -> String {
        match self {
            Action::Inject { component } => format!("inject:{component}"),
            Action::Suspect { component } => format!("detect:{component}"),
            Action::SuspectBatch { components } => {
                format!("detect:{}", components.join("+"))
            }
            Action::Complete { owner } => format!("ready:{owner}"),
            Action::CompleteRehydrated { owner } => format!("rehydrate:{owner}"),
            Action::Confirm { owner } => format!("cured:{owner}"),
            Action::Rollover => "epoch:rollover".to_string(),
            Action::Defer { component } => format!("defer:{component}"),
            Action::Admit { component } => format!("admit:{component}"),
        }
    }
}

/// Which safety property broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two concurrent restarts overlap (ancestor/descendant or duplicate):
    /// a component would be restarted twice.
    Antichain,
    /// An accepted suspicion is tracked by nothing — no open episode, no
    /// covering in-flight restart, no quarantine. The component is lost.
    ComponentLost,
    /// A restart decision does not cover all the origins it claims to
    /// answer.
    UncoveredOrigin,
    /// A component left quarantine without operator intervention.
    QuarantineRegressed,
    /// A restart was issued for a quarantined component.
    RestartAfterQuarantine,
    /// A quiescent state (no action enabled) with an unresolved fault: under
    /// fairness every injected fault must reach cured or quarantined.
    Liveness,
    /// A deadline-covered component starved: its restart request sits in the
    /// admission controller's deferral queue in a quiescent state, so under
    /// fairness it will never be admitted.
    Starvation,
}

impl ViolationKind {
    /// Stable kebab-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::Antichain => "antichain-broken",
            ViolationKind::ComponentLost => "component-lost",
            ViolationKind::UncoveredOrigin => "uncovered-origin",
            ViolationKind::QuarantineRegressed => "quarantine-regressed",
            ViolationKind::RestartAfterQuarantine => "restart-after-quarantine",
            ViolationKind::Liveness => "liveness-unresolved-fault",
            ViolationKind::Starvation => "deferred-starved",
        }
    }
}

/// A broken invariant, with human-readable specifics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// What exactly went wrong (components, cells, origins involved).
    pub detail: String,
}

/// A scenario-validation or exploration-budget error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model: {}", self.message)
    }
}

impl std::error::Error for ModelError {}

/// One global configuration of the protocol.
#[derive(Debug, Clone)]
pub struct State {
    /// The real recoverer, forked per explored state.
    rec: Recoverer<ModelOracle>,
    /// Lifecycle of each scenario fault, index-aligned with
    /// [`Model::faults`].
    fault_status: Vec<FaultStatus>,
    /// Components the FD has convicted this ping epoch (cleared by
    /// [`Action::Rollover`]); a latched component is not re-reported.
    suspected: BTreeSet<String>,
    /// Components whose conviction was ever accepted for reporting.
    reported: BTreeSet<String>,
    /// Components the policy gave up on (monotone).
    quarantined: BTreeSet<String>,
    /// Components whose accepted report sits in the admission controller's
    /// deferral queue, awaiting an [`Action::Admit`] drain step.
    deferred: BTreeSet<String>,
    /// Components resurrected from a stale checkpoint by the
    /// [`Mutation::StaleRehydrate`] driver: they beacon healthily, so the FD
    /// can no longer convict them, but their fault is still active.
    masked: BTreeSet<String>,
    /// Cells restarted by a mutated driver behind the planner's back.
    rogue_cells: Vec<NodeId>,
    /// Logical step counter: step *n*'s action executes at *n* seconds.
    step: u32,
}

impl State {
    /// The canonical signature used for state deduplication: everything that
    /// influences future behaviour, and nothing that does not. Absolute
    /// times are excluded — sound because the model policy's rate window
    /// (3600 s) exceeds any reachable path length (one second per step, far
    /// fewer than 3600 steps), so the policy sees only the restart *counts*,
    /// which the signature includes via the episode snapshots and
    /// per-component history lengths.
    pub fn signature(&self, tree: &RestartTree) -> String {
        use std::fmt::Write as _;
        let mut sig = String::new();
        for ep in self.rec.protocol_snapshot() {
            let cell = ep.cell.map(|n| tree.label(n).to_string());
            let _ = write!(
                sig,
                "e{}:{}:{}:{}:{};",
                ep.owner,
                ep.attempt,
                cell.as_deref().unwrap_or("-"),
                u8::from(ep.in_flight),
                ep.origins.join(","),
            );
        }
        sig.push('|');
        for status in &self.fault_status {
            sig.push(status.sig_char());
        }
        sig.push('|');
        let _ = write!(
            sig,
            "s{}|r{}|q{}|d{}|",
            self.suspected.iter().cloned().collect::<Vec<_>>().join(","),
            self.reported.iter().cloned().collect::<Vec<_>>().join(","),
            self.quarantined
                .iter()
                .cloned()
                .collect::<Vec<_>>()
                .join(","),
            self.deferred.iter().cloned().collect::<Vec<_>>().join(","),
        );
        let _ = write!(
            sig,
            "m{}|",
            self.masked.iter().cloned().collect::<Vec<_>>().join(","),
        );
        let mut rogue: Vec<&str> = self.rogue_cells.iter().map(|&n| tree.label(n)).collect();
        rogue.sort_unstable();
        let _ = write!(sig, "g{}|h", rogue.join(","));
        for component in tree.components() {
            let _ = write!(sig, "{}", self.rec.policy().recent_restarts(&component));
        }
        sig
    }

    /// The episode owners with a restart currently in flight, sorted.
    pub fn in_flight_owners(&self) -> Vec<String> {
        self.rec
            .protocol_snapshot()
            .into_iter()
            .filter(|ep| ep.in_flight)
            .map(|ep| ep.owner)
            .collect()
    }

    /// Components quarantined so far.
    pub fn quarantined(&self) -> &BTreeSet<String> {
        &self.quarantined
    }

    /// Status of the fault at `index`.
    pub fn fault_status(&self, index: usize) -> FaultStatus {
        self.fault_status[index]
    }

    /// Components currently parked in the admission deferral queue.
    pub fn deferred(&self) -> &BTreeSet<String> {
        &self.deferred
    }

    /// Components a stale-rehydrate driver has hidden from the FD.
    pub fn masked(&self) -> &BTreeSet<String> {
        &self.masked
    }

    /// Components the FD has convicted this ping epoch (latched until the
    /// next rollover).
    pub(crate) fn suspected(&self) -> &BTreeSet<String> {
        &self.suspected
    }

    /// The cells of all restarts currently in flight.
    pub(crate) fn in_flight_cells(&self) -> Vec<NodeId> {
        self.rec.in_flight_cells()
    }

    /// The cell of `owner`'s in-flight restart, if any.
    pub(crate) fn in_flight_cell_of(&self, owner: &str) -> Option<NodeId> {
        self.rec
            .protocol_snapshot()
            .into_iter()
            .find(|ep| ep.owner == owner && ep.in_flight)
            .and_then(|ep| ep.cell)
    }
}

/// A restart tree bound to a scenario: the transition system the checker
/// explores.
pub struct Model {
    tree: RestartTree,
    faults: Vec<Failure>,
    oracle: ModelOracle,
    policy: RestartPolicy,
    mutation: Option<Mutation>,
    admission: bool,
    rehydrate: bool,
    por_assume: Option<PorAssumption>,
}

impl Model {
    /// Binds `tree` to `scenario`, validating that every fault component and
    /// cure-set member exists in the tree.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] naming the first unknown component.
    pub fn new(tree: RestartTree, scenario: &Scenario) -> Result<Model, ModelError> {
        let mut faults = Vec::new();
        for spec in &scenario.faults {
            for member in &spec.cure_set {
                if tree.cell_of_component(member).is_none() {
                    return Err(ModelError {
                        message: format!(
                            "fault `{}`: component `{member}` is not in the tree",
                            spec.component
                        ),
                    });
                }
            }
            faults.push(Failure::correlated(&spec.component, spec.cure_set.clone()));
        }
        if scenario.mutation == Some(Mutation::StarveDeferred) && !scenario.admission {
            return Err(ModelError {
                message: "mutation starve-deferred requires the `admission` directive".into(),
            });
        }
        if scenario.mutation == Some(Mutation::StaleRehydrate) && !scenario.rehydrate {
            return Err(ModelError {
                message: "mutation stale-rehydrate requires the `rehydrate` directive".into(),
            });
        }
        // A tight escalation limit keeps give-up/quarantine paths reachable
        // within the default exploration depth; the default rate window
        // (3600 s) dwarfs every path length, which is what makes excluding
        // absolute times from state signatures sound (see
        // [`State::signature`]).
        let policy = RestartPolicy::new().with_escalation_limit(MODEL_ESCALATION_LIMIT);
        Ok(Model {
            tree,
            faults,
            oracle: ModelOracle::new(scenario.oracle),
            policy,
            mutation: scenario.mutation,
            admission: scenario.admission,
            rehydrate: scenario.rehydrate,
            por_assume: scenario.por_assume,
        })
    }

    /// The bound restart tree.
    pub fn tree(&self) -> &RestartTree {
        &self.tree
    }

    /// The scenario faults, in declaration order.
    pub fn faults(&self) -> &[Failure] {
        &self.faults
    }

    /// The oracle this model binds (stateless, so freely copyable — which is
    /// what lets rr-flow precompute escalation chains statically).
    pub(crate) fn oracle(&self) -> ModelOracle {
        self.oracle
    }

    /// The seeded protocol bug, if any.
    pub(crate) fn mutation(&self) -> Option<Mutation> {
        self.mutation
    }

    /// Whether the admission controller is modelled.
    pub(crate) fn admission(&self) -> bool {
        self.admission
    }

    /// Whether checkpoint rehydration is modelled.
    pub(crate) fn rehydrate(&self) -> bool {
        self.rehydrate
    }

    /// The forced (unsound) independence assumption, if any (fixtures only).
    pub(crate) fn por_assume(&self) -> Option<PorAssumption> {
        self.por_assume
    }

    /// The initial state: nothing injected, nothing suspected.
    pub fn initial(&self) -> State {
        State {
            rec: Recoverer::new(self.tree.clone(), self.oracle, self.policy.clone()),
            fault_status: vec![FaultStatus::Pending; self.faults.len()],
            suspected: BTreeSet::new(),
            reported: BTreeSet::new(),
            quarantined: BTreeSet::new(),
            deferred: BTreeSet::new(),
            masked: BTreeSet::new(),
            rogue_cells: Vec::new(),
            step: 0,
        }
    }

    fn fault_index(&self, component: &str) -> Option<usize> {
        self.faults.iter().position(|f| f.component == component)
    }

    /// The components currently down and eligible for (re-)conviction.
    fn suspect_targets(&self, state: &State) -> Vec<String> {
        self.faults
            .iter()
            .enumerate()
            .filter(|(i, f)| {
                state.fault_status[*i] == FaultStatus::Active
                    && !state.suspected.contains(&f.component)
                    && !state.quarantined.contains(&f.component)
                    && !state.deferred.contains(&f.component)
                    && !state.masked.contains(&f.component)
            })
            .map(|(_, f)| f.component.clone())
            .collect()
    }

    /// Every action enabled in `state`, in deterministic order.
    pub fn enabled(&self, state: &State) -> Vec<Action> {
        let mut actions = Vec::new();
        for (i, fault) in self.faults.iter().enumerate() {
            if state.fault_status[i] == FaultStatus::Pending {
                actions.push(Action::Inject {
                    component: fault.component.clone(),
                });
            }
        }
        let targets = self.suspect_targets(state);
        for component in &targets {
            actions.push(Action::Suspect {
                component: component.clone(),
            });
            if self.admission {
                actions.push(Action::Defer {
                    component: component.clone(),
                });
            }
        }
        if targets.len() >= 2 {
            actions.push(Action::SuspectBatch {
                components: targets,
            });
        }
        if self.mutation != Some(Mutation::StarveDeferred) {
            for component in &state.deferred {
                actions.push(Action::Admit {
                    component: component.clone(),
                });
            }
        }
        for ep in state.rec.protocol_snapshot() {
            if ep.in_flight {
                actions.push(Action::Complete {
                    owner: ep.owner.clone(),
                });
                if self.rehydrate {
                    actions.push(Action::CompleteRehydrated { owner: ep.owner });
                }
            } else if ep.cell.is_some() && self.origins_cured(state, &ep.origins) {
                actions.push(Action::Confirm { owner: ep.owner });
            }
        }
        if !state.suspected.is_empty() {
            actions.push(Action::Rollover);
        }
        actions
    }

    fn origins_cured(&self, state: &State, origins: &[String]) -> bool {
        origins.iter().all(|origin| {
            self.fault_index(origin)
                .is_none_or(|i| state.fault_status[i] == FaultStatus::Cured)
        })
    }

    /// Executes `action` on `state` and checks every safety invariant on the
    /// successor.
    ///
    /// # Errors
    ///
    /// Returns the [`Violation`] if an invariant breaks; the successor state
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `action` is not enabled in `state` (checker bug, not a
    /// protocol violation).
    pub fn apply(&self, state: &State, action: &Action) -> Result<State, Violation> {
        let mut next = state.clone();
        next.step += 1;
        let now = SimTime::from_secs(u64::from(next.step));
        let mut decisions: Vec<RecoveryDecision> = Vec::new();
        match action {
            Action::Inject { component } => {
                let i = self.expect_fault(component);
                assert_eq!(
                    state.fault_status[i],
                    FaultStatus::Pending,
                    "inject enabled"
                );
                next.fault_status[i] = FaultStatus::Active;
            }
            Action::Suspect { component } => {
                next.suspected.insert(component.clone());
                next.reported.insert(component.clone());
                let i = self.expect_fault(component);
                match self.mutation {
                    Some(Mutation::DropReport) => {}
                    Some(Mutation::BypassPlanner) => {
                        let cell = self.rogue_cell(&self.faults[i]);
                        next.rogue_cells.push(cell);
                    }
                    // Starve-deferred only breaks the drain tick and
                    // stale-rehydrate only breaks checkpoint verification;
                    // direct suspicions still reach the recoverer.
                    None | Some(Mutation::StarveDeferred | Mutation::StaleRehydrate) => {
                        decisions.push(next.rec.on_failure(self.faults[i].clone(), now));
                    }
                }
            }
            Action::SuspectBatch { components } => {
                let mut batch = Vec::new();
                for component in components {
                    next.suspected.insert(component.clone());
                    next.reported.insert(component.clone());
                    let i = self.expect_fault(component);
                    match self.mutation {
                        Some(Mutation::DropReport) => {}
                        Some(Mutation::BypassPlanner) => {
                            let cell = self.rogue_cell(&self.faults[i]);
                            next.rogue_cells.push(cell);
                        }
                        None | Some(Mutation::StarveDeferred | Mutation::StaleRehydrate) => {
                            batch.push(self.faults[i].clone());
                        }
                    }
                }
                if !batch.is_empty() {
                    decisions.extend(next.rec.on_failures(batch, now));
                }
            }
            Action::Complete { owner } => {
                let cell = next
                    .rec
                    .protocol_snapshot()
                    .into_iter()
                    .find(|ep| ep.owner == *owner && ep.in_flight)
                    .and_then(|ep| ep.cell)
                    .unwrap_or_else(|| panic!("complete enabled for {owner}"));
                next.rec.on_restart_complete(owner, now);
                let covered = self.tree.components_under(cell);
                for (i, fault) in self.faults.iter().enumerate() {
                    if next.fault_status[i] == FaultStatus::Active
                        && fault.cure_set.iter().all(|c| covered.contains(c))
                    {
                        next.fault_status[i] = FaultStatus::Cured;
                    }
                }
                // A cold boot rebuilds state from scratch, so it also cures
                // whatever a stale rehydration left masked in this cell.
                for component in &covered {
                    next.masked.remove(component);
                }
            }
            Action::CompleteRehydrated { owner } => {
                let cell = next
                    .rec
                    .protocol_snapshot()
                    .into_iter()
                    .find(|ep| ep.owner == *owner && ep.in_flight)
                    .and_then(|ep| ep.cell)
                    .unwrap_or_else(|| panic!("rehydrated complete enabled for {owner}"));
                next.rec.on_restart_complete(owner, now);
                let covered = self.tree.components_under(cell);
                for (i, fault) in self.faults.iter().enumerate() {
                    if next.fault_status[i] == FaultStatus::Active
                        && fault.cure_set.iter().all(|c| covered.contains(c))
                    {
                        if self.mutation == Some(Mutation::StaleRehydrate) {
                            // Unverified replay: the component resumes from
                            // a stale checkpoint and beacons healthily, but
                            // the fault survives in the resurrected state —
                            // the FD can no longer see it.
                            next.masked.insert(fault.component.clone());
                        } else {
                            // A verified checkpoint replays to exactly the
                            // pre-crash state the cure semantics promise.
                            next.fault_status[i] = FaultStatus::Cured;
                        }
                    }
                }
            }
            Action::Confirm { owner } => {
                next.rec.on_cured(owner, now);
            }
            Action::Rollover => {
                next.suspected.clear();
            }
            Action::Defer { component } => {
                next.suspected.insert(component.clone());
                next.reported.insert(component.clone());
                next.deferred.insert(component.clone());
            }
            Action::Admit { component } => {
                next.deferred.remove(component);
                let i = self.expect_fault(component);
                if next.fault_status[i] == FaultStatus::Active
                    && !next.quarantined.contains(component)
                {
                    decisions.push(next.rec.on_failure(self.faults[i].clone(), now));
                }
            }
        }
        self.absorb_decisions(state, &mut next, &decisions)?;
        self.check_invariants(state, &next, action)?;
        Ok(next)
    }

    fn expect_fault(&self, component: &str) -> usize {
        self.fault_index(component)
            .unwrap_or_else(|| panic!("no fault for component {component}"))
    }

    /// The cell a planner-bypassing driver would restart for `failure`: what
    /// the oracle recommends on a first attempt.
    fn rogue_cell(&self, failure: &Failure) -> NodeId {
        let mut oracle = self.oracle;
        oracle.recommend(&self.tree, failure, 0, None)
    }

    /// Folds the recoverer's decisions into the model state: give-ups
    /// quarantine every origin whose episode vanished, and each restart
    /// decision is itself invariant-checked.
    fn absorb_decisions(
        &self,
        before: &State,
        next: &mut State,
        decisions: &[RecoveryDecision],
    ) -> Result<(), Violation> {
        let mut gave_up = false;
        for decision in decisions {
            match decision {
                RecoveryDecision::Restart {
                    components,
                    origins,
                    ..
                } => {
                    for origin in origins {
                        if next.quarantined.contains(origin) {
                            return Err(Violation {
                                kind: ViolationKind::RestartAfterQuarantine,
                                detail: format!("restart issued for quarantined origin `{origin}`"),
                            });
                        }
                        if !components.contains(origin) {
                            return Err(Violation {
                                kind: ViolationKind::UncoveredOrigin,
                                detail: format!(
                                    "restart set [{}] does not cover origin `{origin}`",
                                    components.join(", ")
                                ),
                            });
                        }
                    }
                }
                RecoveryDecision::AlreadyRecovering { .. } => {}
                RecoveryDecision::GiveUp { .. } => gave_up = true,
            }
        }
        if gave_up {
            // The recoverer dropped the abandoned episodes wholesale; every
            // origin that was tracked before and is tracked no longer has
            // been given up on.
            let tracked_before = Self::tracked_origins(before);
            let tracked_after = Self::tracked_origins(next);
            for origin in tracked_before.difference(&tracked_after) {
                next.quarantined.insert(origin.clone());
                if let Some(i) = self.fault_index(origin) {
                    if next.fault_status[i] == FaultStatus::Active {
                        next.fault_status[i] = FaultStatus::Quarantined;
                    }
                }
            }
            // A suspicion refused on arrival never had an episode: the
            // give-up decision's component covers it below via `reported`.
            for (i, fault) in self.faults.iter().enumerate() {
                if next.fault_status[i] == FaultStatus::Active
                    && next.reported.contains(&fault.component)
                    && !next.deferred.contains(&fault.component)
                    && !tracked_after.contains(&fault.component)
                    && !self.covered_in_flight(next, &fault.component)
                {
                    next.quarantined.insert(fault.component.clone());
                    next.fault_status[i] = FaultStatus::Quarantined;
                }
            }
        }
        Ok(())
    }

    fn tracked_origins(state: &State) -> BTreeSet<String> {
        state
            .rec
            .protocol_snapshot()
            .into_iter()
            .flat_map(|ep| ep.origins)
            .collect()
    }

    fn covered_in_flight(&self, state: &State, component: &str) -> bool {
        state.rec.in_flight_cells().into_iter().any(|cell| {
            self.tree
                .components_under(cell)
                .iter()
                .any(|c| c == component)
        })
    }

    /// The global safety invariants, checked on every successor state.
    fn check_invariants(
        &self,
        before: &State,
        next: &State,
        action: &Action,
    ) -> Result<(), Violation> {
        // I1: concurrent restarts form an antichain — including any restart
        // a mutated driver issued behind the planner's back.
        let mut cells = next.rec.in_flight_cells();
        cells.extend(next.rogue_cells.iter().copied());
        if !is_antichain(&self.tree, &cells) {
            let labels: Vec<&str> = cells.iter().map(|&n| self.tree.label(n)).collect();
            return Err(Violation {
                kind: ViolationKind::Antichain,
                detail: format!(
                    "overlapping concurrent restarts after `{}`: [{}]",
                    action.label(),
                    labels.join(", ")
                ),
            });
        }
        // I2: quarantine is monotone.
        if let Some(escapee) = before
            .quarantined
            .iter()
            .find(|c| !next.quarantined.contains(*c))
        {
            return Err(Violation {
                kind: ViolationKind::QuarantineRegressed,
                detail: format!("`{escapee}` left quarantine"),
            });
        }
        // I3: an accepted suspicion is never lost. Checked right after the
        // report is accepted — later the component may legitimately be
        // untracked-but-down again (restart completed without curing; the
        // next epoch re-reports it).
        let reported_now: &[String] = match action {
            Action::Suspect { component }
            | Action::Defer { component }
            | Action::Admit { component } => std::slice::from_ref(component),
            Action::SuspectBatch { components } => components,
            _ => &[],
        };
        let tracked = Self::tracked_origins(next);
        for component in reported_now {
            let resolved = self
                .fault_index(component)
                .is_some_and(|i| matches!(next.fault_status[i], FaultStatus::Cured));
            if !tracked.contains(component)
                && !self.covered_in_flight(next, component)
                && !next.quarantined.contains(component)
                && !next.deferred.contains(component)
                && !resolved
            {
                return Err(Violation {
                    kind: ViolationKind::ComponentLost,
                    detail: format!(
                        "report for `{component}` accepted but no episode, covering \
                         restart, or quarantine tracks it"
                    ),
                });
            }
        }
        Ok(())
    }

    /// The liveness-under-fairness check, evaluated at quiescent states (no
    /// action enabled): every injected fault must be cured or quarantined.
    pub fn check_quiescent(&self, state: &State) -> Result<(), Violation> {
        // The starvation invariant: a quiescent state must not park an
        // unresolved component in the deferral queue — under fairness the
        // drain step would otherwise have admitted it by now.
        for component in &state.deferred {
            if self
                .fault_index(component)
                .is_some_and(|i| state.fault_status[i] == FaultStatus::Active)
            {
                return Err(Violation {
                    kind: ViolationKind::Starvation,
                    detail: format!(
                        "deferred restart for `{component}` was never admitted; the \
                         component starves in the queue"
                    ),
                });
            }
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if state.fault_status[i] == FaultStatus::Active {
                return Err(Violation {
                    kind: ViolationKind::Liveness,
                    detail: format!(
                        "quiescent state with fault on `{}` neither cured nor quarantined",
                        fault.component
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use rr_core::TreeSpec;

    fn tree_iv() -> RestartTree {
        TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
            .with_child(
                TreeSpec::cell("R_[fedr,pbcom]")
                    .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
                    .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom")),
            )
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
            .build()
            .unwrap()
    }

    fn model(text: &str) -> Model {
        Model::new(tree_iv(), &scenario::parse(text).unwrap()).unwrap()
    }

    #[test]
    fn rejects_unknown_components() {
        let s = scenario::parse("tree IV\nfault nosuch\n").unwrap();
        assert!(Model::new(tree_iv(), &s).is_err());
    }

    #[test]
    fn initial_state_enables_only_injections() {
        let m = model("tree IV\nfault pbcom\nfault rtu\n");
        let s = m.initial();
        let acts = m.enabled(&s);
        assert_eq!(acts.len(), 2);
        assert!(acts.iter().all(|a| matches!(a, Action::Inject { .. })));
    }

    #[test]
    fn happy_path_cures_the_fault() {
        let m = model("tree IV\nfault pbcom\n");
        let mut s = m.initial();
        for action in [
            Action::Inject {
                component: "pbcom".into(),
            },
            Action::Suspect {
                component: "pbcom".into(),
            },
            Action::Complete {
                owner: "pbcom".into(),
            },
            Action::Confirm {
                owner: "pbcom".into(),
            },
            Action::Rollover,
        ] {
            assert!(m.enabled(&s).contains(&action), "{action:?} enabled");
            s = m.apply(&s, &action).unwrap();
        }
        assert_eq!(s.fault_status(0), FaultStatus::Cured);
        assert!(m.enabled(&s).is_empty());
        assert!(m.check_quiescent(&s).is_ok());
    }

    #[test]
    fn batch_suspicion_merges_overlapping_cells() {
        // fedr's fault needs fedr+pbcom: the perfect oracle plans the parent
        // cell, absorbing pbcom's own episode in the same batch.
        let m = model("tree IV\nfault pbcom\nfault fedr cures fedr pbcom\n");
        let mut s = m.initial();
        for action in [
            Action::Inject {
                component: "pbcom".into(),
            },
            Action::Inject {
                component: "fedr".into(),
            },
            Action::SuspectBatch {
                components: vec!["fedr".into(), "pbcom".into()],
            },
        ] {
            s = m.apply(&s, &action).unwrap();
        }
        assert_eq!(s.in_flight_owners().len(), 1, "one merged episode");
        let owner = s.in_flight_owners().remove(0);
        let s = m
            .apply(
                &s,
                &Action::Complete {
                    owner: owner.clone(),
                },
            )
            .unwrap();
        assert_eq!(s.fault_status(0), FaultStatus::Cured);
        assert_eq!(s.fault_status(1), FaultStatus::Cured);
    }

    #[test]
    fn drop_report_mutation_loses_the_component() {
        let m = model("tree IV\nfault rtu\nmutate drop-report\n");
        let s = m.initial();
        let s = m
            .apply(
                &s,
                &Action::Inject {
                    component: "rtu".into(),
                },
            )
            .unwrap();
        let violation = m
            .apply(
                &s,
                &Action::Suspect {
                    component: "rtu".into(),
                },
            )
            .unwrap_err();
        assert_eq!(violation.kind, ViolationKind::ComponentLost);
    }

    #[test]
    fn bypass_planner_mutation_breaks_the_antichain() {
        // Two rogue restarts of overlapping cells (pbcom's own cell and its
        // parent via fedr's correlated cure set).
        let m = model("tree IV\nfault pbcom\nfault fedr cures fedr pbcom\nmutate bypass-planner\n");
        let mut s = m.initial();
        for component in ["pbcom", "fedr"] {
            s = m
                .apply(
                    &s,
                    &Action::Inject {
                        component: component.into(),
                    },
                )
                .unwrap();
        }
        // First rogue restart: lost-component fires only if untracked; the
        // rogue cell *does* cover pbcom physically, but nothing in the
        // recoverer tracks it.
        let out = m.apply(
            &s,
            &Action::Suspect {
                component: "pbcom".into(),
            },
        );
        let violation = match out {
            Err(v) => v,
            Ok(next) => m
                .apply(
                    &next,
                    &Action::Suspect {
                        component: "fedr".into(),
                    },
                )
                .unwrap_err(),
        };
        assert!(matches!(
            violation.kind,
            ViolationKind::ComponentLost | ViolationKind::Antichain
        ));
    }

    #[test]
    fn defer_then_admit_cures_the_fault() {
        let m = model("tree IV\nadmission\nfault pbcom\n");
        let mut s = m.initial();
        let inject = Action::Inject {
            component: "pbcom".into(),
        };
        let defer = Action::Defer {
            component: "pbcom".into(),
        };
        s = m.apply(&s, &inject).unwrap();
        assert!(m.enabled(&s).contains(&defer), "defer is an alternative");
        s = m.apply(&s, &defer).unwrap();
        // While deferred the component is neither re-suspected nor lost, and
        // the drain step is enabled.
        assert!(s.deferred().contains("pbcom"));
        assert!(!m
            .enabled(&s)
            .iter()
            .any(|a| matches!(a, Action::Suspect { .. } | Action::SuspectBatch { .. })));
        for action in [
            Action::Admit {
                component: "pbcom".into(),
            },
            Action::Complete {
                owner: "pbcom".into(),
            },
            Action::Confirm {
                owner: "pbcom".into(),
            },
            Action::Rollover,
        ] {
            assert!(m.enabled(&s).contains(&action), "{action:?} enabled");
            s = m.apply(&s, &action).unwrap();
        }
        assert_eq!(s.fault_status(0), FaultStatus::Cured);
        assert!(s.deferred().is_empty());
        assert!(m.check_quiescent(&s).is_ok());
    }

    #[test]
    fn starve_deferred_mutation_trips_the_starvation_invariant() {
        let m = model("tree IV\nadmission\nfault pbcom\nmutate starve-deferred\n");
        let mut s = m.initial();
        for action in [
            Action::Inject {
                component: "pbcom".into(),
            },
            Action::Defer {
                component: "pbcom".into(),
            },
            Action::Rollover,
        ] {
            s = m.apply(&s, &action).unwrap();
        }
        // The drain tick never fires: nothing is enabled, and the quiescent
        // check pins the starved component by name.
        assert!(m.enabled(&s).is_empty(), "starved queue is quiescent");
        let violation = m.check_quiescent(&s).unwrap_err();
        assert_eq!(violation.kind, ViolationKind::Starvation);
        assert!(violation.detail.contains("pbcom"));
    }

    #[test]
    fn rehydrated_completion_cures_like_a_cold_boot() {
        let m = model("tree IV\nrehydrate\nfault pbcom\n");
        let mut s = m.initial();
        for action in [
            Action::Inject {
                component: "pbcom".into(),
            },
            Action::Suspect {
                component: "pbcom".into(),
            },
        ] {
            s = m.apply(&s, &action).unwrap();
        }
        // Both completion flavours are on offer for the in-flight restart.
        let enabled = m.enabled(&s);
        assert!(enabled.iter().any(|a| matches!(a, Action::Complete { .. })));
        let rehy = Action::CompleteRehydrated {
            owner: "pbcom".into(),
        };
        assert!(enabled.contains(&rehy));
        s = m.apply(&s, &rehy).unwrap();
        assert_eq!(s.fault_status(0), FaultStatus::Cured);
        for action in [
            Action::Confirm {
                owner: "pbcom".into(),
            },
            Action::Rollover,
        ] {
            s = m.apply(&s, &action).unwrap();
        }
        assert!(m.enabled(&s).is_empty());
        assert!(m.check_quiescent(&s).is_ok());
        // Without the directive the rehydrated flavour never appears.
        let cold = model("tree IV\nfault pbcom\n");
        let mut s = cold.initial();
        for action in [
            Action::Inject {
                component: "pbcom".into(),
            },
            Action::Suspect {
                component: "pbcom".into(),
            },
        ] {
            s = cold.apply(&s, &action).unwrap();
        }
        assert!(!cold
            .enabled(&s)
            .iter()
            .any(|a| matches!(a, Action::CompleteRehydrated { .. })));
    }

    #[test]
    fn stale_rehydrate_mutation_trips_the_liveness_invariant() {
        let m = model("tree IV\nrehydrate\nfault rtu\nmutate stale-rehydrate\n");
        let mut s = m.initial();
        for action in [
            Action::Inject {
                component: "rtu".into(),
            },
            Action::Suspect {
                component: "rtu".into(),
            },
            Action::CompleteRehydrated {
                owner: "rtu".into(),
            },
            Action::Rollover,
        ] {
            assert!(m.enabled(&s).contains(&action), "{action:?} enabled");
            s = m.apply(&s, &action).unwrap();
        }
        // The component beacons healthily from stale state: the FD cannot
        // re-convict it, and the fault is neither cured nor quarantined.
        assert!(s.masked().contains("rtu"));
        assert_eq!(s.fault_status(0), FaultStatus::Active);
        assert!(m.enabled(&s).is_empty(), "masked fault is quiescent");
        let violation = m.check_quiescent(&s).unwrap_err();
        assert_eq!(violation.kind, ViolationKind::Liveness);
        assert!(violation.detail.contains("rtu"));
    }

    #[test]
    fn defer_requires_the_admission_directive() {
        let m = model("tree IV\nfault pbcom\n");
        let s = m
            .apply(
                &m.initial(),
                &Action::Inject {
                    component: "pbcom".into(),
                },
            )
            .unwrap();
        assert!(!m
            .enabled(&s)
            .iter()
            .any(|a| matches!(a, Action::Defer { .. })));
        let s = scenario::parse("tree IV\nadmission\nfault pbcom\nmutate starve-deferred\n")
            .map(|mut sc| {
                sc.admission = false;
                sc
            })
            .unwrap();
        assert!(Model::new(tree_iv(), &s).is_err());
    }

    #[test]
    fn signatures_collapse_commuting_interleavings() {
        let m = model("tree IV\nfault pbcom\nfault rtu\n");
        let s = m.initial();
        let ab = m
            .apply(
                &m.apply(
                    &s,
                    &Action::Inject {
                        component: "pbcom".into(),
                    },
                )
                .unwrap(),
                &Action::Inject {
                    component: "rtu".into(),
                },
            )
            .unwrap();
        let ba = m
            .apply(
                &m.apply(
                    &s,
                    &Action::Inject {
                        component: "rtu".into(),
                    },
                )
                .unwrap(),
                &Action::Inject {
                    component: "pbcom".into(),
                },
            )
            .unwrap();
        assert_eq!(ab.signature(m.tree()), ba.signature(m.tree()));
    }
}

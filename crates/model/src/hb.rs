//! Post-hoc happens-before verification of telemetry episode streams.
//!
//! `rr-sim`'s telemetry registry stamps every episode event with a vector
//! clock ([`rr_sim::VectorClock`]); this module checks a recorded stream for
//! causal-order violations without re-running anything:
//!
//! * virtual time never runs backwards,
//! * each telemetry key's clock grows strictly (no stale-epoch attribution:
//!   an event recorded against an older clock snapshot is a replayed or
//!   misattributed observation),
//! * `Ready` follows a `Restarting` of the same episode, causally after it,
//! * `Cured` closes an episode that was actually restarting (never one that
//!   was merged away),
//! * an LCA merge happens-before the absorbing episode's restart — the
//!   "child ready before its merged parent began restarting" bug is a clock
//!   that fails to dominate here,
//! * a conviction (`Suspected`) never causally precedes the injection it
//!   detects.
//!
//! The verifier is deliberately permissive about *which* events appear (a
//! chaos campaign's stream looks different from a golden scenario's); it is
//! strict about the causal order of the ones that do.

use std::collections::HashMap;

use rr_sim::telemetry::{EpisodeEvent, EpisodeStage};
use rr_sim::{Registry, VectorClock};

/// One causal-order violation in a recorded stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbViolation {
    /// Index of the offending event in the stream.
    pub index: usize,
    /// What order was violated.
    pub message: String,
}

impl std::fmt::Display for HbViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event {}: {}", self.index, self.message)
    }
}

/// Where one telemetry key's episode currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Restarting,
    Ready,
    MergedAway,
}

#[derive(Debug, Clone, Default)]
struct KeyState {
    phase: Option<Phase>,
    last_clock: Option<VectorClock>,
    last_restarting: Option<VectorClock>,
    last_injected: Option<VectorClock>,
}

/// Verifies a stream of `(event, clock)` pairs (index-aligned slices, as
/// produced by [`Registry::events`] / [`Registry::clocks`]). Returns every
/// violation found, in stream order; an empty result means the stream is
/// causally consistent.
pub fn verify(events: &[EpisodeEvent], clocks: &[VectorClock]) -> Vec<HbViolation> {
    let mut violations = Vec::new();
    if events.len() != clocks.len() {
        violations.push(HbViolation {
            index: 0,
            message: format!(
                "clock stream out of step with event stream ({} events, {} clocks)",
                events.len(),
                clocks.len()
            ),
        });
        return violations;
    }
    let mut keys: HashMap<String, KeyState> = HashMap::new();
    // Merge edges waiting for the absorbing episode's restart:
    // into-key → (merge event index, merge clock).
    let mut pending_merges: HashMap<String, Vec<(usize, VectorClock)>> = HashMap::new();
    let mut last_at = None;

    for (index, (event, clock)) in events.iter().zip(clocks.iter()).enumerate() {
        if let Some(prev) = last_at {
            if event.at < prev {
                violations.push(HbViolation {
                    index,
                    message: format!(
                        "virtual time ran backwards ({:?} after {:?})",
                        event.at, prev
                    ),
                });
            }
        }
        last_at = Some(event.at);

        let key = keys.entry(event.component.clone()).or_default();
        if let Some(prev) = &key.last_clock {
            if !prev.happens_before(clock) {
                violations.push(HbViolation {
                    index,
                    message: format!(
                        "`{}`'s clock did not advance ({prev} then {clock}): stale-epoch \
                         attribution",
                        event.component
                    ),
                });
            }
        }
        key.last_clock = Some(clock.clone());

        let phase = key.phase.unwrap_or(Phase::Idle);
        match event.stage {
            EpisodeStage::Injected => {
                key.last_injected = Some(clock.clone());
            }
            EpisodeStage::Suspected => {
                if let Some(injected) = &key.last_injected {
                    if !injected.happens_before(clock) {
                        violations.push(HbViolation {
                            index,
                            message: format!(
                                "`{}` convicted concurrently with (or before) its own \
                                 injection",
                                event.component
                            ),
                        });
                    }
                }
            }
            EpisodeStage::Planned => {}
            EpisodeStage::Merged => {
                key.phase = Some(Phase::MergedAway);
                if let Some(into) = event.detail.strip_prefix("into=") {
                    pending_merges
                        .entry(into.to_string())
                        .or_default()
                        .push((index, clock.clone()));
                }
            }
            EpisodeStage::Restarting => {
                key.phase = Some(Phase::Restarting);
                key.last_restarting = Some(clock.clone());
                if let Some(edges) = pending_merges.remove(&event.component) {
                    for (merge_index, merge_clock) in edges {
                        if !merge_clock.happens_before(clock) {
                            violations.push(HbViolation {
                                index,
                                message: format!(
                                    "restart of `{}` does not causally follow the merge \
                                     at event {merge_index} it absorbs",
                                    event.component
                                ),
                            });
                        }
                    }
                }
            }
            EpisodeStage::Ready => {
                match phase {
                    Phase::Restarting => {}
                    Phase::MergedAway => violations.push(HbViolation {
                        index,
                        message: format!(
                            "`{}` reported ready after being merged away (child ready \
                             before its merged parent began restarting)",
                            event.component
                        ),
                    }),
                    Phase::Idle | Phase::Ready => violations.push(HbViolation {
                        index,
                        message: format!(
                            "`{}` reported ready without a restart in progress",
                            event.component
                        ),
                    }),
                }
                if let Some(restarting) = &key.last_restarting {
                    if phase == Phase::Restarting && !restarting.happens_before(clock) {
                        violations.push(HbViolation {
                            index,
                            message: format!(
                                "`{}` ready does not causally follow its restart",
                                event.component
                            ),
                        });
                    }
                }
                key.phase = Some(Phase::Ready);
            }
            EpisodeStage::Cured => {
                match phase {
                    Phase::Restarting | Phase::Ready => {}
                    Phase::MergedAway => violations.push(HbViolation {
                        index,
                        message: format!(
                            "`{}` cured after being merged away — the cure belongs to \
                             the absorbing episode",
                            event.component
                        ),
                    }),
                    Phase::Idle => violations.push(HbViolation {
                        index,
                        message: format!("`{}` cured with no episode restarting", event.component),
                    }),
                }
                key.phase = Some(Phase::Idle);
            }
            EpisodeStage::Quarantined => {
                key.phase = Some(Phase::Idle);
            }
            // Admission-control decisions park or drop a request before any
            // episode opens; they impose no phase transition of their own
            // (the generic clock-advance check above still applies).
            EpisodeStage::Deferred | EpisodeStage::Shed => {}
        }
    }
    violations
}

/// Verifies a telemetry registry's recorded episode stream.
pub fn verify_registry(registry: &Registry) -> Vec<HbViolation> {
    verify(registry.events(), registry.clocks())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_sim::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn event(s: u64, component: &str, stage: EpisodeStage, detail: &str) -> EpisodeEvent {
        EpisodeEvent {
            at: t(s),
            component: component.to_string(),
            stage,
            detail: detail.to_string(),
        }
    }

    /// Drives a real registry through a merged two-origin episode; the
    /// recorded stream must verify clean.
    #[test]
    fn real_registry_merged_episode_verifies_clean() {
        let mut reg = Registry::new();
        reg.record_injected(t(1), "pbcom", "kill");
        reg.record_injected(t(2), "fedr", "kill");
        reg.record_suspected(t(3), "pbcom");
        reg.record_suspected(t(3), "fedr");
        reg.record_merged(t(4), "pbcom", "fedr");
        reg.record_planned(t(4), "fedr", &["fedr".into(), "pbcom".into()]);
        reg.record_restarting(
            t(4),
            "fedr",
            &["fedr".into(), "pbcom".into()],
            &["fedr".into(), "pbcom".into()],
            0,
        );
        reg.record_component_ready(t(6), "fedr");
        reg.record_component_ready(t(7), "pbcom");
        reg.record_cured(t(8), "fedr");
        assert_eq!(verify_registry(&reg), vec![]);
    }

    #[test]
    fn ready_without_restart_is_flagged() {
        let mut clock = VectorClock::new();
        clock.tick("a");
        let events = vec![event(1, "a", EpisodeStage::Ready, "set=a")];
        let violations = verify(&events, &[clock]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("without a restart"));
    }

    #[test]
    fn stale_clock_attribution_is_flagged() {
        let mut c1 = VectorClock::new();
        c1.tick("a");
        let mut c2 = c1.clone();
        c2.tick("a");
        let events = vec![
            event(1, "a", EpisodeStage::Restarting, "attempt=0 set=a"),
            event(2, "a", EpisodeStage::Ready, "set=a"),
        ];
        // The second event reuses the *older* snapshot: stale attribution.
        let violations = verify(&events, &[c2, c1]);
        assert!(
            violations.iter().any(|v| v.message.contains("stale-epoch")),
            "{violations:?}"
        );
    }

    #[test]
    fn cured_after_merge_away_is_flagged() {
        let mut c1 = VectorClock::new();
        c1.tick("b");
        let mut c2 = c1.clone();
        c2.tick("b");
        let events = vec![
            event(1, "b", EpisodeStage::Merged, "into=a"),
            event(2, "b", EpisodeStage::Cured, ""),
        ];
        let violations = verify(&events, &[c1, c2]);
        assert!(
            violations.iter().any(|v| v.message.contains("merged away")),
            "{violations:?}"
        );
    }

    #[test]
    fn merge_not_preceding_absorbing_restart_is_flagged() {
        // b merges into a, but a's restart clock does not dominate the merge
        // clock — the "child ready before merged parent began restarting"
        // family of bugs.
        let mut merge_clock = VectorClock::new();
        merge_clock.tick("b");
        let mut restart_clock = VectorClock::new();
        restart_clock.tick("a");
        let events = vec![
            event(1, "b", EpisodeStage::Merged, "into=a"),
            event(2, "a", EpisodeStage::Restarting, "attempt=0 set=a+b"),
        ];
        let violations = verify(&events, &[merge_clock, restart_clock]);
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("does not causally follow the merge")),
            "{violations:?}"
        );
    }

    #[test]
    fn time_running_backwards_is_flagged() {
        let mut c1 = VectorClock::new();
        c1.tick("a");
        let mut c2 = c1.clone();
        c2.tick("a");
        let events = vec![
            event(5, "a", EpisodeStage::Restarting, "attempt=0 set=a"),
            event(4, "a", EpisodeStage::Ready, "set=a"),
        ];
        let violations = verify(&events, &[c1, c2]);
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("ran backwards")),
            "{violations:?}"
        );
    }

    #[test]
    fn clock_stream_length_mismatch_is_flagged() {
        let events = vec![event(1, "a", EpisodeStage::Injected, "kill")];
        let violations = verify(&events, &[]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("out of step"));
    }

    #[test]
    fn disabled_registry_verifies_trivially() {
        let mut reg = Registry::disabled();
        reg.record_injected(t(1), "pbcom", "kill");
        assert!(verify_registry(&reg).is_empty());
    }
}

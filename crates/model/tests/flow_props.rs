#![allow(clippy::disallowed_methods)]
//! Property suites for rr-flow's static dependence analysis and the
//! partial-order reduction it feeds.
//!
//! Suite (a) checks the *analysis*: over every paper tree × scenario
//! flavour × fault set, the action-dependence matrix must be square,
//! symmetric with a true diagonal (an action always depends on itself —
//! reflexive safety is what keeps the ample construction sound), and the
//! fault-interference graph must be symmetric too. A `por-assume` override
//! must break exactly that shape — one-way — which is what RRL953 detects.
//!
//! Suite (b) checks the *reduction*: over every tree × oracle × mutation
//! flavour, exploring with the ample sets on and off must produce the same
//! verdict — clean stays clean, every seeded violation is still found, and
//! (thanks to the checker's re-minimization pass) the counterexample is
//! byte-identical. This differential parity is the soundness evidence for
//! the effect-equivalence ample classes whose formal C1 argument the epoch
//! rollover breaks (see DESIGN.md §16).

use mercury::station::TreeVariant;
use rr_model::{analyze, check, scenario, CheckConfig, Model};

const TREES: [TreeVariant; 5] = TreeVariant::ALL;

/// Fault-set fragments valid on every tree variant (mbus, ses, str and rtu
/// keep their own names in both the split and unsplit component sets).
const FAULT_SETS: [&str; 5] = [
    "fault rtu\n",
    "fault rtu\nfault ses\n",
    "fault ses\nfault str\n",
    "fault rtu\nfault ses\nfault mbus\n",
    "fault str cures ses str\nfault rtu\n",
];

const FLAVOURS: [&str; 4] = ["", "rehydrate\n", "admission\n", "oracle naive\n"];

fn model_for(variant: TreeVariant, text: &str) -> Model {
    let tree = variant.tree().expect("paper tree builds");
    Model::new(tree, &scenario::parse(text).expect("scenario parses")).expect("model builds")
}

#[test]
fn dependence_is_square_symmetric_and_reflexive_on_every_tree_and_flavour() {
    let mut cases = 0;
    for variant in TREES {
        for flavour in FLAVOURS {
            for faults in FAULT_SETS {
                let text = format!("tree {variant}\n{flavour}{faults}");
                let report = analyze(&model_for(variant, &text));
                let n = report.templates.len();
                assert_eq!(report.dependent.len(), n, "{text}: matrix not square");
                for row in &report.dependent {
                    assert_eq!(row.len(), n, "{text}: ragged matrix row");
                }
                for i in 0..n {
                    assert!(
                        report.dependent[i][i],
                        "{text}: action {} does not depend on itself",
                        report.templates[i]
                    );
                    for j in 0..n {
                        assert_eq!(
                            report.dependent[i][j], report.dependent[j][i],
                            "{text}: dependence asymmetric between {} and {}",
                            report.templates[i], report.templates[j]
                        );
                    }
                }
                let f = report.faults.len();
                assert_eq!(report.fault_interference.len(), f);
                for i in 0..f {
                    assert!(report.fault_interference[i][i]);
                    for j in 0..f {
                        assert_eq!(
                            report.fault_interference[i][j],
                            report.fault_interference[j][i]
                        );
                    }
                }
                cases += 1;
            }
        }
    }
    assert!(cases >= 100, "expected at least 100 cases, ran {cases}");
}

#[test]
fn por_assume_override_breaks_symmetry_one_way_only() {
    for variant in TREES {
        let text = format!(
            "tree {variant}\nadmission\nfault rtu\nfault ses\npor-assume suspects-independent\n"
        );
        let report = analyze(&model_for(variant, &text));
        let asymmetric = (0..report.templates.len()).any(|i| {
            (0..report.templates.len()).any(|j| report.dependent[i][j] != report.dependent[j][i])
        });
        assert!(
            asymmetric,
            "tree {variant}: the unsound override left the matrix symmetric"
        );
    }
}

/// Mutation flavours with the scenario directives they require to be
/// expressible at all (a starved drain needs the admission controller, a
/// stale rehydration needs the store fast path).
const MUTATIONS: [(&str, &str); 5] = [
    ("", ""),
    ("mutate drop-report\n", ""),
    ("mutate bypass-planner\n", ""),
    ("mutate starve-deferred\n", "admission\n"),
    ("mutate stale-rehydrate\n", "rehydrate\n"),
];

#[test]
fn reduced_and_full_exploration_agree_on_every_verdict() {
    let cfg = |por| CheckConfig {
        max_depth: 8,
        state_budget: 500_000,
        por,
    };
    let mut cases = 0;
    let mut violations = 0;
    for variant in TREES {
        for oracle in ["", "oracle naive\n"] {
            for (mutation, needs) in MUTATIONS {
                for faults in ["fault rtu\n", "fault rtu\nfault ses\n"] {
                    let text = format!("tree {variant}\n{oracle}{needs}{faults}{mutation}");
                    let m = model_for(variant, &text);
                    let full = check(&m, &cfg(false)).expect("full exploration fits budget");
                    let reduced = check(&m, &cfg(true)).expect("reduced exploration fits budget");
                    assert_eq!(
                        full.violation, reduced.violation,
                        "{text}: verdict drift between full and reduced exploration"
                    );
                    assert!(
                        reduced.states_explored <= full.states_explored,
                        "{text}: reduction explored more states than full"
                    );
                    if mutation.is_empty() {
                        assert!(full.violation.is_none(), "{text}: clean scenario rejected");
                    } else {
                        assert!(
                            full.violation.is_some(),
                            "{text}: seeded mutation not rejected"
                        );
                        violations += 1;
                    }
                    cases += 1;
                }
            }
        }
    }
    assert!(
        cases >= 96,
        "expected at least 96 parity cases, ran {cases}"
    );
    assert!(
        violations >= 60,
        "expected mutations rejected, got {violations}"
    );
}

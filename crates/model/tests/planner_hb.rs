#![allow(clippy::disallowed_methods)]
//! Property: every telemetry episode stream the planner produces passes the
//! happens-before verifier — in batch (parallel planner) and serial mode.
//!
//! The generator drives the real [`Recoverer`] with random suspicion batches
//! over random trees and records telemetry **exactly** the way `mercury`'s
//! REC does (merges for the non-owner origins first, then the plan, then the
//! restart, then per-component readies, then the cure), so the property
//! covers the wiring the simulator uses, not a toy recorder.

use rr_core::oracle::Failure;
use rr_core::policy::RestartPolicy;
use rr_core::recoverer::{Recoverer, RecoveryDecision};
use rr_core::tree::{RestartTree, TreeSpec};
use rr_core::PerfectOracle;
use rr_sim::telemetry::Registry;
use rr_sim::{check, SimRng, SimTime};

use rr_model::hb;

fn tree_flat() -> RestartTree {
    TreeSpec::cell("mercury")
        .with_child(TreeSpec::cell("R_a").with_component("a"))
        .with_child(TreeSpec::cell("R_b").with_component("b"))
        .with_child(TreeSpec::cell("R_c").with_component("c"))
        .build()
        .unwrap()
}

fn tree_nested() -> RestartTree {
    TreeSpec::cell("mercury")
        .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
        .with_child(
            TreeSpec::cell("R_[fedr,pbcom]")
                .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
                .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom")),
        )
        .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
        .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
        .build()
        .unwrap()
}

fn tree_deep() -> RestartTree {
    TreeSpec::cell("root")
        .with_child(
            TreeSpec::cell("mid")
                .with_child(TreeSpec::cell("R_x").with_component("x"))
                .with_child(
                    TreeSpec::cell("low")
                        .with_child(TreeSpec::cell("R_y").with_component("y"))
                        .with_child(TreeSpec::cell("R_z").with_component("z")),
                ),
        )
        .with_child(TreeSpec::cell("R_w").with_component("w"))
        .build()
        .unwrap()
}

/// Records a batch of decisions the way `mercury::rec::apply_decision` does.
fn record_decisions(
    reg: &mut Registry,
    decisions: &[RecoveryDecision],
    now: SimTime,
) -> Vec<String> {
    let mut owners = Vec::new();
    for decision in decisions {
        match decision {
            RecoveryDecision::Restart {
                components,
                attempt,
                origins,
                ..
            } => {
                let owner = origins[0].clone();
                for origin in &origins[1..] {
                    reg.record_merged(now, origin, &owner);
                }
                reg.record_planned(now, &owner, origins);
                reg.record_restarting(now, &owner, components, origins, *attempt);
                owners.push(owner);
            }
            RecoveryDecision::AlreadyRecovering { .. } => {}
            RecoveryDecision::GiveUp { component, reason } => {
                reg.record_quarantined(now, component, &format!("{reason:?}"));
            }
        }
    }
    owners
}

/// Drives random suspicion rounds through the recoverer, recording
/// telemetry; the recorded stream must verify causally clean.
fn drive(rng: &mut SimRng, serial: bool) {
    let tree = match rng.next_below(3) {
        0 => tree_flat(),
        1 => tree_nested(),
        _ => tree_deep(),
    };
    let components = tree.components();
    let mut rec = Recoverer::new(tree.clone(), PerfectOracle::new(), RestartPolicy::new());
    let mut reg = Registry::new();
    let mut tick: u64 = 0;
    let mut now = || {
        tick += 1;
        SimTime::from_secs(tick)
    };

    let rounds = 1 + rng.next_below(3);
    for _ in 0..rounds {
        // A random batch of distinct suspects, some with correlated cures.
        let mut pool = components.clone();
        rng.shuffle(&mut pool);
        let batch_len = 1 + rng.next_below(pool.len().min(4) as u64) as usize;
        let mut failures = Vec::new();
        for comp in pool.iter().take(batch_len) {
            let mut cure = vec![comp.clone()];
            if rng.chance(0.4) {
                if let Some(extra) = rng.choose(&components).cloned() {
                    if !cure.contains(&extra) {
                        cure.push(extra);
                    }
                }
            }
            failures.push(Failure::correlated(comp.clone(), cure));
        }
        for f in &failures {
            reg.record_suspected(now(), &f.component);
        }
        let decide_at = now();
        let decisions: Vec<RecoveryDecision> = if serial {
            failures
                .into_iter()
                .map(|f| rec.on_failure(f, decide_at))
                .collect()
        } else {
            rec.on_failures(failures, decide_at)
        };
        record_decisions(&mut reg, &decisions, decide_at);

        // Complete every in-flight restart: members report ready, then the
        // cure is (usually) confirmed. Occasionally leave the episode open
        // so the next round escalates it.
        for ep in rec.protocol_snapshot() {
            if !ep.in_flight {
                continue;
            }
            let cell = ep.cell.unwrap();
            for member in tree.components_under(cell) {
                reg.record_component_ready(now(), &member);
            }
            rec.on_restart_complete(&ep.owner, now());
            if rng.chance(0.7) {
                reg.record_cured(now(), &ep.owner);
                rec.on_cured(&ep.owner, now());
            }
        }
    }

    let violations = hb::verify_registry(&reg);
    assert!(
        violations.is_empty(),
        "planner stream (serial={serial}) violated happens-before: {violations:?}\n\
         events: {:#?}",
        reg.events()
    );
}

#[test]
fn parallel_planner_streams_pass_the_hb_verifier() {
    check::run("parallel planner streams are causally clean", 96, |rng| {
        drive(rng, false);
    });
}

#[test]
fn serial_planner_streams_pass_the_hb_verifier() {
    check::run("serial planner streams are causally clean", 96, |rng| {
        drive(rng, true);
    });
}

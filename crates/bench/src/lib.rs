//! # rr-bench — benchmark support
//!
//! The benches live in `benches/` (plain `fn main` binaries timed by the
//! in-tree [`harness`] — the build must resolve offline, so Criterion is
//! not available):
//!
//! * `tables` — one group per measured table (Table 1, Table 2, Table 4):
//!   each iteration is a full station trial; the group prints the reproduced
//!   rows (paper vs measured) before timing.
//! * `figures` — tree construction, the paper's transformation pipeline and
//!   the ASCII figure renders.
//! * `ablations` — contention sweep, oracle error sweep, optimizer search,
//!   learning-oracle episodes.
//! * `micro` — kernel throughput: simulator events, XML codec, RNG, tree
//!   queries.
//! * `parallel` — sequential vs parallel recovery of correlated faults
//!   (the dependency-aware scheduler's headline table).
//!
//! This library crate hosts shared helpers and the timing harness.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![warn(missing_docs)]

pub mod harness;

use mercury::config::StationConfig;
use mercury::measure::measure_recovery;
use mercury::station::{Station, TreeVariant};
use rr_core::oracle::Oracle;
use rr_core::{FaultyOracle, PerfectOracle};
use rr_sim::{SimDuration, SimRng};

/// Which oracle to use for a bench trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BenchOracle {
    /// The minimal restart policy.
    Perfect,
    /// §4.4 faulty oracle with the given error rate.
    Faulty(f64),
}

impl BenchOracle {
    fn build(self, seed: u64) -> Box<dyn Oracle> {
        match self {
            BenchOracle::Perfect => Box::new(PerfectOracle::new()),
            BenchOracle::Faulty(p) => Box::new(FaultyOracle::new(p, SimRng::new(seed))),
        }
    }
}

/// Runs one complete recovery trial (cold start → settle → inject → measure)
/// and returns the recovery time in seconds. This is the unit of work the
/// table benches time.
pub fn recovery_trial(
    variant: TreeVariant,
    oracle: BenchOracle,
    component: &str,
    correlated_pbcom: bool,
    seed: u64,
) -> f64 {
    let mut station = Station::new(
        StationConfig::paper(),
        variant,
        oracle.build(seed ^ 0xBEEF),
        seed,
    )
    .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
    station.warm_up();
    let mut phase = SimRng::new(seed ^ 0xA5A5);
    station.randomize_injection_phase(&mut phase);
    let injected = if correlated_pbcom {
        station
            .inject_correlated_pbcom()
            .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"))
    } else {
        station
            .inject_kill(component)
            .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"))
    };
    station.run_for(SimDuration::from_secs(150));
    measure_recovery(station.trace(), component, injected)
        .unwrap_or_else(|e| panic!("{}: {e:?}", "trial recovers"))
        .recovery_s()
}

/// Runs one correlated-fault trial: kills `a` and `b` at the same instant
/// and returns the group recovery time in seconds — the time until every
/// injected component is functionally ready for good. `serial` selects the
/// sequential baseline scheduler instead of the parallel one.
pub fn correlated_group_recovery(
    variant: TreeVariant,
    a: &str,
    b: &str,
    serial: bool,
    seed: u64,
) -> f64 {
    let mut cfg = StationConfig::paper();
    cfg.serial_recovery = serial;
    let mut station = Station::new(
        cfg,
        variant,
        BenchOracle::Perfect.build(seed ^ 0xBEEF),
        seed,
    )
    .unwrap_or_else(|e| panic!("{}: {e:?}", "valid station"));
    station.warm_up();
    let mut phase = SimRng::new(seed ^ 0xA5A5);
    station.randomize_injection_phase(&mut phase);
    let injected = station
        .inject_kill(a)
        .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
    station
        .inject_kill(b)
        .unwrap_or_else(|e| panic!("{}: {e:?}", "known component"));
    station.run_for(SimDuration::from_secs(200));
    let mut group = 0.0f64;
    for comp in [a, b] {
        let ready = station
            .trace()
            .mark_times(&format!("ready:{comp}"))
            .filter(|&t| t >= injected)
            .last()
            .unwrap_or_else(|| panic!("injected component became ready again"));
        group = group.max(ready.saturating_since(injected).as_secs_f64());
    }
    group
}

/// Mean recovery over `n` trials (used to print reproduced rows in benches).
pub fn mean_recovery(
    variant: TreeVariant,
    oracle: BenchOracle,
    component: &str,
    correlated_pbcom: bool,
    n: usize,
    seed: u64,
) -> f64 {
    (0..n)
        .map(|i| {
            recovery_trial(
                variant,
                oracle,
                component,
                correlated_pbcom,
                seed + i as u64,
            )
        })
        .sum::<f64>()
        / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercury::config::names;

    #[test]
    fn recovery_trial_runs_end_to_end() {
        let r = recovery_trial(TreeVariant::II, BenchOracle::Perfect, names::RTU, false, 7);
        assert!((3.0..10.0).contains(&r), "{r}");
    }
}

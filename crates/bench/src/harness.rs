//! A small Criterion-free timing harness (the workspace builds offline and
//! carries no external dependencies).
//!
//! Each bench target is a plain `fn main` that creates a [`Runner`] and
//! registers closures with [`Runner::bench`] (wall time per iteration) or
//! [`Runner::bench_events`] (also reports throughput as events/sec).
//! Invocation matches what cargo passes to `harness = false` targets:
//!
//! * `cargo bench -p rr-bench` — full timed run;
//! * `cargo bench -p rr-bench -- <substring>` — only matching benchmarks;
//! * `--test` (from `cargo test --benches`) — run every closure once,
//!   untimed, as a smoke test;
//! * `-- --json PATH` — also write the results as JSON (the
//!   `BENCH_micro.json` schema: see the README "Benchmarks" section);
//! * `-- --baseline PATH` — after the run, compare the **gated** records
//!   (the derived wheel-vs-heap speedups from [`Runner::record_speedup`])
//!   against a previously written JSON file and **exit nonzero** if any
//!   regressed by more than [`REGRESSION_TOLERANCE`] (the CI bench-smoke
//!   gate). Absolute events/sec is reported but never gated: it drifts
//!   20-40% with machine load, while the in-run speedup ratios cancel the
//!   drift.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Hard cap on iterations, so cheap closures do not run forever.
const MAX_ITERS: u64 = 100_000;
/// Allowed events/sec regression versus the baseline before
/// [`Runner::finish`] fails (0.20 = 20%, the CI gate from the PR issue).
pub const REGRESSION_TOLERANCE: f64 = 0.20;

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (`group/sub/name`).
    pub name: String,
    /// Mean wall time per iteration in nanoseconds.
    pub ns_per_iter: f64,
    /// Timed iterations contributing to the mean.
    pub iters: u64,
    /// Work items processed per iteration, when the benchmark declared a
    /// throughput denominator via [`Runner::bench_events`].
    pub events_per_iter: Option<u64>,
    /// Whether the regression gate compares this record. Only the derived
    /// speedup records from [`Runner::record_speedup`] are gated: absolute
    /// events/sec drifts with machine load, while an in-run time ratio
    /// cancels the drift.
    pub gated: bool,
}

impl BenchResult {
    /// Throughput in events per second, when a denominator was declared.
    pub fn events_per_sec(&self) -> Option<f64> {
        self.events_per_iter
            .map(|n| n as f64 / (self.ns_per_iter / 1e9))
    }
}

/// Collects and runs registered benchmarks according to CLI arguments.
#[derive(Debug)]
pub struct Runner {
    filter: Option<String>,
    smoke: bool,
    json_path: Option<String>,
    baseline_path: Option<String>,
    results: Vec<BenchResult>,
}

impl Runner {
    /// Builds a runner from `std::env::args`: the first non-flag argument is
    /// a substring filter; `--test` selects untimed smoke mode; `--json PATH`
    /// and `--baseline PATH` configure result emission and the regression
    /// gate (see the module docs).
    pub fn from_env() -> Runner {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut smoke = false;
        let mut json_path = None;
        let mut baseline_path = None;
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if arg == "--test" {
                smoke = true;
            } else if arg == "--json" {
                json_path = args.get(i + 1).cloned();
                i += 1;
            } else if let Some(p) = arg.strip_prefix("--json=") {
                json_path = Some(p.to_string());
            } else if arg == "--baseline" {
                baseline_path = args.get(i + 1).cloned();
                i += 1;
            } else if let Some(p) = arg.strip_prefix("--baseline=") {
                baseline_path = Some(p.to_string());
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg.clone());
            }
            i += 1;
        }
        Runner {
            filter,
            smoke,
            json_path,
            baseline_path,
            results: Vec::new(),
        }
    }

    /// Runs one benchmark: warm-up, iteration-count calibration, then a
    /// timed batch, reporting mean wall time per iteration.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.run_one(name, None, f);
    }

    /// Like [`Runner::bench`], but the closure processes `events_per_iter`
    /// work items per call, so the report (and the JSON record) includes
    /// throughput in events/sec — the unit the regression gate compares.
    pub fn bench_events<R>(&mut self, name: &str, events_per_iter: u64, f: impl FnMut() -> R) {
        self.run_one(name, Some(events_per_iter), f);
    }

    fn run_one<R>(&mut self, name: &str, events_per_iter: Option<u64>, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.smoke {
            std::hint::black_box(f());
            println!("{name}: ok (smoke)");
            return;
        }
        // Warm up and estimate a single iteration.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let total = start.elapsed();
        let ns_per_iter = total.as_nanos() as f64 / iters as f64;
        let result = BenchResult {
            name: name.to_string(),
            ns_per_iter,
            iters,
            events_per_iter,
            gated: false,
        };
        match result.events_per_sec() {
            Some(eps) => println!(
                "{name}: {} ({iters} iters, {} events/sec)",
                format_ns(ns_per_iter),
                format_rate(eps)
            ),
            None => println!("{name}: {} ({iters} iters)", format_ns(ns_per_iter)),
        }
        self.results.push(result);
    }

    /// Records a derived benchmark whose "events/sec" is the speedup of
    /// `fast` over `slow` (wall-time ratio, scaled ×1000 so the integer
    /// JSON field keeps three decimal places).
    ///
    /// Both inputs are measured in the same process seconds apart, so the
    /// ratio cancels machine-speed drift that makes absolute events/sec
    /// ungateable on shared hardware — this is what the CI bench-smoke
    /// step's regression gate compares. Skipped silently if either input
    /// did not run (e.g. it was excluded by the filter).
    pub fn record_speedup(&mut self, name: &str, fast: &str, slow: &str) {
        if self.smoke {
            return;
        }
        let ns = |n: &str| {
            self.results
                .iter()
                .find(|r| r.name == n)
                .map(|r| r.ns_per_iter)
        };
        let (Some(fast_ns), Some(slow_ns)) = (ns(fast), ns(slow)) else {
            return;
        };
        let speedup = slow_ns / fast_ns;
        println!("{name}: {speedup:.2}x ({slow} / {fast})");
        self.results.push(BenchResult {
            name: name.to_string(),
            ns_per_iter: 1e9,
            iters: 1,
            events_per_iter: Some((speedup * 1000.0).round() as u64),
            gated: true,
        });
    }

    /// Records a raw deterministic counter (e.g. a model checker's distinct
    /// state count) as an untimed record: with the 1 s pseudo-iteration,
    /// `events_per_sec` equals `count`, so committed BENCH files expose the
    /// value directly without rerunning the workload.
    pub fn record_count(&mut self, name: &str, count: u64) {
        if self.smoke {
            return;
        }
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        println!("{name}: {count}");
        self.results.push(BenchResult {
            name: name.to_string(),
            ns_per_iter: 1e9,
            iters: 1,
            events_per_iter: Some(count),
            gated: false,
        });
    }

    /// Records a derived **gated** record whose "events/sec" is
    /// `numerator / denominator` scaled ×1000 (three decimal places survive
    /// the integer JSON field). Unlike wall-time speedups this needs no
    /// drift cancelling at all when both counts are deterministic (the
    /// model checker's full-vs-reduced distinct-state ratio is), which is
    /// what makes the ratio safely gateable in CI.
    pub fn record_ratio(&mut self, name: &str, numerator: u64, denominator: u64) {
        if self.smoke || denominator == 0 {
            return;
        }
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let ratio = numerator as f64 / denominator as f64;
        println!("{name}: {ratio:.2}x ({numerator} / {denominator})");
        self.results.push(BenchResult {
            name: name.to_string(),
            ns_per_iter: 1e9,
            iters: 1,
            events_per_iter: Some((ratio * 1000.0).round() as u64),
            gated: true,
        });
    }

    /// Completed measurements so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes the JSON report (if `--json` was given) and applies the
    /// baseline regression gate (if `--baseline` was given). Call at the
    /// end of `main`; the process exits nonzero on a regression beyond
    /// [`REGRESSION_TOLERANCE`] so CI fails loudly.
    pub fn finish(&self) {
        if self.smoke {
            return;
        }
        if let Some(path) = &self.json_path {
            let json = results_to_json(&self.results);
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("bench: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("bench: wrote {path}");
        }
        if let Some(path) = &self.baseline_path {
            let baseline = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bench: cannot read baseline {path}: {e}");
                    std::process::exit(1);
                }
            };
            if !self.compare_against(&parse_baseline(&baseline)) {
                std::process::exit(1);
            }
        }
    }

    /// Compares this run's events/sec to `baseline` `(name, events_per_sec)`
    /// pairs; returns `false` (after printing the offenders) if any shared
    /// benchmark regressed past the tolerance.
    fn compare_against(&self, baseline: &[(String, f64)]) -> bool {
        let mut ok = true;
        for (name, base_eps) in baseline {
            let Some(current) = self.results.iter().find(|r| &r.name == name) else {
                continue; // filtered out of this run: nothing to compare
            };
            let Some(eps) = current.events_per_sec() else {
                continue;
            };
            let ratio = eps / base_eps;
            let verdict = if ratio < 1.0 - REGRESSION_TOLERANCE {
                ok = false;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "bench-gate {name}: {} vs baseline {} ({:+.1}%) {verdict}",
                format_rate(eps),
                format_rate(*base_eps),
                (ratio - 1.0) * 100.0
            );
        }
        if !ok {
            eprintln!(
                "bench: events/sec regression beyond {:.0}% tolerance",
                REGRESSION_TOLERANCE * 100.0
            );
        }
        ok
    }
}

/// Serializes results in the committed `BENCH_micro.json` schema.
fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"rr-bench/v1\",\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"name\": \"{}\", ", r.name));
        out.push_str(&format!("\"ns_per_iter\": {:.1}, ", r.ns_per_iter));
        out.push_str(&format!("\"iters\": {}", r.iters));
        if let Some(n) = r.events_per_iter {
            out.push_str(&format!(", \"events_per_iter\": {n}"));
        }
        if let Some(eps) = r.events_per_sec() {
            out.push_str(&format!(", \"events_per_sec\": {eps:.0}"));
        }
        if r.gated {
            out.push_str(", \"gated\": true");
        }
        out.push('}');
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `(name, events_per_sec)` pairs for **gated** records from a
/// baseline file previously written by [`results_to_json`]. This is
/// deliberately not a general JSON parser — the harness only ever reads
/// files it wrote itself, one benchmark object per line.
fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        if !line.contains("\"gated\": true") {
            continue;
        }
        let Some(name) = extract_str(line, "\"name\": \"") else {
            continue;
        };
        if let Some(eps) = extract_num(line, "\"events_per_sec\": ") {
            out.push((name.to_string(), eps));
        }
    }
    out
}

fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(&rest[..rest.find('"')?])
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.0} ns/iter")
    }
}

fn format_rate(eps: f64) -> String {
    if eps >= 1e9 {
        format!("{:.2}G", eps / 1e9)
    } else if eps >= 1e6 {
        format!("{:.2}M", eps / 1e6)
    } else if eps >= 1e3 {
        format!("{:.2}k", eps / 1e3)
    } else {
        format!("{eps:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_runner(filter: Option<&str>, smoke: bool) -> Runner {
        Runner {
            filter: filter.map(String::from),
            smoke,
            json_path: None,
            baseline_path: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut r = test_runner(None, true);
        let mut n = 0u32;
        r.bench("unit/counting", || n += 1);
        assert_eq!(n, 1, "smoke mode runs exactly once");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut r = test_runner(Some("match-me"), true);
        let mut hits = 0u32;
        r.bench("other/bench", || hits += 100);
        r.bench("group/match-me", || hits += 1);
        assert_eq!(hits, 1);
    }

    #[test]
    fn format_scales_units() {
        assert!(format_ns(12.0).ends_with("ns/iter"));
        assert!(format_ns(12_000.0).ends_with("µs/iter"));
        assert!(format_ns(12_000_000.0).ends_with("ms/iter"));
        assert!(format_ns(2e9).ends_with("s/iter"));
        assert_eq!(format_rate(2_500_000.0), "2.50M");
        assert_eq!(format_rate(999.0), "999");
    }

    #[test]
    fn events_per_sec_derives_from_denominator() {
        let r = BenchResult {
            name: "x".into(),
            ns_per_iter: 1_000_000.0, // 1 ms
            iters: 10,
            events_per_iter: Some(1000),
            gated: false,
        };
        let eps = r.events_per_sec().unwrap_or(0.0);
        assert!((eps - 1_000_000.0).abs() < 1.0, "1k events per ms = 1M/s");
    }

    #[test]
    fn json_round_trips_through_baseline_parser() {
        let results = vec![
            BenchResult {
                name: "micro/queue/wheel".into(),
                ns_per_iter: 1234.5,
                iters: 100,
                events_per_iter: Some(1000),
                gated: true,
            },
            BenchResult {
                name: "micro/plain".into(),
                ns_per_iter: 99.0,
                iters: 7,
                events_per_iter: None,
                gated: false,
            },
        ];
        let json = results_to_json(&results);
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 1, "only gated records are compared");
        assert_eq!(parsed[0].0, "micro/queue/wheel");
        let want = results[0].events_per_sec().unwrap_or(0.0);
        assert!((parsed[0].1 - want).abs() / want < 1e-3);
    }

    #[test]
    fn speedup_records_scaled_time_ratio() {
        let mut r = test_runner(None, false);
        for (name, ns) in [("q/fast", 1_000.0), ("q/slow", 12_345.0)] {
            r.results.push(BenchResult {
                name: name.into(),
                ns_per_iter: ns,
                iters: 1,
                events_per_iter: None,
                gated: false,
            });
        }
        r.record_speedup("q/speedup", "q/fast", "q/slow");
        r.record_speedup("q/missing", "q/fast", "q/not-run");
        let derived = r.results.iter().find(|x| x.name == "q/speedup");
        let ratio = derived.and_then(|d| d.events_per_sec()).unwrap_or(0.0);
        assert!((ratio - 12_345.0).abs() < 1.0, "12.345x scaled by 1000");
        assert!(!r.results.iter().any(|x| x.name == "q/missing"));
    }

    #[test]
    fn count_and_ratio_records_expose_values_as_events_per_sec() {
        let mut r = test_runner(None, false);
        r.record_count("model/tree4/pair/full_distinct", 120_000);
        r.record_ratio("model/tree4/pair/reduction_ratio", 120_000, 20_000);
        r.record_ratio("model/zero", 1, 0);
        let count = r
            .results
            .iter()
            .find(|x| x.name == "model/tree4/pair/full_distinct")
            .and_then(|x| x.events_per_sec())
            .unwrap_or(0.0);
        assert!((count - 120_000.0).abs() < 1.0);
        let ratio = r
            .results
            .iter()
            .find(|x| x.name == "model/tree4/pair/reduction_ratio")
            .expect("ratio recorded");
        assert!(ratio.gated, "ratios are what the CI gate compares");
        assert!((ratio.events_per_sec().unwrap_or(0.0) - 6000.0).abs() < 1.0);
        assert!(!r.results.iter().any(|x| x.name == "model/zero"));
    }

    #[test]
    fn regression_gate_trips_past_tolerance() {
        let mut r = test_runner(None, false);
        r.results.push(BenchResult {
            name: "micro/q".into(),
            ns_per_iter: 1000.0,
            iters: 1,
            events_per_iter: Some(1000), // 1G events/sec
            gated: true,
        });
        let fine = vec![("micro/q".to_string(), 1.05e9)]; // -4.7%: within tolerance
        assert!(r.compare_against(&fine));
        let too_fast = vec![("micro/q".to_string(), 1.5e9)]; // -33%: regression
        assert!(!r.compare_against(&too_fast));
        let unknown = vec![("micro/other".to_string(), 1e9)]; // not in this run
        assert!(r.compare_against(&unknown));
    }
}

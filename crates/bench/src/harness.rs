//! A small Criterion-free timing harness (the workspace builds offline and
//! carries no external dependencies).
//!
//! Each bench target is a plain `fn main` that creates a [`Runner`] and
//! registers closures with [`Runner::bench`]. Invocation matches what cargo
//! passes to `harness = false` targets:
//!
//! * `cargo bench -p rr-bench` — full timed run;
//! * `cargo bench -p rr-bench -- <substring>` — only matching benchmarks;
//! * `--test` (from `cargo test --benches`) — run every closure once,
//!   untimed, as a smoke test.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Hard cap on iterations, so cheap closures do not run forever.
const MAX_ITERS: u64 = 100_000;

/// Collects and runs registered benchmarks according to CLI arguments.
#[derive(Debug)]
pub struct Runner {
    filter: Option<String>,
    smoke: bool,
}

impl Runner {
    /// Builds a runner from `std::env::args`: the first non-flag argument is
    /// a substring filter; `--test` selects untimed smoke mode.
    pub fn from_env() -> Runner {
        let mut filter = None;
        let mut smoke = false;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                smoke = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Runner { filter, smoke }
    }

    /// Runs one benchmark: warm-up, iteration-count calibration, then a
    /// timed batch, reporting mean wall time per iteration.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.smoke {
            std::hint::black_box(f());
            println!("{name}: ok (smoke)");
            return;
        }
        // Warm up and estimate a single iteration.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let total = start.elapsed();
        let per_iter = total.as_nanos() as f64 / iters as f64;
        println!("{name}: {} ({iters} iters)", format_ns(per_iter));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.0} ns/iter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut r = Runner {
            filter: None,
            smoke: true,
        };
        let mut n = 0u32;
        r.bench("unit/counting", || n += 1);
        assert_eq!(n, 1, "smoke mode runs exactly once");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut r = Runner {
            filter: Some("match-me".into()),
            smoke: true,
        };
        let mut hits = 0u32;
        r.bench("other/bench", || hits += 100);
        r.bench("group/match-me", || hits += 1);
        assert_eq!(hits, 1);
    }

    #[test]
    fn format_scales_units() {
        assert!(format_ns(12.0).ends_with("ns/iter"));
        assert!(format_ns(12_000.0).ends_with("µs/iter"));
        assert!(format_ns(12_000_000.0).ends_with("ms/iter"));
        assert!(format_ns(2e9).ends_with("s/iter"));
    }
}

#![allow(clippy::disallowed_methods)]
//! Model-checker benchmarks for rr-flow's partial-order reduction: the
//! distinct-state reduction it buys on every paper tree, the wall time of a
//! reduced exploration, and how much deeper a fixed state budget reaches
//! with the ample sets on.
//!
//! The committed `BENCH_model.json` baseline pins the `reduction_ratio`
//! records (full ÷ reduced distinct states for the rtu+ses pair-fault audit
//! on trees I–V at the default depth). Both counts are deterministic, so
//! the gated ratio carries no machine-speed noise at all — any drift means
//! an ample class changed, and the CI bench-smoke step fails until the
//! baseline is regenerated deliberately (`-- --json BENCH_model.json`).

use mercury::station::TreeVariant;
use rr_bench::harness::Runner;
use rr_model::{check, scenario, CheckConfig, Model, DEFAULT_DEPTH, DEFAULT_STATE_BUDGET};
use std::hint::black_box;

/// The uniform pair-fault audit scenario: rtu and ses exist on every tree
/// variant, so the same fault set measures all five trees apples-to-apples.
fn pair_model(variant: TreeVariant) -> Model {
    let text = format!("tree {variant}\noracle perfect\nfault rtu\nfault ses\n");
    Model::new(
        variant.tree().expect("paper tree builds"),
        &scenario::parse(&text).expect("scenario parses"),
    )
    .expect("model builds")
}

fn cfg(por: bool) -> CheckConfig {
    CheckConfig {
        max_depth: DEFAULT_DEPTH,
        state_budget: DEFAULT_STATE_BUDGET,
        por,
    }
}

/// Distinct-state reduction per tree, plus a timed reduced exploration.
fn bench_reduction(r: &mut Runner) {
    for variant in TreeVariant::ALL {
        let model = pair_model(variant);
        let full = check(&model, &cfg(false)).expect("full exploration fits budget");
        let reduced = check(&model, &cfg(true)).expect("reduced exploration fits budget");
        assert!(
            full.violation.is_none() && reduced.violation.is_none(),
            "tree {variant}: the audit pair scenario must be clean"
        );
        r.record_count(
            &format!("model/tree-{variant}/pair/full_distinct"),
            full.distinct_states,
        );
        r.record_count(
            &format!("model/tree-{variant}/pair/reduced_distinct"),
            reduced.distinct_states,
        );
        r.record_ratio(
            &format!("model/tree-{variant}/pair/reduction_ratio"),
            full.distinct_states,
            reduced.distinct_states,
        );
        r.bench_events(
            &format!("model/tree-{variant}/pair/reduced_states"),
            reduced.states_explored,
            || {
                black_box(
                    check(&model, &cfg(true))
                        .expect("within budget")
                        .states_explored,
                )
            },
        );
    }
}

/// State budget for the depth probe: small enough that both searches
/// exhaust it in a couple of seconds, large enough that the iterative
/// deepening gets several bounds in before it trips.
const PROBE_BUDGET: u64 = 50_000;
/// Depth ceiling for the probe — far beyond what the budget admits.
const PROBE_DEPTH: usize = 64;

/// Deepest completed iteration within `budget`. On budget exhaustion the
/// checker's error names the bound that tripped (`"depth N: state budget
/// ..."`); the deepest *completed* bound is the one before it.
fn max_feasible_depth(model: &Model, por: bool, budget: u64) -> u64 {
    let probe = CheckConfig {
        max_depth: PROBE_DEPTH,
        state_budget: budget,
        por,
    };
    match check(model, &probe) {
        Ok(outcome) => outcome.depth as u64,
        Err(e) => {
            let exhausted: u64 = e
                .message
                .strip_prefix("depth ")
                .and_then(|rest| rest.split(':').next())
                .and_then(|n| n.parse().ok())
                .expect("budget error names its depth bound");
            exhausted.saturating_sub(1)
        }
    }
}

/// Depth-vs-budget probe: a three-fault overload scenario (admission
/// controller in the loop) on tree IV, asking how deep a fixed 50k-state
/// budget reaches with the reduction off and on. This is the measurement
/// behind raising `DEFAULT_DEPTH` from 13 to 16: the reduced search pays
/// for the extra depth out of the states the ample sets no longer visit.
fn bench_depth_probe(r: &mut Runner) {
    let text = "tree IV\noracle perfect\nadmission\nfault rtu\nfault ses\nfault mbus\n";
    let model = Model::new(
        TreeVariant::IV.tree().expect("paper tree builds"),
        &scenario::parse(text).expect("scenario parses"),
    )
    .expect("model builds");
    let full_depth = max_feasible_depth(&model, false, PROBE_BUDGET);
    let reduced_depth = max_feasible_depth(&model, true, PROBE_BUDGET);
    r.record_count("model/tree-IV/overload3/depth_at_50k_full", full_depth);
    r.record_count(
        "model/tree-IV/overload3/depth_at_50k_reduced",
        reduced_depth,
    );
    assert!(
        reduced_depth >= full_depth,
        "the reduction must never reach shallower than full exploration \
         ({reduced_depth} vs {full_depth})"
    );
}

fn main() {
    let mut r = Runner::from_env();
    bench_reduction(&mut r);
    bench_depth_probe(&mut r);
    r.finish();
}

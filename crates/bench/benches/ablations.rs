#![allow(clippy::disallowed_methods)]
//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! restart contention, oracle error rate, the automatic tree optimizer, and
//! the learning oracle.

use mercury::config::{names, StationConfig};
use mercury::station::TreeVariant;
use rr_bench::harness::Runner;
use rr_core::analysis::{expected_mode_recovery_s, expected_system_mttr_s, OracleQuality};
use rr_core::model::FailureMode;
use rr_core::optimize::{optimize_tree, OptimizerConfig};
use rr_core::TreeSpec;
use std::hint::black_box;

/// Contention sweep: how much of tree II's win is avoiding restart
/// contention vs avoiding the slowest component?
fn bench_contention(r: &mut Runner) {
    let cfg = StationConfig::paper();
    eprintln!(
        "\n[ablation/contention] tree I expected recovery as the quadratic coefficient varies:"
    );
    for q in [0.0, 0.006, 0.0119, 0.024, 0.048] {
        let mut cost = rr_core::SimpleCostModel::new(1.0, 2.0).with_contention(q);
        for (name, t) in &cfg.timing {
            cost = cost.with_boot(name.clone(), t.boot_mean_s);
        }
        let tree = TreeVariant::I.tree().expect("paper tree builds");
        let mode = FailureMode::solo("rtu", names::RTU, 1.0).unwrap();
        let rec = expected_mode_recovery_s(&tree, &mode, &cost, OracleQuality::Perfect).unwrap();
        eprintln!("[ablation/contention] q={q:<7} -> {rec:6.2}s (paper at q=0.0119: 24.75)");
    }
    let cost = cfg.cost_model();
    let tree = TreeVariant::I.tree().expect("paper tree builds");
    let mode = FailureMode::solo("rtu", names::RTU, 1.0).unwrap();
    r.bench("ablation/contention_eval", || {
        black_box(expected_mode_recovery_s(&tree, &mode, &cost, OracleQuality::Perfect).unwrap())
    });
}

/// Oracle error-rate sweep (the paper fixes 30% arbitrarily): where tree V
/// overtakes tree IV.
fn bench_oracle_sweep(r: &mut Runner) {
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    let mode =
        FailureMode::correlated("joint", names::PBCOM, [names::FEDR, names::PBCOM], 1.0).unwrap();
    let tree_iv = TreeVariant::IV.tree().expect("paper tree builds");
    let tree_v = TreeVariant::V.tree().expect("paper tree builds");
    eprintln!("\n[ablation/oracle] error rate -> expected pbcom-joint recovery (IV vs V):");
    for p in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let iv = expected_mode_recovery_s(
            &tree_iv,
            &mode,
            &cost,
            OracleQuality::Faulty { undershoot: p },
        )
        .unwrap();
        let v = expected_mode_recovery_s(
            &tree_v,
            &mode,
            &cost,
            OracleQuality::Faulty { undershoot: p },
        )
        .unwrap();
        eprintln!("[ablation/oracle] p={p:.1}: IV {iv:6.2}s  V {v:6.2}s");
    }
    for p in [0.0, 0.3] {
        r.bench(&format!("ablation/oracle/faulty_eval/{p}"), || {
            black_box(
                expected_mode_recovery_s(
                    &tree_iv,
                    &mode,
                    &cost,
                    OracleQuality::Faulty { undershoot: p },
                )
                .unwrap(),
            )
        });
    }
}

/// The automatic optimizer re-deriving the paper's trees (future work §7).
fn bench_optimizer(r: &mut Runner) {
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    let model = cfg.paper_failure_model();
    let start = TreeSpec::cell("mercury")
        .with_components(names::SPLIT)
        .build()
        .unwrap();
    let opt = optimize_tree(
        &start,
        &model,
        &cost,
        OracleQuality::Faulty { undershoot: 0.3 },
        OptimizerConfig::default(),
    )
    .unwrap();
    eprintln!(
        "\n[ablation/optimizer] derived tree (expected MTTR {:.2}s):\n{}",
        opt.expected_mttr_s,
        rr_core::render::render_tree(&opt.tree)
    );

    r.bench("ablation/optimizer/hill_climb_from_tree_i", || {
        black_box(
            optimize_tree(
                &start,
                &model,
                &cost,
                OracleQuality::Faulty { undershoot: 0.3 },
                OptimizerConfig::default(),
            )
            .unwrap()
            .expected_mttr_s,
        )
    });
    let tree = TreeVariant::V.tree().expect("paper tree builds");
    r.bench("ablation/optimizer/expected_system_mttr", || {
        black_box(expected_system_mttr_s(&tree, &model, &cost, OracleQuality::Perfect).unwrap())
    });
}

fn main() {
    let mut r = Runner::from_env();
    bench_contention(&mut r);
    bench_oracle_sweep(&mut r);
    bench_optimizer(&mut r);
}

//! Micro-benchmarks of the substrates: simulator event throughput, the XML
//! command-language codec, the deterministic RNG, orbit propagation and
//! restart-tree queries.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mercury_msg::{Envelope, Message};
use rr_sim::{Actor, Context, Event, Sim, SimDuration, SimRng, SimTime};
use std::hint::black_box;

struct PingPong {
    peer: Option<rr_sim::ProcessId>,
}

impl Actor<u64> for PingPong {
    fn on_event(&mut self, ev: Event<u64>, ctx: &mut Context<'_, u64>) {
        match ev {
            Event::Message { src, payload } => {
                if payload > 0 {
                    ctx.send(src, payload - 1);
                }
            }
            Event::Start => {
                if let Some(peer) = self.peer {
                    ctx.send(peer, 100_000);
                }
            }
            Event::Timer { .. } => {}
        }
    }
}

fn bench_sim_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/sim");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("ping_pong_100k_events", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new(1);
            let a = sim.spawn("a", || Box::new(PingPong { peer: None }));
            sim.spawn("b", move || Box::new(PingPong { peer: Some(a) }));
            sim.run();
            black_box(sim.events_processed())
        })
    });
    group.bench_function("spawn_kill_respawn_1k", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new(2);
            let p = sim.spawn("victim", || Box::new(PingPong { peer: None }));
            for i in 0..1000u64 {
                sim.kill_after(SimDuration::from_millis(i * 2), p);
                sim.respawn_after(SimDuration::from_millis(i * 2 + 1), p);
            }
            sim.run_until(SimTime::from_secs(10));
            black_box(sim.events_processed())
        })
    });
    group.finish();
}

fn bench_msg_codec(c: &mut Criterion) {
    let env = Envelope::new(
        "rtu",
        "fedr",
        123456,
        Message::TuneRadio {
            frequency_hz: 437_104_283.25,
            band: mercury_msg::RadioBand::Uhf,
        },
    );
    let wire = env.to_xml_string();
    let mut group = c.benchmark_group("micro/msg");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("encode_envelope", |b| b.iter(|| black_box(env.to_xml_string())));
    group.bench_function("parse_envelope", |b| {
        b.iter(|| black_box(Envelope::parse(&wire).unwrap()))
    });
    group.finish();
}

fn bench_rng_and_dist(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/rng");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("xoshiro_1k_u64", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        })
    });
    group.bench_function("exponential_1k_samples", |b| {
        let mut rng = SimRng::new(4);
        let d = rr_sim::Dist::exponential(600.0);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += d.sample_secs(&mut rng);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_orbit(c: &mut Criterion) {
    use mercury::orbit::{look_angle, predict_passes, GroundSite, Satellite};
    let site = GroundSite::stanford();
    let sat = Satellite::opal();
    let mut group = c.benchmark_group("micro/orbit");
    group.bench_function("look_angle", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 17.0;
            black_box(look_angle(&site, &sat, t))
        })
    });
    group.sample_size(20);
    group.bench_function("predict_passes_one_day", |b| {
        b.iter(|| black_box(predict_passes(&site, &sat, 0.0, 86_400.0).len()))
    });
    group.finish();
}

fn bench_tree_queries(c: &mut Criterion) {
    use mercury::station::TreeVariant;
    let tree = TreeVariant::V.tree();
    let mut group = c.benchmark_group("micro/tree");
    group.bench_function("lowest_cover", |b| {
        b.iter(|| black_box(tree.lowest_cover(&["fedr", "pbcom"]).unwrap()))
    });
    group.bench_function("restart_path", |b| {
        b.iter(|| black_box(tree.restart_path("fedr").unwrap()))
    });
    group.bench_function("groups", |b| b.iter(|| black_box(tree.groups().len())));
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_engine,
    bench_msg_codec,
    bench_rng_and_dist,
    bench_orbit,
    bench_tree_queries
);
criterion_main!(benches);

#![allow(clippy::disallowed_methods)]
//! Micro-benchmarks of the substrates: simulator event throughput, the XML
//! command-language codec, the deterministic RNG, orbit propagation and
//! restart-tree queries.

use mercury_msg::{Envelope, Message};
use rr_bench::harness::Runner;
use rr_sim::{Actor, Context, Event, Sim, SimDuration, SimRng, SimTime};
use std::hint::black_box;

struct PingPong {
    peer: Option<rr_sim::ProcessId>,
}

impl Actor<u64> for PingPong {
    fn on_event(&mut self, ev: Event<u64>, ctx: &mut Context<'_, u64>) {
        match ev {
            Event::Message { src, payload } => {
                if payload > 0 {
                    ctx.send(src, payload - 1);
                }
            }
            Event::Start => {
                if let Some(peer) = self.peer {
                    ctx.send(peer, 100_000);
                }
            }
            Event::Timer { .. } => {}
        }
    }
}

fn bench_sim_engine(r: &mut Runner) {
    r.bench("micro/sim/ping_pong_100k_events", || {
        let mut sim: Sim<u64> = Sim::new(1);
        let a = sim.spawn("a", || Box::new(PingPong { peer: None }));
        sim.spawn("b", move || Box::new(PingPong { peer: Some(a) }));
        sim.run();
        black_box(sim.events_processed())
    });
    r.bench("micro/sim/spawn_kill_respawn_1k", || {
        let mut sim: Sim<u64> = Sim::new(2);
        let p = sim.spawn("victim", || Box::new(PingPong { peer: None }));
        for i in 0..1000u64 {
            sim.kill_after(SimDuration::from_millis(i * 2), p);
            sim.respawn_after(SimDuration::from_millis(i * 2 + 1), p);
        }
        sim.run_until(SimTime::from_secs(10));
        black_box(sim.events_processed())
    });
}

fn bench_msg_codec(r: &mut Runner) {
    let env = Envelope::new(
        "rtu",
        "fedr",
        123456,
        Message::TuneRadio {
            frequency_hz: 437_104_283.25,
            band: mercury_msg::RadioBand::Uhf,
        },
    );
    let wire = env.to_xml_string();
    r.bench("micro/msg/encode_envelope", || {
        black_box(env.to_xml_string())
    });
    r.bench("micro/msg/parse_envelope", || {
        black_box(Envelope::parse(&wire).unwrap())
    });
}

fn bench_rng_and_dist(r: &mut Runner) {
    let mut rng = SimRng::new(3);
    r.bench("micro/rng/xoshiro_1k_u64", || {
        let mut acc = 0u64;
        for _ in 0..1000 {
            acc ^= rng.next_u64();
        }
        black_box(acc)
    });
    let mut rng = SimRng::new(4);
    let d = rr_sim::Dist::exponential(600.0);
    r.bench("micro/rng/exponential_1k_samples", || {
        let mut acc = 0.0;
        for _ in 0..1000 {
            acc += d.sample_secs(&mut rng);
        }
        black_box(acc)
    });
}

fn bench_orbit(r: &mut Runner) {
    use mercury::orbit::{look_angle, predict_passes, GroundSite, Satellite};
    let site = GroundSite::stanford();
    let sat = Satellite::opal();
    let mut t = 0.0;
    r.bench("micro/orbit/look_angle", || {
        t += 17.0;
        black_box(look_angle(&site, &sat, t))
    });
    r.bench("micro/orbit/predict_passes_one_day", || {
        black_box(predict_passes(&site, &sat, 0.0, 86_400.0).len())
    });
}

fn bench_tree_queries(r: &mut Runner) {
    use mercury::station::TreeVariant;
    let tree = TreeVariant::V.tree().expect("paper tree builds");
    r.bench("micro/tree/lowest_cover", || {
        black_box(tree.lowest_cover(&["fedr", "pbcom"]).unwrap())
    });
    r.bench("micro/tree/restart_path", || {
        black_box(tree.restart_path("fedr").unwrap())
    });
    r.bench("micro/tree/groups", || black_box(tree.groups().len()));
}

fn main() {
    let mut r = Runner::from_env();
    bench_sim_engine(&mut r);
    bench_msg_codec(&mut r);
    bench_rng_and_dist(&mut r);
    bench_orbit(&mut r);
    bench_tree_queries(&mut r);
}

#![allow(clippy::disallowed_methods)]
//! Micro-benchmarks of the substrates: event-queue throughput (the timing
//! wheel against the reference `BinaryHeap` it replaced), simulator event
//! throughput, model-checker states/sec, the XML command-language codec,
//! the deterministic RNG, orbit propagation and restart-tree queries.
//!
//! Run with `-- --json PATH` to emit the `BENCH_micro.json` schema and
//! `-- --baseline BENCH_micro.json` to apply the CI regression gate (see
//! `rr_bench::harness`).

use mercury_msg::{Envelope, Message};
use rr_bench::harness::Runner;
use rr_sim::{Actor, Context, Event, Sim, SimDuration, SimRng, SimTime, TimerWheel};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

struct PingPong {
    peer: Option<rr_sim::ProcessId>,
}

impl Actor<u64> for PingPong {
    fn on_event(&mut self, ev: Event<u64>, ctx: &mut Context<'_, u64>) {
        match ev {
            Event::Message { src, payload } => {
                if payload > 0 {
                    ctx.send(src, payload - 1);
                }
            }
            Event::Start => {
                if let Some(peer) = self.peer {
                    ctx.send(peer, 100_000);
                }
            }
            Event::Timer { .. } => {}
        }
    }
}

/// Pending-timer population for the queue-stress benches: millions of
/// entries, so the reference heap pays a deep (~22-level) cache-missing
/// sift per operation while the wheel stays O(1) amortised.
const QUEUE_PENDING: u64 = 4_000_000;
/// Timer-delay spread in nanoseconds: wide enough that entries land across
/// several wheel levels and overflow, matching a long simulation horizon.
const QUEUE_SPREAD: u64 = 1 << 34;
/// Event payload matching the engine's per-event footprint (48 bytes), so
/// the comparison charges both queues for moving real `Scheduled<M>`-sized
/// elements rather than bare integers.
type QueuePayload = [u64; 6];

/// Fill with `QUEUE_PENDING` randomly spread timers, then drain to empty.
fn wheel_drain() -> u64 {
    let mut rng = SimRng::new(42);
    let mut wheel: TimerWheel<QueuePayload> = TimerWheel::new();
    for seq in 0..QUEUE_PENDING {
        wheel.schedule(
            SimTime::from_nanos(rng.next_below(QUEUE_SPREAD)),
            seq,
            [seq; 6],
        );
    }
    let mut acc = 0u64;
    while let Some((_, s, p)) = wheel.pop() {
        acc ^= s ^ p[0];
    }
    acc
}

/// The identical fill-and-drain against the `BinaryHeap` the engine used
/// before the wheel — the "before" half of `BENCH_micro.json`.
fn heap_drain() -> u64 {
    let mut rng = SimRng::new(42);
    let mut heap: BinaryHeap<Reverse<(u64, u64, QueuePayload)>> = BinaryHeap::new();
    for seq in 0..QUEUE_PENDING {
        heap.push(Reverse((rng.next_below(QUEUE_SPREAD), seq, [seq; 6])));
    }
    let mut acc = 0u64;
    while let Some(Reverse((_, s, p))) = heap.pop() {
        acc ^= s ^ p[0];
    }
    acc
}

/// Steady-state churn (pop one, schedule a replacement) at a constant
/// small population, used for the CI regression gate: at 50k ops each
/// closure is fast enough that the harness averages over dozens of
/// iterations, and the gate compares the wheel/heap **speedup ratio**
/// rather than absolute events/sec — the two sides run seconds apart in
/// the same process, so machine-speed drift cancels (the single-iteration
/// 4M drain benches above are the headline comparison, but too noisy to
/// gate on).
const GATE_PENDING: u64 = 50_000;

fn wheel_churn_small() -> u64 {
    let mut rng = SimRng::new(7);
    let mut wheel: TimerWheel<QueuePayload> = TimerWheel::new();
    let mut seq = 0u64;
    for _ in 0..GATE_PENDING {
        wheel.schedule(SimTime::from_nanos(rng.next_below(1 << 30)), seq, [seq; 6]);
        seq += 1;
    }
    let mut acc = 0u64;
    for _ in 0..GATE_PENDING {
        let (t, s, p) = wheel.pop().expect("queue stays full");
        acc ^= s ^ p[0];
        let next = t + SimDuration::from_nanos(1 + rng.next_below(1 << 30));
        wheel.schedule(next, seq, [seq; 6]);
        seq += 1;
    }
    acc
}

fn heap_churn_small() -> u64 {
    let mut rng = SimRng::new(7);
    let mut heap: BinaryHeap<Reverse<(u64, u64, QueuePayload)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for _ in 0..GATE_PENDING {
        heap.push(Reverse((rng.next_below(1 << 30), seq, [seq; 6])));
        seq += 1;
    }
    let mut acc = 0u64;
    for _ in 0..GATE_PENDING {
        let Reverse((t, s, p)) = heap.pop().expect("queue stays full");
        acc ^= s ^ p[0];
        heap.push(Reverse((t + 1 + rng.next_below(1 << 30), seq, [seq; 6])));
        seq += 1;
    }
    acc
}

fn bench_queue(r: &mut Runner) {
    r.bench_events("micro/queue/wheel_drain_4m", QUEUE_PENDING, || {
        black_box(wheel_drain())
    });
    r.bench_events("micro/queue/heap_drain_4m", QUEUE_PENDING, || {
        black_box(heap_drain())
    });
    r.record_speedup(
        "micro/queue/speedup_drain_4m",
        "micro/queue/wheel_drain_4m",
        "micro/queue/heap_drain_4m",
    );
    // The gate pair is time-only (no events/sec), so the regression gate
    // compares just the derived speedup below.
    r.bench("micro/queue/wheel_churn_50k_pending", || {
        black_box(wheel_churn_small())
    });
    r.bench("micro/queue/heap_churn_50k_pending", || {
        black_box(heap_churn_small())
    });
    r.record_speedup(
        "micro/queue/speedup_churn_50k",
        "micro/queue/wheel_churn_50k_pending",
        "micro/queue/heap_churn_50k_pending",
    );
}

/// An actor that floods the queue with pseudo-randomly spread timers, so the
/// engine-level bench runs with tens of thousands of pending events — the
/// regime the wheel was built for.
struct TimerStorm {
    remaining: u32,
}

const STORM_TIMERS: u64 = 50_000;

impl Actor<u64> for TimerStorm {
    fn on_event(&mut self, ev: Event<u64>, ctx: &mut Context<'_, u64>) {
        match ev {
            Event::Start => {
                for key in 0..STORM_TIMERS {
                    let delay = 1 + ctx.rng().next_below(1 << 30);
                    ctx.set_timer(SimDuration::from_nanos(delay), key);
                }
                self.remaining = STORM_TIMERS as u32;
            }
            Event::Timer { .. } => self.remaining -= 1,
            Event::Message { .. } => {}
        }
    }
}

fn bench_sim_engine(r: &mut Runner) {
    r.bench_events("micro/sim/timer_storm_50k_pending", STORM_TIMERS, || {
        let mut sim: Sim<u64> = Sim::new(5);
        sim.spawn("storm", || Box::new(TimerStorm { remaining: 0 }));
        sim.run();
        black_box(sim.events_processed())
    });
    r.bench_events("micro/sim/ping_pong_100k_events", 100_000, || {
        let mut sim: Sim<u64> = Sim::new(1);
        let a = sim.spawn("a", || Box::new(PingPong { peer: None }));
        sim.spawn("b", move || Box::new(PingPong { peer: Some(a) }));
        sim.run();
        black_box(sim.events_processed())
    });
    r.bench("micro/sim/spawn_kill_respawn_1k", || {
        let mut sim: Sim<u64> = Sim::new(2);
        let p = sim.spawn("victim", || Box::new(PingPong { peer: None }));
        for i in 0..1000u64 {
            sim.kill_after(SimDuration::from_millis(i * 2), p);
            sim.respawn_after(SimDuration::from_millis(i * 2 + 1), p);
        }
        sim.run_until(SimTime::from_secs(10));
        black_box(sim.events_processed())
    });
}

fn bench_msg_codec(r: &mut Runner) {
    let env = Envelope::new(
        "rtu",
        "fedr",
        123456,
        Message::TuneRadio {
            frequency_hz: 437_104_283.25,
            band: mercury_msg::RadioBand::Uhf,
        },
    );
    let wire = env.to_xml_string();
    r.bench("micro/msg/encode_envelope", || {
        black_box(env.to_xml_string())
    });
    r.bench("micro/msg/parse_envelope", || {
        black_box(Envelope::parse(&wire).unwrap())
    });
}

fn bench_rng_and_dist(r: &mut Runner) {
    let mut rng = SimRng::new(3);
    r.bench("micro/rng/xoshiro_1k_u64", || {
        let mut acc = 0u64;
        for _ in 0..1000 {
            acc ^= rng.next_u64();
        }
        black_box(acc)
    });
    let mut rng = SimRng::new(4);
    let d = rr_sim::Dist::exponential(600.0);
    r.bench("micro/rng/exponential_1k_samples", || {
        let mut acc = 0.0;
        for _ in 0..1000 {
            acc += d.sample_secs(&mut rng);
        }
        black_box(acc)
    });
}

fn bench_orbit(r: &mut Runner) {
    use mercury::orbit::{look_angle, predict_passes, GroundSite, Satellite};
    let site = GroundSite::stanford();
    let sat = Satellite::opal();
    let mut t = 0.0;
    r.bench("micro/orbit/look_angle", || {
        t += 17.0;
        black_box(look_angle(&site, &sat, t))
    });
    r.bench("micro/orbit/predict_passes_one_day", || {
        black_box(predict_passes(&site, &sat, 0.0, 86_400.0).len())
    });
}

/// Model-checker throughput: the built-in correlated-pair scenario on the
/// paper's tree III, reported as explored states/sec.
fn bench_model_checker(r: &mut Runner) {
    use mercury::config::names;
    use mercury::station::TreeVariant;
    use rr_model::{check, scenario, CheckConfig, Model, OracleKind, Scenario};

    let fault = |component: &str| scenario::FaultSpec {
        component: component.to_string(),
        cure_set: vec![component.to_string()],
    };
    let sc = Scenario {
        tree: "III".to_string(),
        oracle: OracleKind::Perfect,
        depth: None,
        faults: vec![fault(names::RTU), fault(names::SES)],
        mutation: None,
        admission: false,
        rehydrate: false,
        por_assume: None,
    };
    let tree = TreeVariant::III.tree().expect("paper tree builds");
    let cfg = CheckConfig {
        max_depth: 10, // keep one iteration in the low tens of milliseconds
        ..CheckConfig::default()
    };
    let model = Model::new(tree, &sc).expect("scenario is well-formed");
    // The exploration is deterministic, so one pilot run fixes the
    // states-per-iteration denominator for the throughput report — and
    // distinct_states is committed alongside, so full-vs-reduced ratios are
    // computable straight from BENCH files without rerunning.
    let pilot = check(&model, &cfg).expect("within budget");
    r.bench_events(
        "micro/model/pair_tree3_depth10_states",
        pilot.states_explored,
        || black_box(check(&model, &cfg).expect("within budget").states_explored),
    );
    r.record_count(
        "micro/model/pair_tree3_depth10_distinct",
        pilot.distinct_states,
    );
}

fn bench_tree_queries(r: &mut Runner) {
    use mercury::station::TreeVariant;
    let tree = TreeVariant::V.tree().expect("paper tree builds");
    r.bench("micro/tree/lowest_cover", || {
        black_box(tree.lowest_cover(&["fedr", "pbcom"]).unwrap())
    });
    r.bench("micro/tree/restart_path", || {
        black_box(tree.restart_path("fedr").unwrap())
    });
    r.bench("micro/tree/groups", || black_box(tree.groups().len()));
}

fn main() {
    let mut r = Runner::from_env();
    bench_queue(&mut r);
    bench_sim_engine(&mut r);
    bench_model_checker(&mut r);
    bench_msg_codec(&mut r);
    bench_rng_and_dist(&mut r);
    bench_orbit(&mut r);
    bench_tree_queries(&mut r);
    r.finish();
}

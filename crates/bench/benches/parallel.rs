#![allow(clippy::disallowed_methods)]
//! Sequential vs parallel recovery of correlated faults.
//!
//! Prints the group-recovery table (sequential scheduler vs the
//! dependency-aware parallel scheduler) for the tree IV/V correlated-fault
//! scenarios, asserts the parallel plan is strictly faster on each, then
//! times one full correlated trial per scheduler.

use mercury::config::names;
use mercury::station::TreeVariant;
use rr_bench::correlated_group_recovery;
use rr_bench::harness::Runner;
use rr_harness::experiments::{measure_correlated, CorrelatedKind, RunConfig};
use std::hint::black_box;

fn bench_parallel(r: &mut Runner) {
    let run = RunConfig {
        trials: 5,
        seed: 0xD52002,
    };
    let scenarios: [(&str, TreeVariant, CorrelatedKind); 4] = [
        (
            "IV rtu+fedr",
            TreeVariant::IV,
            CorrelatedKind::Pair(names::RTU, names::FEDR),
        ),
        (
            "IV merge",
            TreeVariant::IV,
            CorrelatedKind::FedrThenJointPbcom,
        ),
        (
            "V rtu+ses",
            TreeVariant::V,
            CorrelatedKind::Pair(names::RTU, names::SES),
        ),
        (
            "V merge",
            TreeVariant::V,
            CorrelatedKind::FedrThenJointPbcom,
        ),
    ];
    eprintln!("\n[parallel] scenario     | sequential | parallel | speedup (5 trials)");
    for (label, variant, kind) in scenarios {
        let seq = measure_correlated(variant, kind, true, run).mean;
        let par = measure_correlated(variant, kind, false, run).mean;
        eprintln!(
            "[parallel] {label:12} | {seq:10.2} | {par:8.2} | {:.2}x",
            seq / par
        );
        assert!(
            par < seq,
            "{label}: parallel {par:.2} s is not strictly faster than sequential {seq:.2} s"
        );
    }

    for serial in [true, false] {
        let name = if serial { "sequential" } else { "parallel" };
        let mut seed = 0u64;
        r.bench(&format!("parallel/IV_rtu_fedr_trial/{name}"), || {
            seed += 1;
            black_box(correlated_group_recovery(
                TreeVariant::IV,
                names::RTU,
                names::FEDR,
                serial,
                seed,
            ))
        });
    }
}

fn main() {
    let mut r = Runner::from_env();
    bench_parallel(&mut r);
}

#![allow(clippy::disallowed_methods)]
//! Benchmarks that regenerate the paper's measured tables.
//!
//! Each group prints the reproduced rows (paper vs measured over a handful
//! of trials) once, then times the unit of work — a complete recovery trial:
//! cold start, settle, inject the failure, run to recovery, measure.

use mercury::config::names;
use mercury::station::TreeVariant;
use rr_bench::harness::Runner;
use rr_bench::{mean_recovery, recovery_trial, BenchOracle};
use rr_sim::{Dist, SimRng};
use std::hint::black_box;

/// Table 1: the synthetic failure generators hit the configured MTTFs.
fn bench_table1(r: &mut Runner) {
    let rows = [
        ("mbus", 730.0 * 3600.0),
        ("fedrcom", 600.0),
        ("ses", 5.0 * 3600.0),
        ("str", 5.0 * 3600.0),
        ("rtu", 5.0 * 3600.0),
    ];
    eprintln!("\n[table1] component | paper MTTF (s) | empirical mean of 2000 draws");
    let mut rng = SimRng::new(1);
    for (comp, mttf) in rows {
        let d = Dist::exponential(mttf);
        let mean = (0..2000).map(|_| d.sample_secs(&mut rng)).sum::<f64>() / 2000.0;
        eprintln!("[table1] {comp:8} | {mttf:12.0} | {mean:12.0}");
    }
    let d = Dist::exponential(600.0);
    let mut rng = SimRng::new(2);
    r.bench("table1/sample_failure_times_1k", || {
        let mut acc = 0.0;
        for _ in 0..1000 {
            acc += d.sample_secs(&mut rng);
        }
        black_box(acc)
    });
}

/// Table 2: tree I vs tree II recovery per component.
fn bench_table2(r: &mut Runner) {
    let paper = [
        (names::MBUS, 24.75, 5.73),
        (names::SES, 24.75, 9.50),
        (names::STR, 24.75, 9.76),
        (names::RTU, 24.75, 5.59),
        (names::FEDRCOM, 24.75, 20.93),
    ];
    eprintln!("\n[table2] component | tree I paper/measured | tree II paper/measured (5 trials)");
    for (comp, p1, p2) in paper {
        let m1 = mean_recovery(TreeVariant::I, BenchOracle::Perfect, comp, false, 5, 100);
        let m2 = mean_recovery(TreeVariant::II, BenchOracle::Perfect, comp, false, 5, 200);
        eprintln!("[table2] {comp:8} | {p1:5.2} / {m1:5.2} | {p2:5.2} / {m2:5.2}");
    }

    for variant in [TreeVariant::I, TreeVariant::II] {
        let mut seed = 0u64;
        r.bench(&format!("table2/recovery_trial_rtu/{variant}"), || {
            seed += 1;
            black_box(recovery_trial(
                variant,
                BenchOracle::Perfect,
                names::RTU,
                false,
                seed,
            ))
        });
    }
}

/// Table 4: representative cells of the full matrix — the §4.2/§4.3/§4.4
/// measurements.
fn bench_table4(r: &mut Runner) {
    eprintln!("\n[table4] key cells, paper vs measured (5 trials):");
    let cells: [(&str, TreeVariant, BenchOracle, &str, bool, f64); 6] = [
        (
            "III fedr",
            TreeVariant::III,
            BenchOracle::Perfect,
            names::FEDR,
            false,
            5.76,
        ),
        (
            "III pbcom",
            TreeVariant::III,
            BenchOracle::Perfect,
            names::PBCOM,
            false,
            21.24,
        ),
        (
            "III ses",
            TreeVariant::III,
            BenchOracle::Perfect,
            names::SES,
            false,
            9.50,
        ),
        (
            "IV ses",
            TreeVariant::IV,
            BenchOracle::Perfect,
            names::SES,
            false,
            6.25,
        ),
        (
            "IV faulty pbcom",
            TreeVariant::IV,
            BenchOracle::Faulty(0.3),
            names::PBCOM,
            true,
            29.19,
        ),
        (
            "V faulty pbcom",
            TreeVariant::V,
            BenchOracle::Faulty(0.3),
            names::PBCOM,
            true,
            21.63,
        ),
    ];
    for (label, variant, oracle, comp, correlated, paper) in cells {
        let m = mean_recovery(variant, oracle, comp, correlated, 5, 300);
        eprintln!("[table4] {label:16} | paper {paper:5.2} | measured {m:5.2}");
    }

    let mut seed = 0u64;
    r.bench("table4/IV_consolidated_ses_trial", || {
        seed += 1;
        black_box(recovery_trial(
            TreeVariant::IV,
            BenchOracle::Perfect,
            names::SES,
            false,
            seed,
        ))
    });
    let mut seed = 0u64;
    r.bench("table4/V_promoted_pbcom_joint_trial", || {
        seed += 1;
        black_box(recovery_trial(
            TreeVariant::V,
            BenchOracle::Faulty(0.3),
            names::PBCOM,
            true,
            seed,
        ))
    });
}

fn main() {
    let mut r = Runner::from_env();
    bench_table1(&mut r);
    bench_table2(&mut r);
    bench_table4(&mut r);
}

//! Benchmarks regenerating the paper's figures: the restart trees of
//! Figures 2–6 (construction via the transformation pipeline + ASCII render)
//! and the Figure 1 architecture (station assembly + cold start).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mercury::config::StationConfig;
use mercury::station::{Station, TreeVariant};
use rr_core::render::{render_compact, render_tree};
use rr_core::PerfectOracle;
use std::hint::black_box;

fn bench_tree_evolution(c: &mut Criterion) {
    eprintln!("\n[figures] the restart trees of Figures 3-6:");
    for variant in TreeVariant::ALL {
        eprintln!("[figures] tree {variant}:\n{}", render_tree(&variant.tree()));
    }

    let mut group = c.benchmark_group("figures/tree");
    for variant in TreeVariant::ALL {
        group.bench_with_input(
            BenchmarkId::new("build", variant.to_string()),
            &variant,
            |b, &v| b.iter(|| black_box(v.tree())),
        );
    }
    group.bench_function("render_tree_v", |b| {
        let tree = TreeVariant::V.tree();
        b.iter(|| black_box(render_tree(&tree)))
    });
    group.bench_function("render_compact_v", |b| {
        let tree = TreeVariant::V.tree();
        b.iter(|| black_box(render_compact(&tree)))
    });
    group.finish();
}

/// Figure 1: assembling and cold-starting the whole station.
fn bench_station_cold_start(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/station");
    group.sample_size(10);
    group.bench_function("cold_start_tree_v", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut s = Station::new(
                StationConfig::paper(),
                TreeVariant::V,
                Box::new(PerfectOracle::new()),
                seed,
            );
            s.warm_up();
            black_box(s.now())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tree_evolution, bench_station_cold_start);
criterion_main!(benches);

#![allow(clippy::disallowed_methods)]
//! Benchmarks regenerating the paper's figures: the restart trees of
//! Figures 2–6 (construction via the transformation pipeline + ASCII render)
//! and the Figure 1 architecture (station assembly + cold start).

use mercury::config::StationConfig;
use mercury::station::{Station, TreeVariant};
use rr_bench::harness::Runner;
use rr_core::render::{render_compact, render_tree};
use rr_core::PerfectOracle;
use std::hint::black_box;

fn bench_tree_evolution(r: &mut Runner) {
    eprintln!("\n[figures] the restart trees of Figures 3-6:");
    for variant in TreeVariant::ALL {
        eprintln!(
            "[figures] tree {variant}:\n{}",
            render_tree(&variant.tree().expect("paper tree builds"))
        );
    }

    for variant in TreeVariant::ALL {
        r.bench(&format!("figures/tree/build/{variant}"), || {
            black_box(variant.tree().expect("paper tree builds"))
        });
    }
    let tree = TreeVariant::V.tree().expect("paper tree builds");
    r.bench("figures/tree/render_tree_v", || {
        black_box(render_tree(&tree))
    });
    r.bench("figures/tree/render_compact_v", || {
        black_box(render_compact(&tree))
    });
}

/// Figure 1: assembling and cold-starting the whole station.
fn bench_station_cold_start(r: &mut Runner) {
    let mut seed = 0u64;
    r.bench("figures/station/cold_start_tree_v", || {
        seed += 1;
        let mut s = Station::new(
            StationConfig::paper(),
            TreeVariant::V,
            Box::new(PerfectOracle::new()),
            seed,
        )
        .expect("valid station");
        s.warm_up();
        black_box(s.now())
    });
}

fn main() {
    let mut r = Runner::from_env();
    bench_tree_evolution(&mut r);
    bench_station_cold_start(&mut r);
}

#![allow(clippy::disallowed_methods)]
//! Property tests for the parallel recovery scheduler (DESIGN.md §7).
//!
//! For random trees and random concurrent suspicion sets, the episode plan
//! must be a maximal antichain of restart cells: no planned cell is an
//! ancestor or descendant of another, and every suspected component is
//! covered by exactly one episode.

use std::collections::BTreeSet;

use rr_core::schedule::{plan_episodes, Suspicion};
use rr_core::tree::RestartTree;
use rr_sim::{check, SimRng};

/// Builds a random tree of up to `max_cells` nested cells (arbitrary depth)
/// with 1..=`max_components` components scattered across them.
fn arb_deep_tree(rng: &mut SimRng, max_cells: usize, max_components: usize) -> RestartTree {
    let mut tree = RestartTree::new("root");
    let mut cells = vec![tree.root()];
    let extra = rng.next_below(max_cells as u64) as usize;
    for i in 0..extra {
        let parent = cells[rng.next_below(cells.len() as u64) as usize];
        let id = tree.add_cell(parent, format!("R{i}")).expect("live parent");
        cells.push(id);
    }
    let n = 1 + rng.next_below(max_components as u64) as usize;
    for i in 0..n {
        let cell = cells[rng.next_below(cells.len() as u64) as usize];
        tree.attach_component(cell, format!("c{i}"))
            .expect("fresh component name");
    }
    tree
}

/// Draws a random concurrent suspicion set: distinct suspected components,
/// each with a random cure set containing itself and up to two other
/// components (a correlated fault forces a wider target cell).
fn arb_suspicions(rng: &mut SimRng, tree: &RestartTree) -> Vec<Suspicion> {
    let comps = tree.components();
    let picks = check::vec_of(rng, 1, comps.len().min(5), |r| r.next_u64() as usize);
    let mut suspected = BTreeSet::new();
    for i in picks {
        suspected.insert(comps[i % comps.len()].clone());
    }
    suspected
        .into_iter()
        .map(|comp| {
            let mut cure = vec![comp.clone()];
            for _ in 0..rng.next_below(3) {
                cure.push(comps[rng.next_below(comps.len() as u64) as usize].clone());
            }
            Suspicion::covering(tree, comp, &cure).expect("components exist")
        })
        .collect()
}

/// The plan's cells form an antichain: no cell is an ancestor, descendant,
/// or duplicate of another planned cell.
#[test]
fn plan_is_an_antichain() {
    check::run("plan_is_an_antichain", 256, |rng| {
        let tree = arb_deep_tree(rng, 9, 8);
        let suspicions = arb_suspicions(rng, &tree);
        let plan = plan_episodes(&tree, &suspicions).expect("cells are live");
        let cells = plan.cells();
        for (i, &a) in cells.iter().enumerate() {
            for &b in &cells[i + 1..] {
                assert!(
                    !tree.overlaps(a, b),
                    "episodes {a:?} and {b:?} overlap: {suspicions:?}"
                );
            }
        }
    });
}

/// Every suspected component is an origin of exactly one episode, and each
/// episode's cell actually restarts all of its origins.
#[test]
fn every_suspicion_is_covered_exactly_once() {
    check::run("every_suspicion_is_covered_exactly_once", 256, |rng| {
        let tree = arb_deep_tree(rng, 9, 8);
        let suspicions = arb_suspicions(rng, &tree);
        let plan = plan_episodes(&tree, &suspicions).expect("cells are live");
        let suspected: BTreeSet<&str> = suspicions.iter().map(|s| s.component.as_str()).collect();
        let mut seen = BTreeSet::new();
        for ep in &plan.episodes {
            for origin in &ep.origins {
                assert!(
                    seen.insert(origin.as_str()),
                    "{origin} appears in two episodes"
                );
                assert!(
                    ep.components.contains(origin),
                    "episode at {:?} does not restart its origin {origin}",
                    ep.cell
                );
            }
            let mut under = tree.components_under(ep.cell);
            under.sort();
            assert_eq!(ep.components, under, "components field mismatches cell");
        }
        assert_eq!(
            seen,
            suspected.iter().copied().collect::<BTreeSet<&str>>(),
            "origins do not partition the suspected set"
        );
    });
}

/// Merging never happens gratuitously: an episode with a single origin keeps
/// exactly the cell its suspicion asked for, and the plan is deterministic.
#[test]
fn unmerged_episodes_keep_their_cell() {
    check::run("unmerged_episodes_keep_their_cell", 256, |rng| {
        let tree = arb_deep_tree(rng, 9, 8);
        let suspicions = arb_suspicions(rng, &tree);
        let plan = plan_episodes(&tree, &suspicions).expect("cells are live");
        for ep in &plan.episodes {
            if let [origin] = ep.origins.as_slice() {
                let asked = suspicions
                    .iter()
                    .find(|s| &s.component == origin)
                    .expect("origin came from the suspicion set");
                assert_eq!(
                    ep.cell, asked.cell,
                    "singleton episode for {origin} was promoted without an overlap"
                );
            }
        }
        let again = plan_episodes(&tree, &suspicions).expect("cells are live");
        assert_eq!(plan, again, "plan is not deterministic");
    });
}

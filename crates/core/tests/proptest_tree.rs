#![allow(clippy::disallowed_methods)]
//! Property tests for restart-tree invariants (DESIGN.md §8).
//!
//! Random sequences of the paper's transformations, applied to random valid
//! trees, must always preserve: the component set, structural validity,
//! single attachment, and the escalation-path/lowest-cover laws. The
//! MTTF/MTTR group algebra must hold for arbitrary member statistics.

use rr_core::analysis::{group_mttf_bound_s, group_mttr_bound_s};
use rr_core::transform::{
    consolidate, consolidate_one_sided, demote_component, depth_augment, flatten, group_cells,
    promote_component,
};
use rr_core::tree::{RestartTree, TreeSpec};
use rr_sim::{check, SimRng};

/// Builds a random two-level tree over 2..=`max_components` components named
/// c0..c(n-1).
fn arb_tree(rng: &mut SimRng, max_components: usize) -> RestartTree {
    let n = 2 + rng.next_below(max_components as u64 - 1) as usize;
    let mut spec = TreeSpec::cell("root");
    let mut group: Vec<String> = Vec::new();
    for i in 0..n {
        group.push(format!("c{i}"));
        // Close the current group with ~50% probability.
        if rng.chance(0.5) {
            match group.len() {
                1 => {
                    let comp = group.pop().expect("non-empty");
                    if rng.chance(0.5) {
                        spec = spec.with_component(comp);
                    } else {
                        spec = spec
                            .with_child(TreeSpec::cell(format!("R_{comp}")).with_component(comp));
                    }
                }
                _ => {
                    let label = format!("R_g{i}");
                    spec = spec.with_child(TreeSpec::cell(label).with_components(group.drain(..)));
                }
            }
        }
    }
    if !group.is_empty() {
        spec = spec.with_child(TreeSpec::cell("R_tail").with_components(group.drain(..)));
    }
    spec.build().expect("generated spec is valid")
}

/// A transformation choice to apply, parameterized by raw indices that are
/// reduced modulo the available options at application time.
#[derive(Debug, Clone)]
enum Op {
    Augment(usize),
    Group(usize, usize),
    Consolidate(usize, usize),
    OneSided(usize, usize),
    Promote(usize),
    Demote(usize),
    Flatten(usize),
}

fn arb_op(rng: &mut SimRng) -> Op {
    let a = rng.next_u64() as usize;
    let b = rng.next_u64() as usize;
    match rng.next_below(7) {
        0 => Op::Augment(a),
        1 => Op::Group(a, b),
        2 => Op::Consolidate(a, b),
        3 => Op::OneSided(a, b),
        4 => Op::Promote(a),
        5 => Op::Demote(a),
        _ => Op::Flatten(a),
    }
}

/// Applies an op if its preconditions can be satisfied; errors are fine (the
/// tree must simply remain valid).
fn apply(tree: &mut RestartTree, op: &Op) {
    let cells = tree.cells();
    let comps = tree.components();
    match *op {
        Op::Augment(c) => {
            let cell = cells[c % cells.len()];
            let attached = tree.components_at(cell).to_vec();
            if attached.len() >= 2 {
                let partition: Vec<Vec<String>> =
                    attached.iter().map(|x| vec![x.clone()]).collect();
                let _ = depth_augment(tree, cell, &partition);
            }
        }
        Op::Group(a, b) | Op::Consolidate(a, b) | Op::OneSided(a, b) => {
            let x = cells[a % cells.len()];
            let y = cells[b % cells.len()];
            if x != y {
                match op {
                    Op::Group(..) => {
                        let _ = group_cells(tree, &[x, y]);
                    }
                    Op::Consolidate(..) => {
                        let _ = consolidate(tree, &[x, y]);
                    }
                    _ => {
                        let _ = consolidate_one_sided(tree, x, y);
                    }
                }
            }
        }
        Op::Promote(i) => {
            if !comps.is_empty() {
                let _ = promote_component(tree, &comps[i % comps.len()]);
            }
        }
        Op::Demote(i) => {
            if !comps.is_empty() {
                let _ = demote_component(tree, &comps[i % comps.len()]);
            }
        }
        Op::Flatten(c) => {
            let cell = cells[c % cells.len()];
            let _ = flatten(tree, cell);
        }
    }
}

/// Any sequence of transformations preserves validity and the component set.
#[test]
fn transformations_preserve_components() {
    check::run("transformations_preserve_components", 128, |rng| {
        let mut tree = arb_tree(rng, 8);
        let ops = check::vec_of(rng, 0, 23, arb_op);
        let before = tree.components();
        for op in &ops {
            apply(&mut tree, op);
            assert!(
                tree.validate().is_ok(),
                "after {op:?}: {:?}",
                tree.validate()
            );
        }
        assert_eq!(tree.components(), before);
    });
}

/// Every component stays reachable: its restart path ends at the root and
/// its own cell covers it.
#[test]
fn restart_paths_stay_coherent() {
    check::run("restart_paths_stay_coherent", 128, |rng| {
        let mut tree = arb_tree(rng, 8);
        let ops = check::vec_of(rng, 0, 23, arb_op);
        for op in &ops {
            apply(&mut tree, op);
        }
        let root = tree.root();
        for comp in tree.components() {
            let path = tree.restart_path(&comp).expect("attached");
            assert_eq!(*path.last().unwrap(), root);
            // The path is strictly ancestor-ordered.
            for pair in path.windows(2) {
                assert_eq!(tree.parent(pair[0]), Some(pair[1]));
            }
            // The component's own cell covers it.
            assert!(tree.components_under(path[0]).contains(&comp));
            // Every cell on the path covers it too (restart at any ancestor
            // restarts the component).
            for &cell in &path {
                assert!(tree.components_under(cell).contains(&comp));
            }
        }
    });
}

/// lowest_cover returns a cell that covers the set, and no child of it does.
#[test]
fn lowest_cover_is_minimal() {
    check::run("lowest_cover_is_minimal", 128, |rng| {
        let mut tree = arb_tree(rng, 8);
        let ops = check::vec_of(rng, 0, 15, arb_op);
        for op in &ops {
            apply(&mut tree, op);
        }
        let picks: Vec<usize> = check::vec_of(rng, 1, 3, |r| r.next_u64() as usize);
        let comps = tree.components();
        let set: Vec<String> = picks
            .iter()
            .map(|&i| comps[i % comps.len()].clone())
            .collect();
        let cover = tree.lowest_cover(&set).expect("components exist");
        let under = tree.components_under(cover);
        for c in &set {
            assert!(under.contains(c));
        }
        for &child in tree.children(cover) {
            let child_under = tree.components_under(child);
            assert!(
                !set.iter().all(|c| child_under.contains(c)),
                "child also covers the set — cover was not lowest"
            );
        }
    });
}

/// §3.2 algebra: group MTTF ≤ min member MTTF, group MTTR ≥ max member MTTR.
#[test]
fn group_bounds_hold() {
    check::run("group_bounds_hold", 128, |rng| {
        let values: Vec<f64> = check::vec_of(rng, 1, 31, |r| r.uniform(0.1, 1e6));
        let mttf = group_mttf_bound_s(&values).unwrap();
        let mttr = group_mttr_bound_s(&values).unwrap();
        for &v in &values {
            assert!(mttf <= v);
            assert!(mttr >= v);
        }
        assert!(values.contains(&mttf));
        assert!(values.contains(&mttr));
    });
}

/// to_spec/build round-trips any transformed tree.
#[test]
fn spec_round_trip_after_transformations() {
    check::run("spec_round_trip_after_transformations", 128, |rng| {
        let mut tree = arb_tree(rng, 8);
        let ops = check::vec_of(rng, 0, 15, arb_op);
        for op in &ops {
            apply(&mut tree, op);
        }
        let rebuilt = tree.to_spec().build().expect("round trip");
        assert_eq!(rebuilt, tree);
    });
}

//! Property tests for restart-tree invariants (DESIGN.md §6).
//!
//! Random sequences of the paper's transformations, applied to random valid
//! trees, must always preserve: the component set, structural validity,
//! single attachment, and the escalation-path/lowest-cover laws. The
//! MTTF/MTTR group algebra must hold for arbitrary member statistics.

use proptest::prelude::*;
use rr_core::analysis::{group_mttf_bound_s, group_mttr_bound_s};
use rr_core::transform::{
    consolidate, consolidate_one_sided, demote_component, depth_augment, flatten, group_cells,
    promote_component,
};
use rr_core::tree::{RestartTree, TreeSpec};

/// Builds a random two-level tree over `n` components named c0..c(n-1).
fn arb_tree(max_components: usize) -> impl Strategy<Value = RestartTree> {
    (2..=max_components, any::<u64>()).prop_map(|(n, seed)| {
        // Deterministic pseudo-random grouping driven by the seed.
        let mut spec = TreeSpec::cell("root");
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        let mut group: Vec<String> = Vec::new();
        for i in 0..n {
            group.push(format!("c{i}"));
            // Close the current group with ~50% probability.
            if next() % 2 == 0 {
                match group.len() {
                    1 => {
                        let comp = group.pop().expect("non-empty");
                        if next() % 2 == 0 {
                            spec = spec.with_component(comp);
                        } else {
                            spec = spec.with_child(TreeSpec::cell(format!("R_{comp}")).with_component(comp));
                        }
                    }
                    _ => {
                        let label = format!("R_g{i}");
                        spec = spec.with_child(
                            TreeSpec::cell(label).with_components(group.drain(..)),
                        );
                    }
                }
            }
        }
        if !group.is_empty() {
            spec = spec.with_child(TreeSpec::cell("R_tail").with_components(group.drain(..)));
        }
        spec.build().expect("generated spec is valid")
    })
}

/// A transformation choice to apply, parameterized by raw indices that are
/// reduced modulo the available options at application time.
#[derive(Debug, Clone)]
enum Op {
    Augment(usize),
    Group(usize, usize),
    Consolidate(usize, usize),
    OneSided(usize, usize),
    Promote(usize),
    Demote(usize),
    Flatten(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<usize>().prop_map(Op::Augment),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Group(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Consolidate(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::OneSided(a, b)),
        any::<usize>().prop_map(Op::Promote),
        any::<usize>().prop_map(Op::Demote),
        any::<usize>().prop_map(Op::Flatten),
    ]
}

/// Applies an op if its preconditions can be satisfied; errors are fine (the
/// tree must simply remain valid).
fn apply(tree: &mut RestartTree, op: &Op) {
    let cells = tree.cells();
    let comps = tree.components();
    match *op {
        Op::Augment(c) => {
            let cell = cells[c % cells.len()];
            let attached = tree.components_at(cell).to_vec();
            if attached.len() >= 2 {
                let partition: Vec<Vec<String>> =
                    attached.iter().map(|x| vec![x.clone()]).collect();
                let _ = depth_augment(tree, cell, &partition);
            }
        }
        Op::Group(a, b) | Op::Consolidate(a, b) | Op::OneSided(a, b) => {
            let x = cells[a % cells.len()];
            let y = cells[b % cells.len()];
            if x != y {
                match op {
                    Op::Group(..) => {
                        let _ = group_cells(tree, &[x, y]);
                    }
                    Op::Consolidate(..) => {
                        let _ = consolidate(tree, &[x, y]);
                    }
                    _ => {
                        let _ = consolidate_one_sided(tree, x, y);
                    }
                }
            }
        }
        Op::Promote(i) => {
            if !comps.is_empty() {
                let _ = promote_component(tree, &comps[i % comps.len()]);
            }
        }
        Op::Demote(i) => {
            if !comps.is_empty() {
                let _ = demote_component(tree, &comps[i % comps.len()]);
            }
        }
        Op::Flatten(c) => {
            let cell = cells[c % cells.len()];
            let _ = flatten(tree, cell);
        }
    }
}

proptest! {
    /// Any sequence of transformations preserves validity and the component set.
    #[test]
    fn transformations_preserve_components(
        tree in arb_tree(8),
        ops in proptest::collection::vec(arb_op(), 0..24),
    ) {
        let before = tree.components();
        let mut tree = tree;
        for op in &ops {
            apply(&mut tree, op);
            prop_assert!(tree.validate().is_ok(), "after {op:?}: {:?}", tree.validate());
        }
        prop_assert_eq!(tree.components(), before);
    }

    /// Every component stays reachable: its restart path ends at the root and
    /// its own cell covers it.
    #[test]
    fn restart_paths_stay_coherent(
        tree in arb_tree(8),
        ops in proptest::collection::vec(arb_op(), 0..24),
    ) {
        let mut tree = tree;
        for op in &ops {
            apply(&mut tree, op);
        }
        let root = tree.root();
        for comp in tree.components() {
            let path = tree.restart_path(&comp).expect("attached");
            prop_assert_eq!(*path.last().unwrap(), root);
            // The path is strictly ancestor-ordered.
            for pair in path.windows(2) {
                prop_assert_eq!(tree.parent(pair[0]), Some(pair[1]));
            }
            // The component's own cell covers it.
            prop_assert!(tree.components_under(path[0]).contains(&comp));
            // Every cell on the path covers it too (restart at any ancestor
            // restarts the component).
            for &cell in &path {
                prop_assert!(tree.components_under(cell).contains(&comp));
            }
        }
    }

    /// lowest_cover returns a cell that covers the set, and no child of it does.
    #[test]
    fn lowest_cover_is_minimal(
        tree in arb_tree(8),
        ops in proptest::collection::vec(arb_op(), 0..16),
        picks in proptest::collection::vec(any::<usize>(), 1..4),
    ) {
        let mut tree = tree;
        for op in &ops {
            apply(&mut tree, op);
        }
        let comps = tree.components();
        let set: Vec<String> = picks.iter().map(|&i| comps[i % comps.len()].clone()).collect();
        let cover = tree.lowest_cover(&set).expect("components exist");
        let under = tree.components_under(cover);
        for c in &set {
            prop_assert!(under.contains(c));
        }
        for &child in tree.children(cover) {
            let child_under = tree.components_under(child);
            prop_assert!(
                !set.iter().all(|c| child_under.contains(c)),
                "child also covers the set — cover was not lowest"
            );
        }
    }

    /// §3.2 algebra: group MTTF ≤ min member MTTF, group MTTR ≥ max member MTTR.
    #[test]
    fn group_bounds_hold(values in proptest::collection::vec(0.1f64..1e6, 1..32)) {
        let mttf = group_mttf_bound_s(&values);
        let mttr = group_mttr_bound_s(&values);
        for &v in &values {
            prop_assert!(mttf <= v);
            prop_assert!(mttr >= v);
        }
        prop_assert!(values.contains(&mttf));
        prop_assert!(values.contains(&mttr));
    }

    /// to_spec/build round-trips any transformed tree.
    #[test]
    fn spec_round_trip_after_transformations(
        tree in arb_tree(8),
        ops in proptest::collection::vec(arb_op(), 0..16),
    ) {
        let mut tree = tree;
        for op in &ops {
            apply(&mut tree, op);
        }
        let rebuilt = tree.to_spec().build().expect("round trip");
        prop_assert_eq!(rebuilt, tree);
    }
}

#![allow(clippy::disallowed_methods)]
//! Property tests for the analytic MTTR model, encoding the paper's own
//! monotonicity arguments:
//!
//! * §4.1: depth augmentation never increases expected MTTR under a perfect
//!   oracle (more buttons cannot hurt an oracle that always pushes the right
//!   one);
//! * §4.4: "there is nothing that a perfect oracle could do in tree V but
//!   not in tree IV" — flattening/consolidating can only remove options, so
//!   a perfect oracle's expected MTTR is monotone in tree refinement;
//! * a faulty oracle's expected recovery is monotone in its error rate;
//! * availability is monotone in MTTF and antitone in MTTR.

use rr_core::analysis::{availability, expected_system_mttr_s, OracleQuality, SimpleCostModel};
use rr_core::model::{FailureMode, FailureModel};
use rr_core::transform::{depth_augment, flatten};
use rr_core::tree::{RestartTree, TreeSpec};
use rr_sim::{check, SimRng};

/// A randomized station: components c0..c(n-1) with random boot costs, plus
/// a failure model mixing solo and pairwise-correlated modes.
#[derive(Debug, Clone)]
struct Scenario {
    components: Vec<String>,
    cost: SimpleCostModel,
    model: FailureModel,
}

fn arb_scenario(rng: &mut SimRng) -> Scenario {
    let n = 2 + rng.next_below(3) as usize;
    let boots: Vec<f64> = (0..5).map(|_| rng.uniform(0.5, 30.0)).collect();
    let rates: Vec<f64> = (0..8).map(|_| rng.uniform(0.01, 10.0)).collect();
    let seed = rng.next_u64();
    let components: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
    let mut cost = SimpleCostModel::new(1.0, 2.0).with_contention(0.0119);
    for (i, comp) in components.iter().enumerate() {
        cost = cost.with_boot(comp.clone(), boots[i % boots.len()]);
    }
    let mut model = FailureModel::new();
    for (i, comp) in components.iter().enumerate() {
        model.push(
            FailureMode::solo(format!("solo-{comp}"), comp.clone(), rates[i % rates.len()])
                .unwrap(),
        );
    }
    // One correlated pair, chosen pseudo-randomly.
    if n >= 2 {
        let a = (seed as usize) % n;
        let b = (a + 1 + (seed as usize / 7) % (n - 1)) % n;
        if a != b {
            model.push(
                FailureMode::correlated(
                    "pair",
                    components[a].clone(),
                    [components[a].clone(), components[b].clone()],
                    rates[(seed as usize) % rates.len()],
                )
                .unwrap(),
            );
        }
    }
    Scenario {
        components,
        cost,
        model,
    }
}

fn flat_tree(components: &[String]) -> RestartTree {
    TreeSpec::cell("root")
        .with_components(components.to_vec())
        .build()
        .expect("flat tree")
}

/// Depth augmentation (tree I → tree II) never increases expected MTTR
/// under a perfect oracle.
#[test]
fn augmentation_never_hurts_perfect_oracle() {
    check::run("augmentation_never_hurts_perfect_oracle", 128, |rng| {
        let s = arb_scenario(rng);
        let flat = flat_tree(&s.components);
        let before =
            expected_system_mttr_s(&flat, &s.model, &s.cost, OracleQuality::Perfect).unwrap();
        let mut augmented = flat.clone();
        let root = augmented.root();
        let partition: Vec<Vec<String>> = s.components.iter().map(|c| vec![c.clone()]).collect();
        depth_augment(&mut augmented, root, &partition).unwrap();
        let after =
            expected_system_mttr_s(&augmented, &s.model, &s.cost, OracleQuality::Perfect).unwrap();
        assert!(
            after <= before + 1e-9,
            "augmenting raised MTTR: {before:.3} -> {after:.3}"
        );
    });
}

/// Dually, flattening (removing buttons) never helps a perfect oracle.
#[test]
fn flattening_never_helps_perfect_oracle() {
    check::run("flattening_never_helps_perfect_oracle", 128, |rng| {
        let s = arb_scenario(rng);
        let mut tree = flat_tree(&s.components);
        let root = tree.root();
        let partition: Vec<Vec<String>> = s.components.iter().map(|c| vec![c.clone()]).collect();
        depth_augment(&mut tree, root, &partition).unwrap();
        let refined =
            expected_system_mttr_s(&tree, &s.model, &s.cost, OracleQuality::Perfect).unwrap();
        flatten(&mut tree, root).unwrap();
        let flattened =
            expected_system_mttr_s(&tree, &s.model, &s.cost, OracleQuality::Perfect).unwrap();
        assert!(flattened >= refined - 1e-9);
    });
}

/// Expected recovery is monotone non-decreasing in the oracle error rate.
#[test]
fn faulty_oracle_cost_monotone_in_error_rate() {
    check::run("faulty_oracle_cost_monotone_in_error_rate", 128, |rng| {
        let s = arb_scenario(rng);
        let mut tree = flat_tree(&s.components);
        let root = tree.root();
        let partition: Vec<Vec<String>> = s.components.iter().map(|c| vec![c.clone()]).collect();
        depth_augment(&mut tree, root, &partition).unwrap();
        let mut last = 0.0;
        for p in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
            let v = expected_system_mttr_s(
                &tree,
                &s.model,
                &s.cost,
                OracleQuality::Faulty { undershoot: p },
            )
            .unwrap();
            assert!(v >= last - 1e-9, "p={p}: {v:.3} < {last:.3}");
            last = v;
        }
    });
}

/// The faulty oracle at p=0 equals the perfect oracle.
#[test]
fn zero_error_rate_is_perfect() {
    check::run("zero_error_rate_is_perfect", 128, |rng| {
        let s = arb_scenario(rng);
        let tree = flat_tree(&s.components);
        let a = expected_system_mttr_s(&tree, &s.model, &s.cost, OracleQuality::Perfect).unwrap();
        let b = expected_system_mttr_s(
            &tree,
            &s.model,
            &s.cost,
            OracleQuality::Faulty { undershoot: 0.0 },
        )
        .unwrap();
        assert!((a - b).abs() < 1e-12);
    });
}

/// Availability algebra: monotone in MTTF, antitone in MTTR, bounded in
/// (0, 1).
#[test]
fn availability_monotonicity() {
    check::run("availability_monotonicity", 256, |rng| {
        let mttf = rng.uniform(1.0, 1e9);
        let mttr = rng.uniform(0.001, 1e6);
        let bump = rng.uniform(1.001, 10.0);
        let a = availability(mttf, mttr).unwrap();
        assert!(a > 0.0 && a < 1.0);
        assert!(availability(mttf * bump, mttr).unwrap() > a);
        assert!(availability(mttf, mttr * bump).unwrap() < a);
    });
}

/// The system MTTR is a convex combination of per-mode recoveries: it
/// lies between the cheapest and most expensive mode.
#[test]
fn system_mttr_bounded_by_modes() {
    check::run("system_mttr_bounded_by_modes", 128, |rng| {
        use rr_core::analysis::expected_mode_recovery_s;
        let s = arb_scenario(rng);
        let tree = flat_tree(&s.components);
        let sys = expected_system_mttr_s(&tree, &s.model, &s.cost, OracleQuality::Perfect).unwrap();
        let per_mode: Vec<f64> = s
            .model
            .modes()
            .iter()
            .map(|m| expected_mode_recovery_s(&tree, m, &s.cost, OracleQuality::Perfect).unwrap())
            .collect();
        let lo = per_mode.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = per_mode.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(sys >= lo - 1e-9 && sys <= hi + 1e-9);
    });
}

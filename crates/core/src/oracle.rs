//! Oracles: the restart policy that decides *which* cell to restart (§3.3).
//!
//! "A recoverer does not make any decisions as to which component needs to be
//! restarted — that is captured in the oracle, which represents the restart
//! policy. Based on information about which component has failed, the oracle
//! tells the recoverer which node in the tree to restart."
//!
//! Implementations:
//!
//! * [`PerfectOracle`] — embodies the *minimal restart policy* of §3.3: for a
//!   minimally n-curable failure it recommends exactly n. This is the
//!   `A_oracle` assumption; the paper's experiments realize it by telling the
//!   oracle the ground-truth cure requirement.
//! * [`NaiveOracle`] — knows nothing about failure correlation: always starts
//!   at the failed component's own cell and escalates on persistence. This is
//!   the oracle the paper describes operating tree III, which restarts
//!   ses, is told about the induced str failure, and then restarts str.
//! * [`FaultyOracle`] — the §4.4 experiment: behaves like [`PerfectOracle`]
//!   except that, with configurable probability, it guesses too low
//!   (recommends the failed component's own cell when a higher restart was
//!   minimally required).
//! * [`LearningOracle`] — the future-work oracle of §7: learns the `f_ci`
//!   cure probabilities from restart outcomes and converges toward the
//!   minimal restart policy without ground-truth knowledge.

use std::collections::HashMap;
use std::fmt;

use rr_sim::SimRng;

use crate::tree::{NodeId, RestartTree};

/// A failure episode as reported to the oracle.
///
/// `component` is the observable part (which liveness ping went unanswered).
/// `cure_set` is the ground truth injected by the fault model: the minimal
/// set of components whose joint restart cures the failure. Only oracles that
/// model perfect knowledge ([`PerfectOracle`], and [`FaultyOracle`] when it
/// does not err) read it; [`NaiveOracle`] and [`LearningOracle`] ignore it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The component whose failure was detected.
    pub component: String,
    /// Ground-truth minimal cure set (always contains `component`).
    pub cure_set: Vec<String>,
}

impl Failure {
    /// A failure curable by restarting just the component it manifests in.
    pub fn solo(component: impl Into<String>) -> Failure {
        let component = component.into();
        Failure {
            cure_set: vec![component.clone()],
            component,
        }
    }

    /// A failure that manifests in `component` but is only curable by
    /// restarting all of `cure_set` together (which must include
    /// `component`).
    ///
    /// # Panics
    ///
    /// Panics if `cure_set` does not contain `component`.
    pub fn correlated<I, S>(component: impl Into<String>, cure_set: I) -> Failure
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let component = component.into();
        let cure_set: Vec<String> = cure_set.into_iter().map(Into::into).collect();
        assert!(
            cure_set.contains(&component),
            "cure set must include the component the failure manifests in"
        );
        Failure {
            component,
            cure_set,
        }
    }
}

/// What happened after a recommended restart — fed back to oracles that learn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartOutcome {
    /// The cell that was restarted.
    pub node: NodeId,
    /// `true` if the failure did not re-manifest.
    pub cured: bool,
}

/// The restart policy: recommends a cell to restart for a failure.
pub trait Oracle {
    /// Recommends the cell to restart.
    ///
    /// `attempt` is 0 for the first recommendation of an episode; when a
    /// restart fails to cure, the recoverer calls again with `attempt + 1`
    /// and `last` set to the previously restarted cell, and the oracle is
    /// expected to move **up** the tree (§3.3).
    fn recommend(
        &mut self,
        tree: &RestartTree,
        failure: &Failure,
        attempt: u32,
        last: Option<NodeId>,
    ) -> NodeId;

    /// Feedback after a restart completes and the cure is (or is not)
    /// confirmed. Default: ignored.
    fn observe(&mut self, failure: &Failure, outcome: RestartOutcome) {
        let _ = (failure, outcome);
    }

    /// Short name for reports ("perfect", "faulty(0.30)", …).
    fn describe(&self) -> String;
}

impl fmt::Debug for dyn Oracle + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oracle({})", self.describe())
    }
}

impl<T: Oracle + ?Sized> Oracle for Box<T> {
    fn recommend(
        &mut self,
        tree: &RestartTree,
        failure: &Failure,
        attempt: u32,
        last: Option<NodeId>,
    ) -> NodeId {
        (**self).recommend(tree, failure, attempt, last)
    }

    fn observe(&mut self, failure: &Failure, outcome: RestartOutcome) {
        (**self).observe(failure, outcome);
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// Escalation: the parent of `last`, or the root if `last` is the root.
/// All provided oracles use this for attempts after the first.
pub fn escalate(tree: &RestartTree, last: NodeId) -> NodeId {
    tree.parent(last).unwrap_or(last)
}

/// The minimal-restart-policy oracle (`A_oracle`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfectOracle;

impl PerfectOracle {
    /// Creates a perfect oracle.
    pub fn new() -> PerfectOracle {
        PerfectOracle
    }
}

impl Oracle for PerfectOracle {
    fn recommend(
        &mut self,
        tree: &RestartTree,
        failure: &Failure,
        _attempt: u32,
        last: Option<NodeId>,
    ) -> NodeId {
        if let Some(last) = last {
            // A perfect oracle's first recommendation cures any restart-curable
            // failure; being asked again means a *new* (possibly induced)
            // failure arrived mid-episode. Climb, as the paper's oracle does.
            return escalate(tree, last);
        }
        tree.lowest_cover(&failure.cure_set)
            .unwrap_or_else(|_| tree.root())
    }

    fn describe(&self) -> String {
        "perfect".to_string()
    }
}

/// An oracle with no correlated-failure knowledge: starts at the failed
/// component's cell and escalates one level per failed attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveOracle;

impl NaiveOracle {
    /// Creates a naive oracle.
    pub fn new() -> NaiveOracle {
        NaiveOracle
    }
}

impl Oracle for NaiveOracle {
    fn recommend(
        &mut self,
        tree: &RestartTree,
        failure: &Failure,
        _attempt: u32,
        last: Option<NodeId>,
    ) -> NodeId {
        match last {
            Some(last) => escalate(tree, last),
            None => tree
                .cell_of_component(&failure.component)
                .unwrap_or_else(|| tree.root()),
        }
    }

    fn describe(&self) -> String {
        "naive".to_string()
    }
}

/// The §4.4 faulty oracle: perfect, except that with probability
/// `error_rate` it guesses too low on failures whose minimal cure is above
/// the failed component's own cell.
pub struct FaultyOracle {
    error_rate: f64,
    rng: SimRng,
    mistakes: u64,
    recommendations: u64,
}

impl fmt::Debug for FaultyOracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyOracle")
            .field("error_rate", &self.error_rate)
            .field("mistakes", &self.mistakes)
            .field("recommendations", &self.recommendations)
            .finish()
    }
}

impl FaultyOracle {
    /// Creates a faulty oracle that errs with probability `error_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `error_rate` is not in `[0, 1]`.
    pub fn new(error_rate: f64, rng: SimRng) -> FaultyOracle {
        assert!(
            (0.0..=1.0).contains(&error_rate),
            "error rate {error_rate} outside [0, 1]"
        );
        FaultyOracle {
            error_rate,
            rng,
            mistakes: 0,
            recommendations: 0,
        }
    }

    /// How many guess-too-low mistakes it has made so far.
    pub fn mistakes(&self) -> u64 {
        self.mistakes
    }

    /// How many first-attempt recommendations it has made.
    pub fn recommendations(&self) -> u64 {
        self.recommendations
    }
}

impl Oracle for FaultyOracle {
    fn recommend(
        &mut self,
        tree: &RestartTree,
        failure: &Failure,
        _attempt: u32,
        last: Option<NodeId>,
    ) -> NodeId {
        if let Some(last) = last {
            return escalate(tree, last);
        }
        self.recommendations += 1;
        let correct = tree
            .lowest_cover(&failure.cure_set)
            .unwrap_or_else(|_| tree.root());
        let own = tree
            .cell_of_component(&failure.component)
            .unwrap_or_else(|| tree.root());
        // A mistake is only possible when the tree offers a too-low button:
        // in tree V, pbcom's own cell *is* the joint cell, so the guess-too-low
        // mistake is structurally impossible (§4.4).
        if own != correct && self.rng.chance(self.error_rate) {
            self.mistakes += 1;
            own
        } else {
            correct
        }
    }

    fn describe(&self) -> String {
        format!("faulty({:.2})", self.error_rate)
    }
}

/// The learning oracle proposed as future work in §7: estimates, per failed
/// component, the probability that a restart at each cell of its escalation
/// path cures the failure (the `f_ci` values), and recommends the lowest cell
/// whose smoothed estimate clears a confidence threshold.
pub struct LearningOracle {
    /// Laplace-smoothed (successes, trials) per (component, cell).
    counts: HashMap<(String, NodeId), (u64, u64)>,
    /// Recommend the lowest cell with estimated cure probability ≥ threshold.
    threshold: f64,
}

impl fmt::Debug for LearningOracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LearningOracle")
            .field("threshold", &self.threshold)
            .field("tracked", &self.counts.len())
            .finish()
    }
}

impl LearningOracle {
    /// Creates a learning oracle with the given confidence threshold
    /// (e.g. 0.5: recommend the lowest cell believed to cure at least half
    /// of this component's failures).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 1)`.
    pub fn new(threshold: f64) -> LearningOracle {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold {threshold} outside (0, 1)"
        );
        LearningOracle {
            counts: HashMap::new(),
            threshold,
        }
    }

    /// The smoothed estimate that restarting `cell` cures a failure of
    /// `component`: `(successes + 1) / (trials + 2)`. Untried cells start
    /// optimistic at 0.5.
    pub fn estimate(&self, component: &str, cell: NodeId) -> f64 {
        let (s, t) = self
            .counts
            .get(&(component.to_string(), cell))
            .copied()
            .unwrap_or((0, 0));
        (s as f64 + 1.0) / (t as f64 + 2.0)
    }
}

impl Oracle for LearningOracle {
    fn recommend(
        &mut self,
        tree: &RestartTree,
        failure: &Failure,
        _attempt: u32,
        last: Option<NodeId>,
    ) -> NodeId {
        if let Some(last) = last {
            return escalate(tree, last);
        }
        let path = tree
            .restart_path(&failure.component)
            .unwrap_or_else(|_| vec![tree.root()]);
        for &cell in &path {
            if self.estimate(&failure.component, cell) >= self.threshold {
                return cell;
            }
        }
        *path
            .last()
            .unwrap_or_else(|| unreachable!("path includes the root"))
    }

    fn observe(&mut self, failure: &Failure, outcome: RestartOutcome) {
        let entry = self
            .counts
            .entry((failure.component.clone(), outcome.node))
            .or_insert((0, 0));
        entry.1 += 1;
        if outcome.cured {
            entry.0 += 1;
        }
    }

    fn describe(&self) -> String {
        format!("learning({:.2})", self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeSpec;

    /// Tree IV: mbus | [fedr,pbcom]{fedr|pbcom} | {ses,str} | rtu.
    fn tree_iv() -> RestartTree {
        TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
            .with_child(
                TreeSpec::cell("R_[fedr,pbcom]")
                    .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
                    .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom")),
            )
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
            .build()
            .unwrap()
    }

    /// Tree V: pbcom promoted onto the joint cell.
    fn tree_v() -> RestartTree {
        let mut tree = tree_iv();
        crate::transform::promote_component(&mut tree, "pbcom").unwrap();
        tree
    }

    #[test]
    fn perfect_oracle_recommends_minimal_cell() {
        let tree = tree_iv();
        let mut oracle = PerfectOracle::new();
        let solo = Failure::solo("fedr");
        let cell = oracle.recommend(&tree, &solo, 0, None);
        assert_eq!(tree.label(cell), "R_fedr");

        let joint = Failure::correlated("pbcom", ["fedr", "pbcom"]);
        let cell = oracle.recommend(&tree, &joint, 0, None);
        assert_eq!(tree.label(cell), "R_[fedr,pbcom]");
        assert_eq!(oracle.describe(), "perfect");
    }

    #[test]
    fn naive_oracle_starts_low_and_escalates() {
        let tree = tree_iv();
        let mut oracle = NaiveOracle::new();
        let joint = Failure::correlated("pbcom", ["fedr", "pbcom"]);
        let first = oracle.recommend(&tree, &joint, 0, None);
        assert_eq!(tree.label(first), "R_pbcom");
        let second = oracle.recommend(&tree, &joint, 1, Some(first));
        assert_eq!(tree.label(second), "R_[fedr,pbcom]");
        let third = oracle.recommend(&tree, &joint, 2, Some(second));
        assert_eq!(third, tree.root());
        // Escalating from the root stays at the root.
        let fourth = oracle.recommend(&tree, &joint, 3, Some(third));
        assert_eq!(fourth, tree.root());
    }

    #[test]
    fn faulty_oracle_err_rate_is_respected() {
        let tree = tree_iv();
        let mut oracle = FaultyOracle::new(0.3, SimRng::new(42));
        let joint = Failure::correlated("pbcom", ["fedr", "pbcom"]);
        let n = 10_000;
        let mut low = 0;
        for _ in 0..n {
            let cell = oracle.recommend(&tree, &joint, 0, None);
            if tree.label(cell) == "R_pbcom" {
                low += 1;
            } else {
                assert_eq!(tree.label(cell), "R_[fedr,pbcom]");
            }
        }
        let rate = low as f64 / n as f64;
        assert!((0.27..0.33).contains(&rate), "mistake rate {rate}");
        assert_eq!(oracle.mistakes(), low);
        assert_eq!(oracle.recommendations(), n);
    }

    #[test]
    fn faulty_oracle_cannot_undershoot_in_tree_v() {
        // §4.4: "Tree V forces the two components to be restarted together on
        // all pbcom failures" — there is no too-low button.
        let tree = tree_v();
        let mut oracle = FaultyOracle::new(1.0, SimRng::new(7));
        let joint = Failure::correlated("pbcom", ["fedr", "pbcom"]);
        for _ in 0..100 {
            let cell = oracle.recommend(&tree, &joint, 0, None);
            assert_eq!(tree.components_under(cell), vec!["fedr", "pbcom"]);
        }
        assert_eq!(oracle.mistakes(), 0);
    }

    #[test]
    fn faulty_oracle_never_errs_on_solo_failures() {
        let tree = tree_iv();
        let mut oracle = FaultyOracle::new(1.0, SimRng::new(8));
        let solo = Failure::solo("rtu");
        let cell = oracle.recommend(&tree, &solo, 0, None);
        assert_eq!(tree.label(cell), "R_rtu");
        assert_eq!(oracle.mistakes(), 0);
    }

    #[test]
    fn faulty_zero_rate_is_perfect() {
        let tree = tree_iv();
        let mut faulty = FaultyOracle::new(0.0, SimRng::new(9));
        let mut perfect = PerfectOracle::new();
        let joint = Failure::correlated("pbcom", ["fedr", "pbcom"]);
        for _ in 0..50 {
            assert_eq!(
                faulty.recommend(&tree, &joint, 0, None),
                perfect.recommend(&tree, &joint, 0, None)
            );
        }
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn faulty_rejects_bad_rate() {
        FaultyOracle::new(1.5, SimRng::new(1));
    }

    #[test]
    fn learning_oracle_converges_to_joint_restart() {
        let tree = tree_iv();
        let mut oracle = LearningOracle::new(0.5);
        let joint_failure = Failure::correlated("pbcom", ["fedr", "pbcom"]);
        let own = tree.cell_of_component("pbcom").unwrap();
        let joint = tree.parent(own).unwrap();

        // Feed it episodes: restarting pbcom alone never cures; the joint
        // cell always does.
        for _ in 0..20 {
            let first = oracle.recommend(&tree, &joint_failure, 0, None);
            oracle.observe(
                &joint_failure,
                RestartOutcome {
                    node: first,
                    cured: first == joint,
                },
            );
            if first != joint {
                let second = oracle.recommend(&tree, &joint_failure, 1, Some(first));
                oracle.observe(
                    &joint_failure,
                    RestartOutcome {
                        node: second,
                        cured: second == joint,
                    },
                );
            }
        }
        // After enough evidence it should skip the pbcom-only cell.
        let rec = oracle.recommend(&tree, &joint_failure, 0, None);
        assert_eq!(
            rec,
            joint,
            "learned estimate: {}",
            oracle.estimate("pbcom", own)
        );
        assert!(oracle.estimate("pbcom", own) < 0.5);
        assert!(oracle.estimate("pbcom", joint) > 0.5);
    }

    #[test]
    fn learning_oracle_stays_low_for_solo_failures() {
        let tree = tree_iv();
        let mut oracle = LearningOracle::new(0.5);
        let solo = Failure::solo("fedr");
        let own = tree.cell_of_component("fedr").unwrap();
        for _ in 0..10 {
            let rec = oracle.recommend(&tree, &solo, 0, None);
            assert_eq!(rec, own);
            oracle.observe(
                &solo,
                RestartOutcome {
                    node: rec,
                    cured: true,
                },
            );
        }
        assert!(oracle.estimate("fedr", own) > 0.8);
    }

    #[test]
    fn correlated_failure_requires_membership() {
        let f = Failure::correlated("a", ["a", "b"]);
        assert_eq!(f.component, "a");
        assert_eq!(f.cure_set, vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "cure set must include")]
    fn correlated_rejects_foreign_component() {
        Failure::correlated("a", ["b", "c"]);
    }

    #[test]
    fn describe_strings() {
        assert_eq!(NaiveOracle::new().describe(), "naive");
        assert_eq!(
            FaultyOracle::new(0.3, SimRng::new(1)).describe(),
            "faulty(0.30)"
        );
        assert_eq!(LearningOracle::new(0.5).describe(), "learning(0.50)");
    }
}

//! Component deadline model: time-to-next-pass and criticality.
//!
//! The paper optimizes MTTR as if every restart can run the moment it is
//! planned, but a ground station is deadline-driven: a satellite pass is a
//! hard real-time window, and recovery work competes for the time remaining
//! before the next pass rises. A [`DeadlineModel`] attaches to each component
//! an absolute *deadline* (the instant by which it must be healthy again —
//! typically the next pass rise) and a small integer *criticality* (how much
//! a missed deadline hurts). From those the model derives **slack** — time
//! remaining until the deadline — and an [`Urgency`] ordering used by the
//! episode planner ([`crate::schedule`]) and the admission controller in
//! front of the recoverer: most-critical first, then least slack first.

use std::collections::BTreeMap;

use rr_sim::{SimDuration, SimTime};

/// Per-component deadlines and criticalities.
///
/// Components absent from the model have no deadline (infinite slack) and
/// the default criticality `0`. Deadlines are absolute instants; callers
/// advance them as passes come and go (e.g. Mercury re-derives them from the
/// orbit propagator whenever a recovery decision is made).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeadlineModel {
    deadlines: BTreeMap<String, SimTime>,
    criticality: BTreeMap<String, u8>,
}

/// The sort key deadline-aware scheduling uses: higher criticality first,
/// then smaller slack first; components without a deadline sort last.
/// Ordered so that `a < b` means `a` is **more urgent** than `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Urgency {
    /// Criticality, negated into "smaller is more urgent" form
    /// (`u8::MAX - criticality`).
    inverted_criticality: u8,
    /// Slack in nanoseconds; `u64::MAX` when no deadline applies.
    slack_nanos: u64,
}

impl Urgency {
    /// The least urgent possible key: no deadline, criticality 0.
    pub const RELAXED: Urgency = Urgency {
        inverted_criticality: u8::MAX,
        slack_nanos: u64::MAX,
    };
}

impl DeadlineModel {
    /// An empty model: every component has infinite slack, criticality 0.
    pub fn new() -> DeadlineModel {
        DeadlineModel::default()
    }

    /// `true` if no component has a deadline or a criticality set.
    pub fn is_empty(&self) -> bool {
        self.deadlines.is_empty() && self.criticality.is_empty()
    }

    /// Sets `component`'s absolute deadline (e.g. the next pass rise).
    pub fn set_deadline(&mut self, component: impl Into<String>, at: SimTime) {
        self.deadlines.insert(component.into(), at);
    }

    /// Removes `component`'s deadline (infinite slack again).
    pub fn clear_deadline(&mut self, component: &str) {
        self.deadlines.remove(component);
    }

    /// Sets `component`'s criticality (higher = more important).
    pub fn set_criticality(&mut self, component: impl Into<String>, level: u8) {
        self.criticality.insert(component.into(), level);
    }

    /// `component`'s deadline, if one is set.
    pub fn deadline_of(&self, component: &str) -> Option<SimTime> {
        self.deadlines.get(component).copied()
    }

    /// `component`'s criticality (0 if never set).
    pub fn criticality_of(&self, component: &str) -> u8 {
        self.criticality.get(component).copied().unwrap_or(0)
    }

    /// Time remaining until `component`'s deadline ([`SimDuration::ZERO`] if
    /// the deadline already passed), or `None` if it has no deadline.
    pub fn slack(&self, component: &str, now: SimTime) -> Option<SimDuration> {
        self.deadlines
            .get(component)
            .map(|d| d.saturating_since(now))
    }

    /// The urgency key for a single component at `now`.
    pub fn urgency(&self, component: &str, now: SimTime) -> Urgency {
        Urgency {
            inverted_criticality: u8::MAX - self.criticality_of(component),
            slack_nanos: self
                .slack(component, now)
                .map(|s| s.as_nanos())
                .unwrap_or(u64::MAX),
        }
    }

    /// The urgency of a whole group (e.g. a planned episode's components):
    /// the group inherits its most critical member's criticality and its
    /// tightest member's slack.
    pub fn group_urgency<I, S>(&self, components: I, now: SimTime) -> Urgency
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut best = Urgency::RELAXED;
        for c in components {
            let u = self.urgency(c.as_ref(), now);
            best = Urgency {
                inverted_criticality: best.inverted_criticality.min(u.inverted_criticality),
                slack_nanos: best.slack_nanos.min(u.slack_nanos),
            };
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn empty_model_is_all_relaxed() {
        let m = DeadlineModel::new();
        assert!(m.is_empty());
        assert_eq!(m.slack("rtu", t(5)), None);
        assert_eq!(m.criticality_of("rtu"), 0);
        assert_eq!(m.urgency("rtu", t(5)), Urgency::RELAXED);
    }

    #[test]
    fn slack_counts_down_and_saturates() {
        let mut m = DeadlineModel::new();
        m.set_deadline("fedr", t(100));
        assert_eq!(m.slack("fedr", t(40)), Some(SimDuration::from_secs(60)));
        assert_eq!(m.slack("fedr", t(150)), Some(SimDuration::ZERO));
        m.clear_deadline("fedr");
        assert_eq!(m.slack("fedr", t(40)), None);
    }

    #[test]
    fn urgency_orders_criticality_before_slack() {
        let mut m = DeadlineModel::new();
        m.set_deadline("low", t(10)); // tight slack, criticality 0
        m.set_deadline("high", t(1000)); // loose slack, criticality 2
        m.set_criticality("high", 2);
        let now = t(0);
        assert!(m.urgency("high", now) < m.urgency("low", now));
        // Equal criticality: the smaller slack wins.
        m.set_criticality("low", 2);
        assert!(m.urgency("low", now) < m.urgency("high", now));
        // Anything with a deadline beats the relaxed default.
        assert!(m.urgency("low", now) < m.urgency("absent", now));
    }

    #[test]
    fn group_urgency_takes_most_critical_and_tightest() {
        let mut m = DeadlineModel::new();
        m.set_deadline("a", t(50));
        m.set_deadline("b", t(20));
        m.set_criticality("a", 3);
        let g = m.group_urgency(["a", "b"], t(0));
        // Criticality 3 (from a), slack 20 s (from b).
        assert_eq!(g.inverted_criticality, u8::MAX - 3);
        assert_eq!(g.slack_nanos, SimDuration::from_secs(20).as_nanos());
        assert_eq!(
            m.group_urgency(Vec::<String>::new(), t(0)),
            Urgency::RELAXED
        );
    }
}

//! Restart policies: bounding restarts so "hard" failures are not looped on.
//!
//! §2.2: "The policy also keeps track of past restarts to prevent infinite
//! restarts of 'hard' failures." A [`RestartPolicy`] enforces two limits:
//!
//! * an **escalation limit** per failure episode — after climbing the tree
//!   this many times without a cure, the failure is declared not
//!   restart-curable (violating `A_cure`) and handed to a human;
//! * a **rate limit** per component — more than `max_restarts` restarts of
//!   the same component within `window` indicates a hard fault (e.g. failed
//!   hardware), which restarting cannot fix (§7).
//!
//! It can additionally impose an **exponential backoff** between successive
//! restarts of the same cell ([`RestartPolicy::with_backoff`]): the *n*-th
//! restart of a component within the rate window is delayed by
//! `base · 2^(n−1)`, capped. Backoff spaces out the restart storm a
//! persistently failing component would otherwise cause, while leaving the
//! first restart of a failure episode immediate.

use std::collections::VecDeque;
use std::fmt;

use rr_sim::{intern, CompId, FxHashMap, SimDuration, SimTime};

/// How a component's in-flight state is brought back after a restart —
/// the policy axis ROADMAP item 3 calls for (restart vs. checkpoint).
///
/// The paper's components re-derive lost state from scratch on every
/// restart (for ses/str, the §4.3 resync). With a crash-safe store
/// (`rr-store`) a component can instead *rehydrate*: replay its last
/// durable checkpoint plus journal tail, paying replay time proportional
/// to state size instead of the cold re-derivation — and paying a
/// periodic checkpoint-write cost while healthy. Which side wins depends
/// on failure rate and state size; the `repro checkpoint` experiment
/// maps the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RecoveryMode {
    /// Re-derive in-flight state from scratch (the paper's behaviour).
    #[default]
    ColdRestart,
    /// Rehydrate from the durable store, checkpointing every
    /// `checkpoint_interval_s` while healthy. Falls back to a cold
    /// restart when no checkpoint verifies (e.g. a corrupted journal).
    Rehydrate {
        /// Seconds between checkpoint writes while the component is
        /// healthy; bounds both the journal tail replayed on recovery
        /// and the state lost to a crash.
        checkpoint_interval_s: f64,
    },
}

impl RecoveryMode {
    /// `true` for any [`RecoveryMode::Rehydrate`] configuration.
    pub fn is_rehydrate(&self) -> bool {
        matches!(self, RecoveryMode::Rehydrate { .. })
    }
}

/// Why the policy refused to keep restarting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GiveUpReason {
    /// The escalation limit was reached: even a root restart did not cure.
    EscalationExhausted,
    /// The component was restarted too many times within the rate window —
    /// a hard failure is suspected.
    RestartStorm,
}

impl fmt::Display for GiveUpReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GiveUpReason::EscalationExhausted => {
                write!(f, "escalation exhausted: failure is not restart-curable")
            }
            GiveUpReason::RestartStorm => {
                write!(f, "restart storm: hard failure suspected")
            }
        }
    }
}

/// Configurable restart-bounding policy.
///
/// ```
/// use rr_core::policy::RestartPolicy;
/// use rr_sim::SimDuration;
/// let policy = RestartPolicy::new()
///     .with_escalation_limit(4)
///     .with_rate_limit(10, SimDuration::from_secs(3600));
/// assert_eq!(policy.escalation_limit(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RestartPolicy {
    escalation_limit: u32,
    max_restarts: u32,
    window: SimDuration,
    backoff_base: SimDuration,
    backoff_cap: SimDuration,
    /// Restart timestamps per component, keyed by interned handle. Never
    /// iterated (lookups only), so the hash order can't leak into output;
    /// equality still holds across instances because interning is
    /// process-global (same name ⇒ same handle).
    history: FxHashMap<CompId, VecDeque<SimTime>>,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy::new()
    }
}

impl RestartPolicy {
    /// A policy with generous defaults: 8 escalations per episode, at most
    /// 20 restarts of any one component per hour, no backoff.
    pub fn new() -> RestartPolicy {
        RestartPolicy {
            escalation_limit: 8,
            max_restarts: 20,
            window: SimDuration::from_secs(3600),
            backoff_base: SimDuration::ZERO,
            backoff_cap: SimDuration::from_secs(30),
            history: FxHashMap::default(),
        }
    }

    /// Sets the per-episode escalation limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    #[must_use]
    pub fn with_escalation_limit(mut self, limit: u32) -> RestartPolicy {
        assert!(limit > 0, "escalation limit must be positive");
        self.escalation_limit = limit;
        self
    }

    /// Sets the per-component rate limit: at most `max_restarts` restarts in
    /// any sliding `window`.
    ///
    /// # Panics
    ///
    /// Panics if `max_restarts` is zero or the window is zero.
    #[must_use]
    pub fn with_rate_limit(mut self, max_restarts: u32, window: SimDuration) -> RestartPolicy {
        assert!(max_restarts > 0, "max_restarts must be positive");
        assert!(!window.is_zero(), "rate window must be positive");
        self.max_restarts = max_restarts;
        self.window = window;
        self
    }

    /// Enables exponential backoff between successive restarts of the same
    /// component: the *n*-th restart within the rate window is delayed by
    /// `base · 2^(n−1)`, never exceeding `cap`. A zero base disables
    /// backoff (the default).
    ///
    /// # Panics
    ///
    /// Panics if `cap < base`.
    #[must_use]
    pub fn with_backoff(mut self, base: SimDuration, cap: SimDuration) -> RestartPolicy {
        assert!(cap >= base, "backoff cap must be at least the base");
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// The configured backoff as `(base, cap)`.
    pub fn backoff(&self) -> (SimDuration, SimDuration) {
        (self.backoff_base, self.backoff_cap)
    }

    /// The configured escalation limit.
    pub fn escalation_limit(&self) -> u32 {
        self.escalation_limit
    }

    /// The configured rate limit as `(max_restarts, window)`.
    pub fn rate_limit(&self) -> (u32, SimDuration) {
        (self.max_restarts, self.window)
    }

    /// Checks whether another restart attempt is allowed.
    ///
    /// `attempt` is the 0-based escalation attempt within the current
    /// episode; `components` are the components that would be restarted.
    ///
    /// # Errors
    ///
    /// Returns the [`GiveUpReason`] if the attempt must not proceed.
    pub fn check(
        &self,
        attempt: u32,
        components: &[String],
        now: SimTime,
    ) -> Result<(), GiveUpReason> {
        if attempt >= self.escalation_limit {
            return Err(GiveUpReason::EscalationExhausted);
        }
        let cutoff = now
            .saturating_since(SimTime::ZERO)
            .saturating_sub(self.window);
        for comp in components {
            if let Some(times) = self.history.get(&intern(comp)) {
                let recent = times
                    .iter()
                    .filter(|t| t.saturating_since(SimTime::ZERO) >= cutoff)
                    .count();
                if recent >= self.max_restarts as usize {
                    return Err(GiveUpReason::RestartStorm);
                }
            }
        }
        Ok(())
    }

    /// How long the next restart of `components` should be delayed, given
    /// the restarts already recorded inside the rate window: zero for the
    /// first restart, `base · 2^(n−1)` (capped) once *n* prior restarts of
    /// any member component are on record. Call *before*
    /// [`record_restart`](Self::record_restart) for the new attempt.
    pub fn restart_delay(&self, components: &[String], now: SimTime) -> SimDuration {
        if self.backoff_base.is_zero() {
            return SimDuration::ZERO;
        }
        let cutoff = now
            .saturating_since(SimTime::ZERO)
            .saturating_sub(self.window);
        let prior = components
            .iter()
            .map(|comp| {
                self.history.get(&intern(comp)).map_or(0, |times| {
                    times
                        .iter()
                        .filter(|t| t.saturating_since(SimTime::ZERO) >= cutoff)
                        .count()
                })
            })
            .max()
            .unwrap_or(0);
        if prior == 0 {
            return SimDuration::ZERO;
        }
        let factor = 2f64.powi((prior - 1).min(62) as i32);
        self.backoff_base.mul_f64(factor).min(self.backoff_cap)
    }

    /// Records that `components` were restarted at `now`.
    pub fn record_restart(&mut self, components: &[String], now: SimTime) {
        for comp in components {
            let times = self.history.entry(intern(comp)).or_default();
            times.push_back(now);
            // Trim entries that have aged out of the window.
            while let Some(&front) = times.front() {
                if now.saturating_since(front) > self.window {
                    times.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Total recorded restarts of a component still inside the window as of
    /// the last [`record_restart`](Self::record_restart) call.
    pub fn recent_restarts(&self, component: &str) -> usize {
        self.history
            .get(&intern(component))
            .map_or(0, VecDeque::len)
    }

    /// Forgets all restart history (e.g. after maintenance).
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn comps(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn escalation_limit_enforced() {
        let policy = RestartPolicy::new().with_escalation_limit(3);
        let c = comps(&["x"]);
        assert!(policy.check(0, &c, t(0)).is_ok());
        assert!(policy.check(2, &c, t(0)).is_ok());
        assert_eq!(
            policy.check(3, &c, t(0)),
            Err(GiveUpReason::EscalationExhausted)
        );
    }

    #[test]
    fn rate_limit_trips_within_window() {
        let mut policy = RestartPolicy::new().with_rate_limit(3, SimDuration::from_secs(100));
        let c = comps(&["x"]);
        for i in 0..3 {
            assert!(policy.check(0, &c, t(i * 10)).is_ok());
            policy.record_restart(&c, t(i * 10));
        }
        assert_eq!(policy.check(0, &c, t(30)), Err(GiveUpReason::RestartStorm));
        assert_eq!(policy.recent_restarts("x"), 3);
    }

    #[test]
    fn rate_limit_recovers_after_window() {
        let mut policy = RestartPolicy::new().with_rate_limit(2, SimDuration::from_secs(100));
        let c = comps(&["x"]);
        policy.record_restart(&c, t(0));
        policy.record_restart(&c, t(10));
        assert!(policy.check(0, &c, t(50)).is_err());
        // 150s later, both restarts have aged out.
        assert!(policy.check(0, &c, t(160)).is_ok());
    }

    #[test]
    fn rate_limit_is_per_component() {
        let mut policy = RestartPolicy::new().with_rate_limit(1, SimDuration::from_secs(100));
        policy.record_restart(&comps(&["x"]), t(0));
        assert!(policy.check(0, &comps(&["y"]), t(1)).is_ok());
        assert!(policy.check(0, &comps(&["x"]), t(1)).is_err());
        // A group restart containing a throttled component is throttled.
        assert!(policy.check(0, &comps(&["y", "x"]), t(1)).is_err());
    }

    #[test]
    fn reset_clears_history() {
        let mut policy = RestartPolicy::new().with_rate_limit(1, SimDuration::from_secs(100));
        policy.record_restart(&comps(&["x"]), t(0));
        assert!(policy.check(0, &comps(&["x"]), t(1)).is_err());
        policy.reset();
        assert!(policy.check(0, &comps(&["x"]), t(1)).is_ok());
        assert_eq!(policy.recent_restarts("x"), 0);
    }

    #[test]
    fn backoff_disabled_by_default() {
        let mut policy = RestartPolicy::new();
        let c = comps(&["x"]);
        for i in 0..5 {
            policy.record_restart(&c, t(i * 10));
            assert_eq!(policy.restart_delay(&c, t(i * 10 + 5)), SimDuration::ZERO);
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = SimDuration::from_secs(1);
        let cap = SimDuration::from_secs(8);
        let mut policy = RestartPolicy::new().with_backoff(base, cap);
        let c = comps(&["x"]);
        assert_eq!(policy.restart_delay(&c, t(0)), SimDuration::ZERO);
        let mut want = [1u64, 2, 4, 8, 8, 8].into_iter();
        for i in 0..6 {
            policy.record_restart(&c, t(i * 10));
            let delay = policy.restart_delay(&c, t(i * 10 + 5));
            assert_eq!(
                delay,
                SimDuration::from_secs(want.next().unwrap()),
                "after {} restarts",
                i + 1
            );
        }
    }

    #[test]
    fn backoff_uses_worst_member_of_a_group() {
        let policy_base = SimDuration::from_secs(2);
        let mut policy = RestartPolicy::new().with_backoff(policy_base, SimDuration::from_secs(60));
        policy.record_restart(&comps(&["x"]), t(0));
        policy.record_restart(&comps(&["x"]), t(10));
        // y has never restarted, but a joint [x, y] restart inherits x's backoff.
        assert_eq!(
            policy.restart_delay(&comps(&["y"]), t(20)),
            SimDuration::ZERO
        );
        assert_eq!(
            policy.restart_delay(&comps(&["x", "y"]), t(20)),
            SimDuration::from_secs(4)
        );
    }

    #[test]
    fn prop_backoff_monotone_within_window() {
        // Within the rate window, successive restart delays of the same cell
        // never decrease, whatever the restart spacing.
        rr_sim::check::run("policy/backoff_monotone", 64, |rng| {
            let base = SimDuration::from_secs_f64(rng.uniform(0.1, 2.0));
            let cap = base.mul_f64(rng.uniform(1.0, 40.0));
            let window = SimDuration::from_secs(10_000);
            let mut policy = RestartPolicy::new()
                .with_backoff(base, cap)
                .with_rate_limit(64, window);
            let c = comps(&["x"]);
            let mut now = SimTime::ZERO;
            let mut last = SimDuration::ZERO;
            for _ in 0..rng.next_below(20) {
                now += SimDuration::from_secs_f64(rng.uniform(0.0, 100.0));
                let delay = policy.restart_delay(&c, now);
                assert!(delay >= last, "backoff shrank from {last:?} to {delay:?}");
                assert!(delay <= cap, "backoff {delay:?} above cap {cap:?}");
                last = delay;
                policy.record_restart(&c, now);
            }
        });
    }

    #[test]
    fn prop_backoff_window_forgets_old_restarts() {
        // Once every recorded restart has aged out of the window, the next
        // restart is immediate again and the storm counter is back to zero.
        rr_sim::check::run("policy/backoff_forgets", 64, |rng| {
            let window = SimDuration::from_secs_f64(rng.uniform(10.0, 1000.0));
            let mut policy = RestartPolicy::new()
                .with_backoff(SimDuration::from_secs(1), SimDuration::from_secs(600))
                .with_rate_limit(3, window);
            let c = comps(&["x"]);
            let n = 1 + rng.next_below(3);
            let mut now = SimTime::ZERO;
            for _ in 0..n {
                now += SimDuration::from_secs_f64(rng.uniform(0.0, window.as_secs_f64() / 4.0));
                policy.record_restart(&c, now);
            }
            // Step past the window: everything is forgotten.
            let later = now + window + SimDuration::from_secs(1);
            assert_eq!(policy.restart_delay(&c, later), SimDuration::ZERO);
            assert!(policy.check(0, &c, later).is_ok());
            // record_restart also trims the aged-out history.
            policy.record_restart(&c, later);
            assert_eq!(policy.recent_restarts("x"), 1);
        });
    }

    #[test]
    fn prop_reset_restores_clean_slate() {
        rr_sim::check::run("policy/reset_clean", 32, |rng| {
            let mut policy = RestartPolicy::new()
                .with_backoff(SimDuration::from_secs(1), SimDuration::from_secs(30))
                .with_rate_limit(2, SimDuration::from_secs(1000));
            let c = comps(&["x"]);
            let n = rng.next_below(6);
            let mut now = SimTime::ZERO;
            for _ in 0..n {
                now += SimDuration::from_secs_f64(rng.uniform(0.0, 50.0));
                policy.record_restart(&c, now);
            }
            policy.reset();
            assert_eq!(policy.recent_restarts("x"), 0);
            assert_eq!(policy.restart_delay(&c, now), SimDuration::ZERO);
            assert!(policy.check(0, &c, now).is_ok());
        });
    }

    #[test]
    #[should_panic(expected = "cap must be at least")]
    fn backoff_cap_below_base_rejected() {
        let _ = RestartPolicy::new()
            .with_backoff(SimDuration::from_secs(10), SimDuration::from_secs(1));
    }

    #[test]
    fn give_up_reasons_display() {
        assert!(GiveUpReason::EscalationExhausted
            .to_string()
            .contains("not restart-curable"));
        assert!(GiveUpReason::RestartStorm
            .to_string()
            .contains("hard failure"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_escalation_limit_rejected() {
        let _ = RestartPolicy::new().with_escalation_limit(0);
    }
}

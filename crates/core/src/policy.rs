//! Restart policies: bounding restarts so "hard" failures are not looped on.
//!
//! §2.2: "The policy also keeps track of past restarts to prevent infinite
//! restarts of 'hard' failures." A [`RestartPolicy`] enforces two limits:
//!
//! * an **escalation limit** per failure episode — after climbing the tree
//!   this many times without a cure, the failure is declared not
//!   restart-curable (violating `A_cure`) and handed to a human;
//! * a **rate limit** per component — more than `max_restarts` restarts of
//!   the same component within `window` indicates a hard fault (e.g. failed
//!   hardware), which restarting cannot fix (§7).

use std::collections::{HashMap, VecDeque};
use std::fmt;

use rr_sim::{SimDuration, SimTime};

/// Why the policy refused to keep restarting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GiveUpReason {
    /// The escalation limit was reached: even a root restart did not cure.
    EscalationExhausted,
    /// The component was restarted too many times within the rate window —
    /// a hard failure is suspected.
    RestartStorm,
}

impl fmt::Display for GiveUpReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GiveUpReason::EscalationExhausted => {
                write!(f, "escalation exhausted: failure is not restart-curable")
            }
            GiveUpReason::RestartStorm => {
                write!(f, "restart storm: hard failure suspected")
            }
        }
    }
}

/// Configurable restart-bounding policy.
///
/// ```
/// use rr_core::policy::RestartPolicy;
/// use rr_sim::SimDuration;
/// let policy = RestartPolicy::new()
///     .with_escalation_limit(4)
///     .with_rate_limit(10, SimDuration::from_secs(3600));
/// assert_eq!(policy.escalation_limit(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RestartPolicy {
    escalation_limit: u32,
    max_restarts: u32,
    window: SimDuration,
    history: HashMap<String, VecDeque<SimTime>>,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy::new()
    }
}

impl RestartPolicy {
    /// A policy with generous defaults: 8 escalations per episode, at most
    /// 20 restarts of any one component per hour.
    pub fn new() -> RestartPolicy {
        RestartPolicy {
            escalation_limit: 8,
            max_restarts: 20,
            window: SimDuration::from_secs(3600),
            history: HashMap::new(),
        }
    }

    /// Sets the per-episode escalation limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    #[must_use]
    pub fn with_escalation_limit(mut self, limit: u32) -> RestartPolicy {
        assert!(limit > 0, "escalation limit must be positive");
        self.escalation_limit = limit;
        self
    }

    /// Sets the per-component rate limit: at most `max_restarts` restarts in
    /// any sliding `window`.
    ///
    /// # Panics
    ///
    /// Panics if `max_restarts` is zero or the window is zero.
    #[must_use]
    pub fn with_rate_limit(mut self, max_restarts: u32, window: SimDuration) -> RestartPolicy {
        assert!(max_restarts > 0, "max_restarts must be positive");
        assert!(!window.is_zero(), "rate window must be positive");
        self.max_restarts = max_restarts;
        self.window = window;
        self
    }

    /// The configured escalation limit.
    pub fn escalation_limit(&self) -> u32 {
        self.escalation_limit
    }

    /// The configured rate limit as `(max_restarts, window)`.
    pub fn rate_limit(&self) -> (u32, SimDuration) {
        (self.max_restarts, self.window)
    }

    /// Checks whether another restart attempt is allowed.
    ///
    /// `attempt` is the 0-based escalation attempt within the current
    /// episode; `components` are the components that would be restarted.
    ///
    /// # Errors
    ///
    /// Returns the [`GiveUpReason`] if the attempt must not proceed.
    pub fn check(
        &self,
        attempt: u32,
        components: &[String],
        now: SimTime,
    ) -> Result<(), GiveUpReason> {
        if attempt >= self.escalation_limit {
            return Err(GiveUpReason::EscalationExhausted);
        }
        let cutoff = now.saturating_since(SimTime::ZERO).saturating_sub(self.window);
        for comp in components {
            if let Some(times) = self.history.get(comp) {
                let recent = times
                    .iter()
                    .filter(|t| t.saturating_since(SimTime::ZERO) >= cutoff)
                    .count();
                if recent >= self.max_restarts as usize {
                    return Err(GiveUpReason::RestartStorm);
                }
            }
        }
        Ok(())
    }

    /// Records that `components` were restarted at `now`.
    pub fn record_restart(&mut self, components: &[String], now: SimTime) {
        for comp in components {
            let times = self.history.entry(comp.clone()).or_default();
            times.push_back(now);
            // Trim entries that have aged out of the window.
            while let Some(&front) = times.front() {
                if now.saturating_since(front) > self.window {
                    times.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Total recorded restarts of a component still inside the window as of
    /// the last [`record_restart`](Self::record_restart) call.
    pub fn recent_restarts(&self, component: &str) -> usize {
        self.history.get(component).map_or(0, VecDeque::len)
    }

    /// Forgets all restart history (e.g. after maintenance).
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn comps(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn escalation_limit_enforced() {
        let policy = RestartPolicy::new().with_escalation_limit(3);
        let c = comps(&["x"]);
        assert!(policy.check(0, &c, t(0)).is_ok());
        assert!(policy.check(2, &c, t(0)).is_ok());
        assert_eq!(
            policy.check(3, &c, t(0)),
            Err(GiveUpReason::EscalationExhausted)
        );
    }

    #[test]
    fn rate_limit_trips_within_window() {
        let mut policy = RestartPolicy::new().with_rate_limit(3, SimDuration::from_secs(100));
        let c = comps(&["x"]);
        for i in 0..3 {
            assert!(policy.check(0, &c, t(i * 10)).is_ok());
            policy.record_restart(&c, t(i * 10));
        }
        assert_eq!(policy.check(0, &c, t(30)), Err(GiveUpReason::RestartStorm));
        assert_eq!(policy.recent_restarts("x"), 3);
    }

    #[test]
    fn rate_limit_recovers_after_window() {
        let mut policy = RestartPolicy::new().with_rate_limit(2, SimDuration::from_secs(100));
        let c = comps(&["x"]);
        policy.record_restart(&c, t(0));
        policy.record_restart(&c, t(10));
        assert!(policy.check(0, &c, t(50)).is_err());
        // 150s later, both restarts have aged out.
        assert!(policy.check(0, &c, t(160)).is_ok());
    }

    #[test]
    fn rate_limit_is_per_component() {
        let mut policy = RestartPolicy::new().with_rate_limit(1, SimDuration::from_secs(100));
        policy.record_restart(&comps(&["x"]), t(0));
        assert!(policy.check(0, &comps(&["y"]), t(1)).is_ok());
        assert!(policy.check(0, &comps(&["x"]), t(1)).is_err());
        // A group restart containing a throttled component is throttled.
        assert!(policy.check(0, &comps(&["y", "x"]), t(1)).is_err());
    }

    #[test]
    fn reset_clears_history() {
        let mut policy = RestartPolicy::new().with_rate_limit(1, SimDuration::from_secs(100));
        policy.record_restart(&comps(&["x"]), t(0));
        assert!(policy.check(0, &comps(&["x"]), t(1)).is_err());
        policy.reset();
        assert!(policy.check(0, &comps(&["x"]), t(1)).is_ok());
        assert_eq!(policy.recent_restarts("x"), 0);
    }

    #[test]
    fn give_up_reasons_display() {
        assert!(GiveUpReason::EscalationExhausted.to_string().contains("not restart-curable"));
        assert!(GiveUpReason::RestartStorm.to_string().contains("hard failure"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_escalation_limit_rejected() {
        let _ = RestartPolicy::new().with_escalation_limit(0);
    }
}

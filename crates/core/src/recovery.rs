//! Recursive recovery — the paper's §7 generalization of recursive
//! restartability:
//!
//! > "For cases where some of the system's components are using hard state,
//! > we are developing a general model of *recursively recoverable* systems.
//! > With recursive recovery, we can accommodate a wider range of recovery
//! > semantics, since each component is recovered using a custom procedure;
//! > restart is just one example of a recovery procedure."
//!
//! A component declares a [`RecoveryLadder`]: an ordered list of
//! [`RecoveryProcedure`]s from cheapest to most drastic (e.g. *reconnect* →
//! *restore checkpoint* → *restart*). Each procedure has a cost and a cure
//! probability; recovery tries them in order, exactly the way the oracle
//! climbs the restart tree. The expected-cost algebra here composes with the
//! restart-tree analysis: a ladder whose last rung is `Restart` degrades to
//! plain recursive restartability.

/// The kind of recovery action a procedure performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcedureKind {
    /// Re-establish connections / re-handshake without touching state.
    Reconnect,
    /// Roll soft state back to a recent checkpoint.
    RestoreCheckpoint,
    /// Full process restart (the classic RR action): state returns to the
    /// start state; cure probability is 1 for restart-curable failures
    /// (`A_cure`).
    Restart,
    /// A domain-specific procedure (e.g. "re-run database log recovery").
    Custom(String),
}

impl std::fmt::Display for ProcedureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcedureKind::Reconnect => f.write_str("reconnect"),
            ProcedureKind::RestoreCheckpoint => f.write_str("restore-checkpoint"),
            ProcedureKind::Restart => f.write_str("restart"),
            ProcedureKind::Custom(name) => write!(f, "custom({name})"),
        }
    }
}

/// One rung of a recovery ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryProcedure {
    /// What this procedure does.
    pub kind: ProcedureKind,
    /// Expected seconds to execute the procedure.
    pub cost_s: f64,
    /// Probability it cures a failure of the component, in `[0, 1]`.
    pub cure_probability: f64,
}

impl RecoveryProcedure {
    /// Creates a procedure.
    ///
    /// # Panics
    ///
    /// Panics if `cost_s` is negative/non-finite or `cure_probability` is
    /// outside `[0, 1]`.
    pub fn new(kind: ProcedureKind, cost_s: f64, cure_probability: f64) -> RecoveryProcedure {
        assert!(cost_s.is_finite() && cost_s >= 0.0, "invalid cost {cost_s}");
        assert!(
            (0.0..=1.0).contains(&cure_probability),
            "invalid cure probability {cure_probability}"
        );
        RecoveryProcedure {
            kind,
            cost_s,
            cure_probability,
        }
    }

    /// The canonical restart rung: cures every restart-curable failure
    /// (`A_cure`) at the given cost.
    pub fn restart(cost_s: f64) -> RecoveryProcedure {
        RecoveryProcedure::new(ProcedureKind::Restart, cost_s, 1.0)
    }
}

/// An ordered recovery ladder: procedures are attempted cheapest-first, each
/// failed attempt costing its full price plus `redetect_s` before the next
/// rung is tried.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryLadder {
    rungs: Vec<RecoveryProcedure>,
}

impl RecoveryLadder {
    /// Creates a ladder.
    ///
    /// # Panics
    ///
    /// Panics if `rungs` is empty or the final rung does not have cure
    /// probability 1 (recovery must terminate; in a restart-curable system
    /// the last rung is a restart).
    pub fn new(rungs: Vec<RecoveryProcedure>) -> RecoveryLadder {
        assert!(!rungs.is_empty(), "empty recovery ladder");
        let last = rungs
            .last()
            .unwrap_or_else(|| unreachable!("asserted non-empty"));
        assert!(
            (last.cure_probability - 1.0).abs() < 1e-12,
            "the final rung must be a guaranteed cure (A_cure); got {}",
            last.cure_probability
        );
        RecoveryLadder { rungs }
    }

    /// The classic RR ladder: restart only.
    pub fn restart_only(cost_s: f64) -> RecoveryLadder {
        RecoveryLadder::new(vec![RecoveryProcedure::restart(cost_s)])
    }

    /// The rungs, cheapest first.
    pub fn rungs(&self) -> &[RecoveryProcedure] {
        &self.rungs
    }

    /// Expected seconds to recover, given that failed rungs cost their full
    /// price plus `redetect_s` to notice the failure persists:
    ///
    /// `E = Σ_i P(reach rung i) · cost_i + P(rung i fails) · redetect`
    ///
    /// # Panics
    ///
    /// Panics if `redetect_s` is negative or non-finite.
    pub fn expected_cost_s(&self, redetect_s: f64) -> f64 {
        assert!(redetect_s.is_finite() && redetect_s >= 0.0);
        let mut reach_p = 1.0;
        let mut total = 0.0;
        for rung in &self.rungs {
            total += reach_p * rung.cost_s;
            let fail_p = reach_p * (1.0 - rung.cure_probability);
            total += fail_p * redetect_s;
            reach_p = fail_p;
        }
        total
    }

    /// Expected cost if the ladder skipped straight to its final rung —
    /// the plain-restart baseline the cheaper rungs are trying to beat.
    pub fn final_rung_cost_s(&self) -> f64 {
        self.rungs
            .last()
            .unwrap_or_else(|| unreachable!("ladder is never empty"))
            .cost_s
    }

    /// `true` if attempting the cheap rungs first is worthwhile in
    /// expectation, i.e. the ladder beats jumping straight to the last rung.
    pub fn ladder_pays_off(&self, redetect_s: f64) -> bool {
        self.expected_cost_s(redetect_s) < self.final_rung_cost_s()
    }

    /// The prefix of rungs worth keeping: drops any leading rung whose
    /// removal lowers the expected cost. Returns a new, optimal ladder
    /// (the final rung is always kept).
    pub fn optimized(&self, redetect_s: f64) -> RecoveryLadder {
        // With independence, each rung can be evaluated for inclusion
        // separately: rung i is worth attempting iff
        //   cost_i + (1 - p_i) * redetect < p_i * E_rest
        // where E_rest is the expected cost of everything after it. Compute
        // from the back.
        let mut kept: Vec<RecoveryProcedure> = vec![self
            .rungs
            .last()
            .unwrap_or_else(|| unreachable!("ladder is never empty"))
            .clone()];
        let mut e_rest = kept[0].cost_s;
        for rung in self.rungs.iter().rev().skip(1) {
            let attempt_cost = rung.cost_s + (1.0 - rung.cure_probability) * redetect_s;
            let saved = rung.cure_probability * e_rest;
            if attempt_cost < saved {
                kept.push(rung.clone());
                e_rest = attempt_cost + (1.0 - rung.cure_probability) * e_rest;
            }
        }
        kept.reverse();
        RecoveryLadder { rungs: kept }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mercury_pbcom_ladder() -> RecoveryLadder {
        // A hypothetical recursively-recoverable pbcom: reconnecting the
        // serial session cures 60% of failures in 2s; restoring the
        // negotiated-parameters checkpoint cures 90% of the rest in 5s;
        // a full restart (20.2s) is the backstop.
        RecoveryLadder::new(vec![
            RecoveryProcedure::new(ProcedureKind::Reconnect, 2.0, 0.6),
            RecoveryProcedure::new(ProcedureKind::RestoreCheckpoint, 5.0, 0.9),
            RecoveryProcedure::restart(20.2),
        ])
    }

    #[test]
    fn restart_only_ladder_costs_the_restart() {
        let l = RecoveryLadder::restart_only(20.2);
        assert_eq!(l.expected_cost_s(2.0), 20.2);
        assert!(!l.ladder_pays_off(2.0));
    }

    #[test]
    fn cheap_rungs_cut_expected_recovery() {
        let l = mercury_pbcom_ladder();
        let e = l.expected_cost_s(2.0);
        // By hand: 2 + 0.4*2 + 0.4*5 + 0.4*0.1*2 + 0.04*20.2 = 5.688
        assert!((e - 5.688).abs() < 1e-9, "expected cost {e}");
        assert!(l.ladder_pays_off(2.0));
        assert!(e < l.final_rung_cost_s() / 3.0);
    }

    #[test]
    fn expected_cost_is_monotone_in_redetect() {
        let l = mercury_pbcom_ladder();
        assert!(l.expected_cost_s(0.0) < l.expected_cost_s(5.0));
    }

    #[test]
    fn optimized_drops_useless_rungs() {
        // A nearly-useless first rung (cures 1%, costs almost as much as a
        // restart) should be dropped.
        let l = RecoveryLadder::new(vec![
            RecoveryProcedure::new(ProcedureKind::Reconnect, 18.0, 0.01),
            RecoveryProcedure::restart(20.0),
        ]);
        let opt = l.optimized(2.0);
        assert_eq!(opt.rungs().len(), 1);
        assert_eq!(opt.rungs()[0].kind, ProcedureKind::Restart);
        assert!(opt.expected_cost_s(2.0) < l.expected_cost_s(2.0));
    }

    #[test]
    fn optimized_keeps_worthwhile_rungs() {
        let l = mercury_pbcom_ladder();
        let opt = l.optimized(2.0);
        assert_eq!(opt.rungs().len(), 3, "all rungs pay off here");
        assert_eq!(opt, l);
    }

    #[test]
    fn optimized_never_worse() {
        // Sweep a grid of two-rung ladders; the optimized ladder's cost is
        // always ≤ the original's and ≤ the restart-only cost.
        for cost in [0.5, 2.0, 10.0, 19.0] {
            for p in [0.05, 0.3, 0.6, 0.95] {
                let l = RecoveryLadder::new(vec![
                    RecoveryProcedure::new(ProcedureKind::Reconnect, cost, p),
                    RecoveryProcedure::restart(20.0),
                ]);
                let opt = l.optimized(2.0);
                assert!(opt.expected_cost_s(2.0) <= l.expected_cost_s(2.0) + 1e-12);
                assert!(opt.expected_cost_s(2.0) <= 20.0 + 1e-12);
            }
        }
    }

    #[test]
    fn display_kinds() {
        assert_eq!(ProcedureKind::Reconnect.to_string(), "reconnect");
        assert_eq!(
            ProcedureKind::Custom("vacuum".into()).to_string(),
            "custom(vacuum)"
        );
    }

    #[test]
    #[should_panic(expected = "final rung")]
    fn ladder_requires_guaranteed_final_rung() {
        RecoveryLadder::new(vec![RecoveryProcedure::new(
            ProcedureKind::Reconnect,
            1.0,
            0.5,
        )]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn ladder_rejects_empty() {
        RecoveryLadder::new(vec![]);
    }
}

//! Restart trees: the hierarchy of restart cells at the heart of recursive
//! restartability (§3.1 of the paper).
//!
//! A [`RestartTree`] is "a hierarchy of restartable components, in which nodes
//! are highly fault-isolated and a restart at a node will restart the entire
//! corresponding subtree". Each node is a *restart cell* — conceptually a
//! button that, when pushed, restarts every software component attached at or
//! below it. Subtrees are *restart groups* (§3.2).
//!
//! Components may be attached to any cell, not only leaves: node promotion
//! (§4.4) produces trees like tree V, where `pbcom` is attached to an internal
//! cell whose child cell holds `fedr` — pushing the `pbcom` button restarts
//! both, while the `fedr` button restarts `fedr` alone.
//!
//! ```
//! use rr_core::tree::RestartTree;
//!
//! // The example tree of Figure 2: R_ABC over R_A and R_BC; R_BC over R_B, R_C.
//! let mut tree = RestartTree::new("R_ABC");
//! let r_a = tree.add_cell(tree.root(), "R_A")?;
//! tree.attach_component(r_a, "A")?;
//! let r_bc = tree.add_cell(tree.root(), "R_BC")?;
//! let r_b = tree.add_cell(r_bc, "R_B")?;
//! tree.attach_component(r_b, "B")?;
//! let r_c = tree.add_cell(r_bc, "R_C")?;
//! tree.attach_component(r_c, "C")?;
//!
//! // Pushing the button on R_BC restarts both B and C.
//! assert_eq!(tree.components_under(r_bc), vec!["B", "C"]);
//! # Ok::<(), rr_core::TreeError>(())
//! ```

use std::collections::BTreeSet;
use std::fmt;

use crate::error::TreeError;

/// Identifies a restart cell within one [`RestartTree`].
///
/// Ids are stable for the lifetime of the tree: transformations that remove
/// cells tombstone their ids rather than reusing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    label: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    components: Vec<String>,
    alive: bool,
}

/// A tree of restart cells with software components attached.
#[derive(Debug, Clone)]
pub struct RestartTree {
    nodes: Vec<NodeData>,
    root: NodeId,
}

impl RestartTree {
    /// Creates a tree consisting of a single root cell.
    pub fn new(root_label: impl Into<String>) -> RestartTree {
        RestartTree {
            nodes: vec![NodeData {
                label: root_label.into(),
                parent: None,
                children: Vec::new(),
                components: Vec::new(),
                alive: true,
            }],
            root: NodeId(0),
        }
    }

    /// The root cell — restarting it reboots the whole system, which is why
    /// "the system as a whole is always a restart group" (§3.2).
    pub fn root(&self) -> NodeId {
        self.root
    }

    fn get(&self, id: NodeId) -> Result<&NodeData, TreeError> {
        self.nodes
            .get(id.0)
            .filter(|n| n.alive)
            .ok_or(TreeError::UnknownNode(id))
    }

    fn get_mut(&mut self, id: NodeId) -> Result<&mut NodeData, TreeError> {
        self.nodes
            .get_mut(id.0)
            .filter(|n| n.alive)
            .ok_or(TreeError::UnknownNode(id))
    }

    /// `true` if `id` names a live cell of this tree.
    pub fn contains(&self, id: NodeId) -> bool {
        self.get(id).is_ok()
    }

    /// Adds an empty child cell under `parent`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] if `parent` is not a live cell.
    pub fn add_cell(
        &mut self,
        parent: NodeId,
        label: impl Into<String>,
    ) -> Result<NodeId, TreeError> {
        self.get(parent)?;
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeData {
            label: label.into(),
            parent: Some(parent),
            children: Vec::new(),
            components: Vec::new(),
            alive: true,
        });
        self.nodes[parent.0].children.push(id);
        Ok(id)
    }

    /// Attaches a software component to a cell.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::DuplicateComponent`] if the component is already
    /// attached somewhere in the tree, or [`TreeError::UnknownNode`] if `cell`
    /// is not live.
    pub fn attach_component(
        &mut self,
        cell: NodeId,
        name: impl Into<String>,
    ) -> Result<(), TreeError> {
        let name = name.into();
        self.get(cell)?;
        if self.cell_of_component(&name).is_some() {
            return Err(TreeError::DuplicateComponent(name));
        }
        self.get_mut(cell)?.components.push(name);
        Ok(())
    }

    /// The cell's display label.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live cell.
    pub fn label(&self, id: NodeId) -> &str {
        &self
            .get(id)
            .unwrap_or_else(|_| panic!("not a live cell: {id}"))
            .label
    }

    /// Renames a cell.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] if `id` is not a live cell.
    pub fn set_label(&mut self, id: NodeId, label: impl Into<String>) -> Result<(), TreeError> {
        self.get_mut(id)?.label = label.into();
        Ok(())
    }

    /// The parent cell, or `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live cell.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.get(id)
            .unwrap_or_else(|_| panic!("not a live cell: {id}"))
            .parent
    }

    /// Child cells in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live cell.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self
            .get(id)
            .unwrap_or_else(|_| panic!("not a live cell: {id}"))
            .children
    }

    /// Components attached directly to this cell (not to descendants).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live cell.
    pub fn components_at(&self, id: NodeId) -> &[String] {
        &self
            .get(id)
            .unwrap_or_else(|_| panic!("not a live cell: {id}"))
            .components
    }

    /// `true` if the cell has no child cells.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live cell.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.children(id).is_empty()
    }

    /// All live cell ids in depth-first (pre-order) order from the root.
    pub fn cells(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            // Push children in reverse so pre-order visits them left-to-right.
            for &c in self.children(id).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Number of live cells.
    pub fn cell_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Every component in the tree, sorted.
    pub fn components(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .nodes
            .iter()
            .filter(|n| n.alive)
            .flat_map(|n| n.components.iter().cloned())
            .collect();
        out.sort();
        out
    }

    /// All components restarted when the button on `id` is pushed: those
    /// attached at `id` or at any descendant, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live cell.
    pub fn components_under(&self, id: NodeId) -> Vec<String> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let data = self
                .get(n)
                .unwrap_or_else(|_| panic!("not a live cell: {n}"));
            out.extend(data.components.iter().cloned());
            stack.extend(data.children.iter().copied());
        }
        out.sort();
        out
    }

    /// The cell a component is attached to, if any.
    pub fn cell_of_component(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .find(|(_, n)| n.components.iter().any(|c| c == name))
            .map(|(i, _)| NodeId(i))
    }

    /// The chain of cells from the component's own cell up to the root — the
    /// escalation path the oracle climbs when restarts fail to cure (§3.3).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownComponent`] if `name` is not attached.
    pub fn restart_path(&self, name: &str) -> Result<Vec<NodeId>, TreeError> {
        let start = self
            .cell_of_component(name)
            .ok_or_else(|| TreeError::UnknownComponent(name.to_string()))?;
        Ok(self.ancestors_inclusive(start))
    }

    /// `id` followed by its ancestors up to the root.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live cell.
    pub fn ancestors_inclusive(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// `true` if `anc` is `node` itself or one of its ancestors.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a live cell.
    pub fn is_ancestor_or_self(&self, anc: NodeId, node: NodeId) -> bool {
        self.ancestors_inclusive(node).contains(&anc)
    }

    /// `true` if restarting `a` and `b` concurrently would be unsafe: one
    /// cell's subtree contains the other (restarting a cell restarts every
    /// component under it, so an ancestor's episode already touches the
    /// descendant's components). Two distinct cells on separate branches —
    /// an *antichain* — never overlap.
    ///
    /// # Panics
    ///
    /// Panics if either id is not a live cell.
    pub fn overlaps(&self, a: NodeId, b: NodeId) -> bool {
        self.is_ancestor_or_self(a, b) || self.is_ancestor_or_self(b, a)
    }

    /// `true` if pushing `cell`'s restart button restarts `component` — the
    /// component is attached somewhere in `cell`'s subtree. Unknown
    /// components are covered by nothing. This is the footprint primitive
    /// rr-flow's action-independence analysis is built on: an action's
    /// write set is the components its cell covers.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not a live cell.
    pub fn covers(&self, cell: NodeId, component: &str) -> bool {
        self.cell_of_component(component)
            .is_some_and(|own| self.is_ancestor_or_self(cell, own))
    }

    /// The least common ancestor of two cells — the cell an overlapping pair
    /// of restart episodes is promoted to when they merge.
    ///
    /// # Panics
    ///
    /// Panics if either id is not a live cell.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let up_a = self.ancestors_inclusive(a);
        let up_b: BTreeSet<NodeId> = self.ancestors_inclusive(b).into_iter().collect();
        *up_a
            .iter()
            .find(|n| up_b.contains(n))
            .unwrap_or_else(|| unreachable!("cells of one tree always share the root"))
    }

    /// The lowest cell whose subtree covers every component in `names` — the
    /// minimal restart cell for a failure curable only by restarting that set
    /// together.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownComponent`] for any unattached name, or
    /// [`TreeError::InvalidTransform`] if `names` is empty.
    pub fn lowest_cover(&self, names: &[impl AsRef<str>]) -> Result<NodeId, TreeError> {
        let mut iter = names.iter();
        let first = iter
            .next()
            .ok_or_else(|| TreeError::invalid("lowest_cover", "empty component set"))?;
        let mut path = self.restart_path(first.as_ref())?;
        for name in iter {
            let other = self.restart_path(name.as_ref())?;
            let other_set: BTreeSet<NodeId> = other.into_iter().collect();
            path.retain(|n| other_set.contains(n));
        }
        Ok(*path
            .first()
            .unwrap_or_else(|| unreachable!("paths always share the root")))
    }

    /// Every restart group in the tree, as `(cell, components restarted by
    /// pushing its button)` pairs, in pre-order.
    pub fn groups(&self) -> Vec<(NodeId, Vec<String>)> {
        self.cells()
            .into_iter()
            .map(|id| (id, self.components_under(id)))
            .collect()
    }

    /// Detaches a component from its cell and attaches it to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownComponent`] / [`TreeError::UnknownNode`].
    pub(crate) fn move_component(&mut self, name: &str, to: NodeId) -> Result<(), TreeError> {
        let from = self
            .cell_of_component(name)
            .ok_or_else(|| TreeError::UnknownComponent(name.to_string()))?;
        self.get(to)?;
        let from_data = self.get_mut(from)?;
        from_data.components.retain(|c| c != name);
        self.get_mut(to)?.components.push(name.to_string());
        Ok(())
    }

    /// Detaches a component from the tree entirely.
    pub(crate) fn detach_component(&mut self, name: &str) -> Result<(), TreeError> {
        let from = self
            .cell_of_component(name)
            .ok_or_else(|| TreeError::UnknownComponent(name.to_string()))?;
        self.get_mut(from)?.components.retain(|c| c != name);
        Ok(())
    }

    /// Removes an empty, childless, non-root cell.
    pub(crate) fn remove_empty_cell(&mut self, id: NodeId) -> Result<(), TreeError> {
        if id == self.root {
            return Err(TreeError::CannotModifyRoot);
        }
        let data = self.get(id)?;
        if !data.children.is_empty() || !data.components.is_empty() {
            return Err(TreeError::invalid(
                "remove_empty_cell",
                format!("cell {id} still has children or components"),
            ));
        }
        let parent = data
            .parent
            .unwrap_or_else(|| unreachable!("non-root has a parent"));
        self.nodes[parent.0].children.retain(|&c| c != id);
        self.nodes[id.0].alive = false;
        Ok(())
    }

    /// Re-parents `child` under `new_parent` (used by transformations).
    pub(crate) fn reparent(&mut self, child: NodeId, new_parent: NodeId) -> Result<(), TreeError> {
        if child == self.root {
            return Err(TreeError::CannotModifyRoot);
        }
        self.get(new_parent)?;
        // Walk up from new_parent: it must not be inside child's subtree.
        let mut cur = Some(new_parent);
        while let Some(n) = cur {
            if n == child {
                return Err(TreeError::invalid(
                    "reparent",
                    "new parent is inside the moved subtree",
                ));
            }
            cur = self.parent(n);
        }
        let old_parent = self
            .get(child)?
            .parent
            .unwrap_or_else(|| unreachable!("non-root has a parent"));
        self.nodes[old_parent.0].children.retain(|&c| c != child);
        self.nodes[child.0].parent = Some(new_parent);
        self.nodes[new_parent.0].children.push(child);
        Ok(())
    }

    /// Checks structural invariants; returns a description of the first
    /// violation, if any. Used by tests and by the property suite.
    pub fn validate(&self) -> Result<(), String> {
        if !self.nodes[self.root.0].alive {
            return Err("root is dead".into());
        }
        if self.nodes[self.root.0].parent.is_some() {
            return Err("root has a parent".into());
        }
        let mut seen_components = BTreeSet::new();
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if reachable[id.0] {
                return Err(format!("{id} reachable twice (cycle or shared child)"));
            }
            reachable[id.0] = true;
            let data = &self.nodes[id.0];
            if !data.alive {
                return Err(format!("{id} is dead but reachable"));
            }
            for &c in &data.children {
                if self.nodes[c.0].parent != Some(id) {
                    return Err(format!("{c} parent link disagrees with child list of {id}"));
                }
                stack.push(c);
            }
            for comp in &data.components {
                if !seen_components.insert(comp.clone()) {
                    return Err(format!("component {comp:?} attached twice"));
                }
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.alive && !reachable[i] {
                return Err(format!("cell#{i} is alive but unreachable from the root"));
            }
        }
        Ok(())
    }

    /// Converts to the serializable, declarative [`TreeSpec`] form.
    pub fn to_spec(&self) -> TreeSpec {
        self.spec_of(self.root)
    }

    fn spec_of(&self, id: NodeId) -> TreeSpec {
        TreeSpec {
            label: self.label(id).to_string(),
            components: self.components_at(id).to_vec(),
            children: self.children(id).iter().map(|&c| self.spec_of(c)).collect(),
        }
    }
}

impl PartialEq for RestartTree {
    /// Structural equality: same shape, labels, and attached components,
    /// independent of internal id numbering.
    fn eq(&self, other: &Self) -> bool {
        self.to_spec() == other.to_spec()
    }
}

impl fmt::Display for RestartTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render::render_tree(self))
    }
}

/// A declarative, serializable description of a restart tree.
///
/// ```
/// use rr_core::tree::TreeSpec;
/// let spec = TreeSpec::cell("root")
///     .with_child(TreeSpec::cell("R_A").with_component("A"))
///     .with_child(TreeSpec::cell("R_B").with_component("B"));
/// let tree = spec.build()?;
/// assert_eq!(tree.components(), vec!["A".to_string(), "B".to_string()]);
/// assert_eq!(tree.to_spec(), spec);
/// # Ok::<(), rr_core::TreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeSpec {
    /// Cell label.
    pub label: String,
    /// Components attached directly to this cell.
    pub components: Vec<String>,
    /// Child cells.
    pub children: Vec<TreeSpec>,
}

impl TreeSpec {
    /// A cell with no components or children.
    pub fn cell(label: impl Into<String>) -> TreeSpec {
        TreeSpec {
            label: label.into(),
            components: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: attach a component.
    #[must_use]
    pub fn with_component(mut self, name: impl Into<String>) -> TreeSpec {
        self.components.push(name.into());
        self
    }

    /// Builder: attach several components.
    #[must_use]
    pub fn with_components<I, S>(mut self, names: I) -> TreeSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.components.extend(names.into_iter().map(Into::into));
        self
    }

    /// Builder: add a child cell.
    #[must_use]
    pub fn with_child(mut self, child: TreeSpec) -> TreeSpec {
        self.children.push(child);
        self
    }

    /// Materializes the spec as a [`RestartTree`].
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::DuplicateComponent`] if a component name appears
    /// more than once in the spec.
    pub fn build(&self) -> Result<RestartTree, TreeError> {
        let mut tree = RestartTree::new(self.label.clone());
        let root = tree.root();
        for comp in &self.components {
            tree.attach_component(root, comp.clone())?;
        }
        for child in &self.children {
            Self::build_into(&mut tree, root, child)?;
        }
        Ok(tree)
    }

    fn build_into(
        tree: &mut RestartTree,
        parent: NodeId,
        spec: &TreeSpec,
    ) -> Result<(), TreeError> {
        let id = tree.add_cell(parent, spec.label.clone())?;
        for comp in &spec.components {
            tree.attach_component(id, comp.clone())?;
        }
        for child in &spec.children {
            Self::build_into(tree, id, child)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 2 example: R_ABC { R_A{A}, R_BC { R_B{B}, R_C{C} } }.
    pub(crate) fn figure2() -> RestartTree {
        TreeSpec::cell("R_ABC")
            .with_child(TreeSpec::cell("R_A").with_component("A"))
            .with_child(
                TreeSpec::cell("R_BC")
                    .with_child(TreeSpec::cell("R_B").with_component("B"))
                    .with_child(TreeSpec::cell("R_C").with_component("C")),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn figure2_has_five_restart_groups() {
        let tree = figure2();
        // "The tree in Figure 2 contains 5 restart groups" (§3.2).
        assert_eq!(tree.groups().len(), 5);
        assert_eq!(tree.cell_count(), 5);
        tree.validate().unwrap();
    }

    #[test]
    fn components_under_covers_subtrees() {
        let tree = figure2();
        let r_bc = tree
            .cell_of_component("B")
            .and_then(|b| tree.parent(b))
            .unwrap();
        assert_eq!(tree.label(r_bc), "R_BC");
        assert_eq!(tree.components_under(r_bc), vec!["B", "C"]);
        assert_eq!(tree.components_under(tree.root()), vec!["A", "B", "C"]);
    }

    #[test]
    fn restart_path_climbs_to_root() {
        let tree = figure2();
        let path = tree.restart_path("C").unwrap();
        let labels: Vec<_> = path.iter().map(|&n| tree.label(n)).collect();
        assert_eq!(labels, vec!["R_C", "R_BC", "R_ABC"]);
        assert!(matches!(
            tree.restart_path("Z"),
            Err(TreeError::UnknownComponent(_))
        ));
    }

    #[test]
    fn lowest_cover_finds_minimal_cell() {
        let tree = figure2();
        let bc = tree.lowest_cover(&["B", "C"]).unwrap();
        assert_eq!(tree.label(bc), "R_BC");
        let ab = tree.lowest_cover(&["A", "B"]).unwrap();
        assert_eq!(tree.label(ab), "R_ABC");
        let b = tree.lowest_cover(&["B"]).unwrap();
        assert_eq!(tree.label(b), "R_B");
        let empty: &[&str] = &[];
        assert!(tree.lowest_cover(empty).is_err());
    }

    #[test]
    fn ancestry_lca_and_overlap() {
        let tree = figure2();
        let root = tree.root();
        let b = tree.cell_of_component("B").unwrap();
        let c = tree.cell_of_component("C").unwrap();
        let a = tree.cell_of_component("A").unwrap();
        let bc = tree.lowest_cover(&["B", "C"]).unwrap();

        assert!(tree.is_ancestor_or_self(b, b));
        assert!(tree.is_ancestor_or_self(bc, c));
        assert!(tree.is_ancestor_or_self(root, a));
        assert!(!tree.is_ancestor_or_self(b, c));
        assert!(!tree.is_ancestor_or_self(c, bc));

        assert_eq!(tree.lca(b, c), bc);
        assert_eq!(tree.lca(a, c), root);
        assert_eq!(tree.lca(b, b), b);
        assert_eq!(tree.lca(bc, c), bc);

        assert!(tree.overlaps(bc, c), "ancestor/descendant overlap");
        assert!(tree.overlaps(c, bc), "overlap is symmetric");
        assert!(tree.overlaps(b, b), "a cell overlaps itself");
        assert!(!tree.overlaps(b, c), "siblings form an antichain");
        assert!(!tree.overlaps(a, bc), "separate branches are independent");
    }

    #[test]
    fn duplicate_components_rejected() {
        let mut tree = RestartTree::new("r");
        let root = tree.root();
        tree.attach_component(root, "x").unwrap();
        assert_eq!(
            tree.attach_component(root, "x"),
            Err(TreeError::DuplicateComponent("x".into()))
        );
    }

    #[test]
    fn components_on_internal_cells_are_allowed() {
        // Tree V shape: pbcom attached to an internal cell with a fedr child.
        let mut tree = RestartTree::new("root");
        let joint = tree.add_cell(tree.root(), "R_pbcom").unwrap();
        tree.attach_component(joint, "pbcom").unwrap();
        let fedr = tree.add_cell(joint, "R_fedr").unwrap();
        tree.attach_component(fedr, "fedr").unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.components_under(joint), vec!["fedr", "pbcom"]);
        assert_eq!(tree.components_under(fedr), vec!["fedr"]);
        // A pbcom failure's minimal cell restarts both; fedr's restarts one.
        assert_eq!(tree.restart_path("pbcom").unwrap().len(), 2);
        assert_eq!(tree.restart_path("fedr").unwrap().len(), 3);
    }

    #[test]
    fn spec_round_trips() {
        let tree = figure2();
        let spec = tree.to_spec();
        let rebuilt = spec.build().unwrap();
        assert_eq!(rebuilt, tree);
    }

    #[test]
    fn spec_build_rejects_duplicates() {
        let spec = TreeSpec::cell("r")
            .with_component("x")
            .with_child(TreeSpec::cell("c").with_component("x"));
        assert!(matches!(
            spec.build(),
            Err(TreeError::DuplicateComponent(_))
        ));
    }

    #[test]
    fn cells_are_preorder() {
        let tree = figure2();
        let labels: Vec<_> = tree.cells().iter().map(|&n| tree.label(n)).collect();
        assert_eq!(labels, vec!["R_ABC", "R_A", "R_BC", "R_B", "R_C"]);
    }

    #[test]
    fn remove_and_reparent_maintain_invariants() {
        let mut tree = figure2();
        let r_b = tree.cell_of_component("B").unwrap();
        let r_bc = tree.parent(r_b).unwrap();
        // Move R_B up to the root, then R_C's cell too; R_BC becomes empty.
        tree.reparent(r_b, tree.root()).unwrap();
        let r_c = tree.cell_of_component("C").unwrap();
        tree.reparent(r_c, tree.root()).unwrap();
        tree.remove_empty_cell(r_bc).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.cell_count(), 4);
        assert!(!tree.contains(r_bc));
    }

    #[test]
    fn remove_non_empty_cell_fails() {
        let mut tree = figure2();
        let r_b = tree.cell_of_component("B").unwrap();
        let r_bc = tree.parent(r_b).unwrap();
        assert!(tree.remove_empty_cell(r_bc).is_err());
        assert!(tree.remove_empty_cell(tree.root()).is_err());
    }

    #[test]
    fn reparent_rejects_cycles() {
        let mut tree = figure2();
        let r_b = tree.cell_of_component("B").unwrap();
        let r_bc = tree.parent(r_b).unwrap();
        let err = tree.reparent(r_bc, r_b).unwrap_err();
        assert!(matches!(err, TreeError::InvalidTransform { .. }));
        tree.validate().unwrap();
    }

    #[test]
    fn move_component_between_cells() {
        let mut tree = figure2();
        let r_a = tree.cell_of_component("A").unwrap();
        tree.move_component("B", r_a).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.components_under(r_a), vec!["A", "B"]);
    }

    #[test]
    fn detach_component_removes_it() {
        let mut tree = figure2();
        tree.detach_component("A").unwrap();
        assert_eq!(tree.components(), vec!["B".to_string(), "C".to_string()]);
        assert!(tree.detach_component("A").is_err());
    }

    #[test]
    fn structural_equality_ignores_ids() {
        let a = figure2();
        let mut b = figure2();
        assert_eq!(a, b);
        b.detach_component("A").unwrap();
        assert_ne!(a, b);
    }
}

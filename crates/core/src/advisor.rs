//! The transformation advisor: Table 3's "useful when …" column as code.
//!
//! The paper summarizes when each restart-tree transformation applies:
//!
//! | Transformation | Useful when (Table 3) |
//! |---|---|
//! | keep a single group | all component MTTRs are roughly equal |
//! | depth augmentation | `f_A + f_B > 0` or `f_{A,B} > 0` |
//! | group consolidation | `f_A + f_B ≪ f_{A,B}` |
//! | node promotion | the oracle can guess wrong |
//!
//! Given a [`RestartTree`], a [`FailureModel`] (which carries the `f` values
//! as mode rates) and a [`CostModel`], the [`advise`] function evaluates those
//! conditions mechanically and emits the applicable recommendations with the
//! evidence behind each one. The §4 narrative — split fedrcom, consolidate
//! ses/str, promote pbcom — falls out of the Mercury failure model
//! automatically (see the tests).

use std::collections::BTreeMap;
use std::fmt;

use crate::analysis::CostModel;
use crate::model::FailureModel;
use crate::tree::{NodeId, RestartTree};

/// How asymmetric two components' solo-cure rates must be (relative to their
/// joint-cure rate) before consolidation is recommended: the paper's
/// `f_A + f_B ≪ f_{A,B}`, read as "at most this fraction".
const CONSOLIDATE_RATIO: f64 = 0.25;
/// Restart-cost ratio beyond which a pair is considered to have "highly
/// disparate" MTTRs (the fedrcom-split and pbcom-promotion trigger).
const DISPARATE_COST_RATIO: f64 = 2.0;

/// One recommendation from the advisor.
#[derive(Debug, Clone, PartialEq)]
pub enum Advice {
    /// Components fail together far more often than separately: collapse
    /// their cells into one (tree III → IV, §4.3).
    Consolidate {
        /// The components to merge into one cell.
        components: Vec<String>,
        /// Sum of solo-cure rates (`f_A + f_B`, per hour).
        solo_rate: f64,
        /// Joint-cure rate (`f_{A,B}`, per hour).
        joint_rate: f64,
    },
    /// Correlated failures exist (`f_{A,B} > 0`) alongside solo failures:
    /// give the pair a joint restart button while keeping the individual
    /// ones (tree II′ → III, §4.2).
    Group {
        /// The components needing a joint button.
        components: Vec<String>,
        /// Joint-cure rate (per hour).
        joint_rate: f64,
    },
    /// A cell holds several components with meaningful solo-cure rates:
    /// augment it so they restart independently (tree I → II, §4.1).
    Augment {
        /// The cell to augment.
        cell: NodeId,
        /// Its attached components.
        components: Vec<String>,
    },
    /// A high-MTTR component shares a joint failure mode with a low-MTTR
    /// one and the oracle may err: promote it so the guess-too-low mistake
    /// becomes impossible (tree IV → V, §4.4).
    Promote {
        /// The high-MTTR component to promote.
        component: String,
        /// Its cheap partner that keeps an individual button.
        partner: String,
        /// Cost ratio `restart(component) / restart(partner)`.
        cost_ratio: f64,
    },
}

impl fmt::Display for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Advice::Consolidate {
                components,
                solo_rate,
                joint_rate,
            } => write!(
                f,
                "consolidate [{}]: f_solo = {solo_rate:.3}/h << f_joint = {joint_rate:.3}/h",
                components.join(", ")
            ),
            Advice::Group {
                components,
                joint_rate,
            } => write!(
                f,
                "add a joint restart button over [{}]: f_joint = {joint_rate:.3}/h > 0",
                components.join(", ")
            ),
            Advice::Augment { components, .. } => write!(
                f,
                "depth-augment the cell holding [{}]: solo failures exist",
                components.join(", ")
            ),
            Advice::Promote {
                component,
                partner,
                cost_ratio,
            } => write!(
                f,
                "promote {component} over {partner}: restart cost ratio {cost_ratio:.1}x \
                 makes guess-too-low expensive"
            ),
        }
    }
}

/// Whether the advisor should account for oracle mistakes (node promotion is
/// only useful "when oracle is faulty", Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleAssumption {
    /// `A_oracle` holds: no promotions are recommended.
    Perfect,
    /// The oracle can guess wrong: recommend promotions.
    MayErr,
}

/// Evaluates Table 3's applicability conditions against the current tree and
/// failure model, returning the transformations worth applying (with the
/// numeric evidence).
pub fn advise(
    tree: &RestartTree,
    model: &FailureModel,
    cost: &dyn CostModel,
    oracle: OracleAssumption,
) -> Vec<Advice> {
    let mut advice = Vec::new();

    // Aggregate the f values: solo rate per component, joint rate per
    // (unordered) cure pair.
    let mut solo: BTreeMap<String, f64> = BTreeMap::new();
    let mut joint: BTreeMap<(String, String), f64> = BTreeMap::new();
    for mode in model.modes() {
        let mut cure = mode.cure_set.clone();
        cure.sort();
        cure.dedup();
        match cure.as_slice() {
            [single] => *solo.entry(single.clone()).or_insert(0.0) += mode.rate_per_hour,
            [a, b] => {
                *joint.entry((a.clone(), b.clone())).or_insert(0.0) += mode.rate_per_hour;
            }
            _ => {} // larger cure sets: no pairwise advice
        }
    }

    // 1. Augmentation: any cell directly holding ≥2 components with nonzero
    //    solo-cure rates (tree I's "total reboot shortcoming").
    for cell in tree.cells() {
        let comps = tree.components_at(cell);
        if comps.len() >= 2 {
            let solo_sum: f64 = comps
                .iter()
                .map(|c| solo.get(c).copied().unwrap_or(0.0))
                .sum();
            // Consolidated-by-design cells (ses/str) are exempt: their solo
            // rates are ~0 relative to the joint rate.
            let mut sorted = comps.to_vec();
            sorted.sort();
            let joint_rate = if let [a, b] = sorted.as_slice() {
                joint.get(&(a.clone(), b.clone())).copied().unwrap_or(0.0)
            } else {
                0.0
            };
            if solo_sum > 0.0 && solo_sum > CONSOLIDATE_RATIO * joint_rate {
                advice.push(Advice::Augment {
                    cell,
                    components: comps.to_vec(),
                });
            }
        }
    }

    for ((a, b), &joint_rate) in &joint {
        if joint_rate <= 0.0 {
            continue;
        }
        let (Some(cell_a), Some(cell_b)) = (tree.cell_of_component(a), tree.cell_of_component(b))
        else {
            continue;
        };
        let solo_a = solo.get(a).copied().unwrap_or(0.0);
        let solo_b = solo.get(b).copied().unwrap_or(0.0);
        let solo_sum = solo_a + solo_b;

        // 2. Consolidation: f_A + f_B ≪ f_{A,B} and they are in separate cells.
        if cell_a != cell_b && solo_sum <= CONSOLIDATE_RATIO * joint_rate {
            advice.push(Advice::Consolidate {
                components: vec![a.clone(), b.clone()],
                solo_rate: solo_sum,
                joint_rate,
            });
            continue;
        }

        // 3. Grouping: correlated failures with meaningful solo rates too —
        //    the pair needs a joint button *below the root* without giving up
        //    the individual ones.
        let cover = tree
            .lowest_cover(&[a.clone(), b.clone()])
            .unwrap_or_else(|_| unreachable!("components attached"));
        if cell_a != cell_b && cover == tree.root() && tree.children(tree.root()).len() > 2 {
            advice.push(Advice::Group {
                components: vec![a.clone(), b.clone()],
                joint_rate,
            });
        }

        // 4. Promotion: only when the oracle may err, the pair's restart
        //    costs are highly disparate, and the expensive side has its own
        //    (too-low) button.
        if oracle == OracleAssumption::MayErr {
            let cost_a = cost.restart_s(std::slice::from_ref(a));
            let cost_b = cost.restart_s(std::slice::from_ref(b));
            let (expensive, cheap, ratio) = if cost_a >= cost_b {
                (a, b, cost_a / cost_b.max(1e-9))
            } else {
                (b, a, cost_b / cost_a.max(1e-9))
            };
            let expensive_cell = tree
                .cell_of_component(expensive)
                .unwrap_or_else(|| unreachable!("cost table only names attached components"));
            let has_own_button = tree.components_under(expensive_cell) == vec![expensive.clone()];
            if ratio >= DISPARATE_COST_RATIO && has_own_button {
                advice.push(Advice::Promote {
                    component: expensive.clone(),
                    partner: cheap.clone(),
                    cost_ratio: ratio,
                });
            }
        }
    }

    advice
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SimpleCostModel;
    use crate::model::FailureMode;
    use crate::tree::TreeSpec;

    fn mercury_cost() -> SimpleCostModel {
        SimpleCostModel::new(1.0, 2.0)
            .with_boot("mbus", 4.73)
            .with_boot("fedr", 4.76)
            .with_boot("pbcom", 20.24)
            .with_boot("ses", 5.15)
            .with_boot("str", 5.01)
            .with_boot("rtu", 4.59)
    }

    fn mercury_model() -> FailureModel {
        FailureModel::new()
            .with_mode(FailureMode::solo("mbus", "mbus", 1.0 / 730.0).unwrap())
            .with_mode(FailureMode::solo("fedr", "fedr", 6.0).unwrap())
            .with_mode(FailureMode::solo("pbcom", "pbcom", 0.05).unwrap())
            .with_mode(
                FailureMode::correlated("pbcom-joint", "pbcom", ["fedr", "pbcom"], 0.4).unwrap(),
            )
            // ses/str: solo cures essentially never work (f_solo ≈ 0).
            .with_mode(FailureMode::correlated("ses", "ses", ["ses", "str"], 0.2).unwrap())
            .with_mode(FailureMode::correlated("str", "str", ["ses", "str"], 0.2).unwrap())
            .with_mode(FailureMode::solo("rtu", "rtu", 0.2).unwrap())
    }

    fn tree_ii_split() -> crate::tree::RestartTree {
        TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
            .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
            .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom"))
            .with_child(TreeSpec::cell("R_ses").with_component("ses"))
            .with_child(TreeSpec::cell("R_str").with_component("str"))
            .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
            .build()
            .unwrap()
    }

    #[test]
    fn flat_tree_gets_augmentation_advice() {
        let tree = TreeSpec::cell("mercury")
            .with_components(["mbus", "fedr", "pbcom", "ses", "str", "rtu"])
            .build()
            .unwrap();
        let advice = advise(
            &tree,
            &mercury_model(),
            &mercury_cost(),
            OracleAssumption::Perfect,
        );
        assert!(
            advice.iter().any(|a| matches!(a, Advice::Augment { .. })),
            "{advice:?}"
        );
    }

    #[test]
    fn ses_str_get_consolidation_advice() {
        let advice = advise(
            &tree_ii_split(),
            &mercury_model(),
            &mercury_cost(),
            OracleAssumption::Perfect,
        );
        let consolidation = advice.iter().find_map(|a| match a {
            Advice::Consolidate {
                components,
                solo_rate,
                joint_rate,
            } => Some((components.clone(), *solo_rate, *joint_rate)),
            _ => None,
        });
        let (comps, solo, joint) = consolidation.expect("ses/str consolidation advised");
        assert_eq!(comps, vec!["ses".to_string(), "str".to_string()]);
        assert!(solo < 0.25 * joint);
    }

    #[test]
    fn fedr_pbcom_get_grouping_not_consolidation() {
        // fedr fails solo constantly (6/h): merging it with pbcom would be
        // wrong; a joint button (grouping) is what Table 3 calls for.
        let advice = advise(
            &tree_ii_split(),
            &mercury_model(),
            &mercury_cost(),
            OracleAssumption::Perfect,
        );
        assert!(
            advice.iter().any(|a| matches!(
                a,
                Advice::Group { components, .. }
                if components == &vec!["fedr".to_string(), "pbcom".to_string()]
            )),
            "{advice:?}"
        );
        assert!(
            !advice.iter().any(|a| matches!(
                a,
                Advice::Consolidate { components, .. }
                if components.contains(&"fedr".to_string())
            )),
            "fedr must keep its own button: {advice:?}"
        );
    }

    #[test]
    fn promotion_only_with_faulty_oracle() {
        let perfect = advise(
            &tree_ii_split(),
            &mercury_model(),
            &mercury_cost(),
            OracleAssumption::Perfect,
        );
        assert!(
            !perfect.iter().any(|a| matches!(a, Advice::Promote { .. })),
            "Table 3: promotion is useful only when the oracle can err"
        );
        let faulty = advise(
            &tree_ii_split(),
            &mercury_model(),
            &mercury_cost(),
            OracleAssumption::MayErr,
        );
        let promo = faulty.iter().find_map(|a| match a {
            Advice::Promote {
                component,
                partner,
                cost_ratio,
            } => Some((component.clone(), partner.clone(), *cost_ratio)),
            _ => None,
        });
        let (component, partner, ratio) = promo.expect("pbcom promotion advised");
        assert_eq!(component, "pbcom");
        assert_eq!(partner, "fedr");
        assert!(
            ratio > 3.0,
            "pbcom restarts ~4x slower than fedr, got {ratio:.1}"
        );
    }

    #[test]
    fn tree_v_needs_no_further_advice() {
        // Once the paper's final tree is in place, the advisor is quiet
        // (modulo the grouping advice, which the joint cell satisfies).
        let tree_v = TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
            .with_child(
                TreeSpec::cell("R_[fedr,pbcom]")
                    .with_component("pbcom")
                    .with_child(TreeSpec::cell("R_fedr").with_component("fedr")),
            )
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
            .build()
            .unwrap();
        let advice = advise(
            &tree_v,
            &mercury_model(),
            &mercury_cost(),
            OracleAssumption::MayErr,
        );
        assert!(
            advice.is_empty(),
            "tree V satisfies every Table 3 condition, but got: {advice:?}"
        );
    }

    #[test]
    fn advice_displays_evidence() {
        let advice = advise(
            &tree_ii_split(),
            &mercury_model(),
            &mercury_cost(),
            OracleAssumption::MayErr,
        );
        for a in &advice {
            let s = a.to_string();
            assert!(!s.is_empty());
        }
        let text: Vec<String> = advice.iter().map(|a| a.to_string()).collect();
        assert!(text.iter().any(|s| s.contains("consolidate")), "{text:?}");
    }
}

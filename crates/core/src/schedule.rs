//! Dependency-aware parallel recovery scheduling.
//!
//! The paper shrinks MTTR by restarting the *smallest sufficient* subtree for
//! a single failure. When several components are suspected concurrently
//! (correlated faults, §4.4, or plain bad luck), the same idea generalizes:
//! recover each suspicion in its own minimal cell, **in parallel**, as long
//! as no two episodes touch the same part of the tree. The safety rule is an
//! *antichain* invariant — no planned episode's cell may be an ancestor or a
//! descendant of another's, because restarting a cell restarts everything
//! under it. Suspicions whose cells overlap are merged by promotion to the
//! least common ancestor (LCA), which by construction covers both cure sets.
//!
//! [`plan_episodes`] computes that plan: each suspicion maps to its target
//! cell (the caller picks it via the oracle, or [`Suspicion::cell`] defaults
//! to the tree's lowest cover of the cure set), and overlapping targets are
//! folded together until the surviving cells form a maximal antichain with
//! every suspected component covered by exactly one episode.

use std::collections::BTreeSet;

use rr_sim::SimTime;

use crate::deadline::DeadlineModel;
use crate::error::TreeError;
use crate::tree::{NodeId, RestartTree};

/// One concurrently-suspected component, with the cell recovery should
/// target for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suspicion {
    /// The suspected component.
    pub component: String,
    /// The restart cell recommended for it (oracle output, or the lowest
    /// cover of the failure's cure set).
    pub cell: NodeId,
}

impl Suspicion {
    /// A suspicion targeting the lowest cell covering `cure_set` (for a solo
    /// failure, the component's own cell).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownComponent`] for unattached names, or
    /// [`TreeError::InvalidTransform`] for an empty cure set.
    pub fn covering(
        tree: &RestartTree,
        component: impl Into<String>,
        cure_set: &[impl AsRef<str>],
    ) -> Result<Suspicion, TreeError> {
        Ok(Suspicion {
            component: component.into(),
            cell: tree.lowest_cover(cure_set)?,
        })
    }
}

/// One planned restart episode: a cell to restart and the suspicions it
/// recovers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedEpisode {
    /// The cell whose restart button to push.
    pub cell: NodeId,
    /// Every component restarted by pushing it, sorted.
    pub components: Vec<String>,
    /// The originating suspicions this episode answers, sorted. A singleton
    /// for an unmerged suspicion; several after an LCA merge.
    pub origins: Vec<String>,
}

/// A set of restart episodes safe to drive concurrently.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EpisodePlan {
    /// The planned episodes, ordered by the tree's pre-order cell sequence
    /// (deterministic for a given tree and suspicion set).
    pub episodes: Vec<PlannedEpisode>,
}

impl EpisodePlan {
    /// The planned cells.
    pub fn cells(&self) -> Vec<NodeId> {
        self.episodes.iter().map(|e| e.cell).collect()
    }

    /// Reorders the plan by deadline slack: most critical episode first,
    /// then least slack first ([`DeadlineModel::group_urgency`] over each
    /// episode's components). The sort is stable, so episodes the model is
    /// indifferent about keep their deterministic pre-order position — with
    /// an empty model this is a no-op.
    pub fn order_by_urgency(&mut self, deadlines: &DeadlineModel, now: SimTime) {
        if deadlines.is_empty() {
            return;
        }
        self.episodes
            .sort_by_key(|e| deadlines.group_urgency(&e.components, now));
    }

    /// Summary statistics for this plan, in a shape convenient for telemetry
    /// gauges: how many episodes survive the merge fixpoint, how many origin
    /// suspicions were folded together, and the blast radius.
    pub fn stats(&self) -> PlanStats {
        PlanStats {
            episodes: self.episodes.len(),
            origins: self.episodes.iter().map(|e| e.origins.len()).sum(),
            merged_origins: self
                .episodes
                .iter()
                .map(|e| e.origins.len().saturating_sub(1))
                .sum(),
            components_restarted: self.episodes.iter().map(|e| e.components.len()).sum(),
            widest_episode: self
                .episodes
                .iter()
                .map(|e| e.components.len())
                .max()
                .unwrap_or(0),
        }
    }
}

/// Aggregate statistics over an [`EpisodePlan`], produced by
/// [`EpisodePlan::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Episodes that survive the merge fixpoint (the antichain's width).
    pub episodes: usize,
    /// Total origin suspicions across all episodes.
    pub origins: usize,
    /// Origins beyond the first in each episode — i.e. how many suspicions
    /// were absorbed by an LCA merge rather than planned on their own.
    pub merged_origins: usize,
    /// Total components restarted across all episodes (no double counting:
    /// the plan covers each suspected component exactly once).
    pub components_restarted: usize,
    /// The largest single episode's component count (the worst blast radius).
    pub widest_episode: usize,
}

/// Computes the episode plan for a set of concurrent suspicions: merges
/// suspicions whose target cells overlap (promoting to the LCA, repeatedly,
/// until a fixpoint) and returns the surviving episodes — a maximal
/// antichain of restart cells in which every suspected component is covered
/// by exactly one episode.
///
/// Duplicate suspicions of the same component fold into one origin. The
/// result is deterministic: episodes are ordered by the tree's pre-order and
/// origins are sorted.
///
/// # Errors
///
/// Returns [`TreeError::UnknownNode`] if a suspicion's cell is not a live
/// cell of `tree`.
pub fn plan_episodes(
    tree: &RestartTree,
    suspicions: &[Suspicion],
) -> Result<EpisodePlan, TreeError> {
    for s in suspicions {
        if !tree.contains(s.cell) {
            return Err(TreeError::UnknownNode(s.cell));
        }
    }
    // Working set of (cell, origins). Start with one group per suspicion;
    // duplicates of a component fold immediately.
    let mut groups: Vec<(NodeId, BTreeSet<String>)> = Vec::new();
    for s in suspicions {
        if let Some(g) = groups.iter_mut().find(|(_, o)| o.contains(&s.component)) {
            g.0 = if g.0 == s.cell {
                g.0
            } else {
                tree.lca(g.0, s.cell)
            };
            continue;
        }
        let mut origins = BTreeSet::new();
        origins.insert(s.component.clone());
        groups.push((s.cell, origins));
    }
    // Fixpoint: merge any overlapping pair by promotion to the LCA. A merge
    // can only move cells *up*, so this terminates (the root overlaps
    // everything and absorbs all).
    loop {
        let mut merged = false;
        'scan: for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                if tree.overlaps(groups[i].0, groups[j].0) {
                    let (cell_j, origins_j) = groups.remove(j);
                    let g = &mut groups[i];
                    g.0 = if g.0 == cell_j {
                        g.0
                    } else {
                        tree.lca(g.0, cell_j)
                    };
                    g.1.extend(origins_j);
                    merged = true;
                    break 'scan;
                }
            }
        }
        if !merged {
            break;
        }
    }
    // Deterministic order: the tree's pre-order cell sequence.
    let order = tree.cells();
    groups.sort_by_key(|(cell, _)| order.iter().position(|c| c == cell));
    let episodes = groups
        .into_iter()
        .map(|(cell, origins)| PlannedEpisode {
            cell,
            components: tree.components_under(cell),
            origins: origins.into_iter().collect(),
        })
        .collect();
    Ok(EpisodePlan { episodes })
}

/// `true` if `cells` form an antichain of `tree`: no cell is an ancestor or
/// descendant of another (nor a duplicate). The safety condition for driving
/// the cells' restart episodes concurrently.
///
/// # Panics
///
/// Panics if any id is not a live cell.
pub fn is_antichain(tree: &RestartTree, cells: &[NodeId]) -> bool {
    for (i, &a) in cells.iter().enumerate() {
        for &b in &cells[i + 1..] {
            if tree.overlaps(a, b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeSpec;

    fn tree_iv() -> RestartTree {
        TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
            .with_child(
                TreeSpec::cell("R_[fedr,pbcom]")
                    .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
                    .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom")),
            )
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
            .build()
            .unwrap()
    }

    fn solo(tree: &RestartTree, comp: &str) -> Suspicion {
        Suspicion::covering(tree, comp, &[comp]).unwrap()
    }

    #[test]
    fn independent_suspicions_stay_independent() {
        let tree = tree_iv();
        let plan = plan_episodes(&tree, &[solo(&tree, "rtu"), solo(&tree, "fedr")]).unwrap();
        assert_eq!(plan.episodes.len(), 2);
        assert!(is_antichain(&tree, &plan.cells()));
        let origins: Vec<_> = plan
            .episodes
            .iter()
            .flat_map(|e| e.origins.clone())
            .collect();
        assert_eq!(origins, vec!["fedr", "rtu"]); // pre-order: fedr's cell first
    }

    #[test]
    fn overlapping_suspicions_merge_to_lca() {
        let tree = tree_iv();
        let joint = Suspicion::covering(&tree, "pbcom", &["fedr", "pbcom"]).unwrap();
        let plan = plan_episodes(&tree, &[solo(&tree, "fedr"), joint]).unwrap();
        assert_eq!(plan.episodes.len(), 1, "{plan:?}");
        let ep = &plan.episodes[0];
        assert_eq!(tree.label(ep.cell), "R_[fedr,pbcom]");
        assert_eq!(ep.components, vec!["fedr", "pbcom"]);
        assert_eq!(ep.origins, vec!["fedr", "pbcom"]);
    }

    #[test]
    fn merge_cascades_through_promotion() {
        // fedr + pbcom merge to R_[fedr,pbcom]; a root-level suspicion of
        // mbus covering the whole station then absorbs that too.
        let tree = tree_iv();
        let wide = Suspicion {
            component: "mbus".into(),
            cell: tree.root(),
        };
        let joint = Suspicion::covering(&tree, "pbcom", &["fedr", "pbcom"]).unwrap();
        let plan = plan_episodes(&tree, &[solo(&tree, "fedr"), joint, wide]).unwrap();
        assert_eq!(plan.episodes.len(), 1);
        assert_eq!(plan.episodes[0].cell, tree.root());
        assert_eq!(plan.episodes[0].origins, vec!["fedr", "mbus", "pbcom"]);
    }

    #[test]
    fn duplicate_suspicions_fold() {
        let tree = tree_iv();
        let plan = plan_episodes(&tree, &[solo(&tree, "rtu"), solo(&tree, "rtu")]).unwrap();
        assert_eq!(plan.episodes.len(), 1);
        assert_eq!(plan.episodes[0].origins, vec!["rtu"]);
    }

    #[test]
    fn urgency_reorders_but_preserves_preorder_ties() {
        use crate::deadline::DeadlineModel;
        use rr_sim::SimTime;
        let tree = tree_iv();
        let mut plan = plan_episodes(
            &tree,
            &[solo(&tree, "fedr"), solo(&tree, "ses"), solo(&tree, "rtu")],
        )
        .unwrap();
        let preorder: Vec<_> = plan.episodes.iter().map(|e| e.origins.clone()).collect();
        assert_eq!(preorder, vec![vec!["fedr"], vec!["ses"], vec!["rtu"]]);

        // No model: untouched.
        plan.order_by_urgency(&DeadlineModel::new(), SimTime::from_secs(0));
        let same: Vec<_> = plan.episodes.iter().map(|e| e.origins.clone()).collect();
        assert_eq!(same, preorder);

        // rtu's pass deadline is tightest; fedr and ses are tied (no
        // deadline) and keep their pre-order relative positions.
        let mut model = DeadlineModel::new();
        model.set_deadline("rtu", SimTime::from_secs(30));
        plan.order_by_urgency(&model, SimTime::from_secs(0));
        let ordered: Vec<_> = plan.episodes.iter().map(|e| e.origins.clone()).collect();
        assert_eq!(ordered, vec![vec!["rtu"], vec!["fedr"], vec!["ses"]]);

        // Criticality outranks slack: ses becomes most urgent even though
        // its cell has no deadline at all.
        model.set_criticality("str", 5); // str shares ses's cell
        plan.order_by_urgency(&model, SimTime::from_secs(0));
        let critical: Vec<_> = plan.episodes.iter().map(|e| e.origins.clone()).collect();
        assert_eq!(critical, vec![vec!["ses"], vec!["rtu"], vec!["fedr"]]);
    }

    #[test]
    fn empty_plan_is_empty() {
        let tree = tree_iv();
        let plan = plan_episodes(&tree, &[]).unwrap();
        assert!(plan.episodes.is_empty());
        assert!(is_antichain(&tree, &[]));
    }

    #[test]
    fn unknown_cell_rejected() {
        let tree = tree_iv();
        // An id only a *bigger* tree has is not a live cell of `tree`.
        let mut bigger = tree_iv();
        let extra = bigger.add_cell(bigger.root(), "extra").unwrap();
        let s = Suspicion {
            component: "rtu".into(),
            cell: extra,
        };
        assert!(matches!(
            plan_episodes(&tree, &[s]),
            Err(TreeError::UnknownNode(_))
        ));
    }
}

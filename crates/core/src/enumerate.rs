//! Exhaustive restart-tree enumeration for small component sets.
//!
//! The hill-climbing [`optimizer`](crate::optimize) searches the tree space
//! through transformation moves; this module *enumerates* the space outright
//! (feasible up to ~5 components) so the optimizer's local optima can be
//! checked against the true global optimum — the strongest evidence that
//! "identify specific algorithms for transforming restart trees" (§7) is
//! answered correctly.
//!
//! A restart tree over a component set `S` is, canonically:
//!
//! * a root cell with some attached subset `A ⊆ S`, and
//! * a partition of `S \ A` into blocks, each recursively a subtree —
//!
//! with one normalization: a cell with no attached components and exactly one
//! child is collapsed (it adds a restart button identical to its child's).

use std::collections::BTreeMap;

use crate::analysis::{expected_system_mttr_s, CostModel, OracleQuality};
use crate::error::AnalysisError;
use crate::model::FailureModel;
use crate::transform::group_label;
use crate::tree::{RestartTree, TreeSpec};

/// Enumerates every canonical restart tree over `components`.
///
/// # Panics
///
/// Panics if more than 5 components are given (the space explodes) or the
/// set is empty.
pub fn enumerate_trees(components: &[String]) -> Vec<RestartTree> {
    assert!(!components.is_empty(), "no components");
    assert!(
        components.len() <= 5,
        "exhaustive enumeration is limited to 5 components ({} given)",
        components.len()
    );
    let mut memo = BTreeMap::new();
    enumerate_specs(components.to_vec(), &mut memo)
        .into_iter()
        .map(|spec| {
            spec.build()
                .unwrap_or_else(|e| unreachable!("enumerated specs are valid: {e}"))
        })
        .collect()
}

/// Enumerated subtree specs over a sorted component set, memoized.
fn enumerate_specs(
    mut set: Vec<String>,
    memo: &mut BTreeMap<Vec<String>, Vec<TreeSpec>>,
) -> Vec<TreeSpec> {
    set.sort();
    if let Some(hit) = memo.get(&set) {
        return hit.clone();
    }
    let n = set.len();
    let mut out = Vec::new();
    // Choose the attached subset A by bitmask.
    for mask in 0..(1u32 << n) {
        let attached: Vec<String> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| set[i].clone())
            .collect();
        let rest: Vec<String> = (0..n)
            .filter(|i| mask & (1 << i) == 0)
            .map(|i| set[i].clone())
            .collect();
        if rest.is_empty() {
            // Leaf cell holding everything.
            out.push(TreeSpec::cell(group_label(&set)).with_components(attached));
            continue;
        }
        for blocks in set_partitions(&rest) {
            // Normalization: an empty cell with a single child is redundant.
            if attached.is_empty() && blocks.len() == 1 {
                continue;
            }
            // Cartesian product of the children's enumerations.
            let child_options: Vec<Vec<TreeSpec>> = blocks
                .iter()
                .map(|b| enumerate_specs(b.clone(), memo))
                .collect();
            let mut partials: Vec<Vec<TreeSpec>> = vec![Vec::new()];
            for options in &child_options {
                let mut next = Vec::with_capacity(partials.len() * options.len());
                for partial in &partials {
                    for option in options {
                        let mut p = partial.clone();
                        p.push(option.clone());
                        next.push(p);
                    }
                }
                partials = next;
            }
            for children in partials {
                let mut spec = TreeSpec::cell(group_label(&set)).with_components(attached.clone());
                for child in children {
                    spec = spec.with_child(child);
                }
                out.push(spec);
            }
        }
    }
    memo.insert(set, out.clone());
    out
}

/// All partitions of `items` into non-empty unordered blocks (Bell-number
/// many), with blocks in a canonical order.
fn set_partitions(items: &[String]) -> Vec<Vec<Vec<String>>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let first = items[0].clone();
    let rest = &items[1..];
    let mut out = Vec::new();
    for sub in set_partitions(rest) {
        // Put `first` into each existing block…
        for i in 0..sub.len() {
            let mut clone = sub.clone();
            clone[i].insert(0, first.clone());
            out.push(clone);
        }
        // …or into a new block of its own.
        let mut clone = sub;
        clone.insert(0, vec![first.clone()]);
        out.push(clone);
    }
    out
}

/// The globally optimal restart tree over `components` for the given model,
/// cost and oracle quality, found by exhaustive enumeration.
///
/// Returns `(tree, expected MTTR seconds)`.
///
/// # Errors
///
/// Returns [`AnalysisError`] if the model is empty or references unknown
/// components.
///
/// # Panics
///
/// Panics if more than 5 components are given.
pub fn exhaustive_best(
    components: &[String],
    model: &FailureModel,
    cost: &dyn CostModel,
    quality: OracleQuality,
) -> Result<(RestartTree, f64), AnalysisError> {
    let mut best: Option<(RestartTree, f64)> = None;
    for tree in enumerate_trees(components) {
        let c = expected_system_mttr_s(&tree, model, cost, quality)?;
        if best.as_ref().is_none_or(|(_, b)| c < *b) {
            best = Some((tree, c));
        }
    }
    Ok(best.unwrap_or_else(|| unreachable!("at least one tree enumerated")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SimpleCostModel;
    use crate::model::FailureMode;
    use crate::optimize::{optimize_tree, OptimizerConfig};

    fn comps(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn partition_counts_are_bell_numbers() {
        assert_eq!(set_partitions(&comps(&["a"])).len(), 1);
        assert_eq!(set_partitions(&comps(&["a", "b"])).len(), 2);
        assert_eq!(set_partitions(&comps(&["a", "b", "c"])).len(), 5);
        assert_eq!(set_partitions(&comps(&["a", "b", "c", "d"])).len(), 15);
    }

    #[test]
    fn enumeration_counts_small_sets() {
        // n=1: just the leaf.
        assert_eq!(enumerate_trees(&comps(&["a"])).len(), 1);
        // n=2: {ab} leaf; {a}+child(b); {b}+child(a); children (a)(b) = 4.
        assert_eq!(enumerate_trees(&comps(&["a", "b"])).len(), 4);
        // n=3: grows quickly but stays canonical (no duplicate shapes).
        let trees = enumerate_trees(&comps(&["a", "b", "c"]));
        let mut specs: Vec<String> = trees.iter().map(|t| format!("{t}")).collect();
        let total = specs.len();
        specs.sort();
        specs.dedup();
        assert_eq!(specs.len(), total, "enumeration produced duplicates");
        assert!(total > 10, "n=3 should have a rich space, got {total}");
    }

    #[test]
    fn every_enumerated_tree_is_valid_and_complete() {
        let set = comps(&["a", "b", "c", "d"]);
        for tree in enumerate_trees(&set) {
            tree.validate().unwrap();
            assert_eq!(tree.components(), set);
        }
    }

    /// The headline check: on the 4-component Mercury sub-model the hill
    /// climb from the trivial tree reaches the true global optimum.
    #[test]
    fn hill_climb_matches_exhaustive_optimum() {
        let set = comps(&["fedr", "pbcom", "ses", "str"]);
        let cost = SimpleCostModel::new(1.0, 2.0)
            .with_boot("fedr", 4.76)
            .with_boot("pbcom", 20.24)
            .with_boot("ses", 5.15)
            .with_boot("str", 5.01)
            .with_contention(0.0119)
            .with_sync_pair("ses", "str", 3.3)
            .with_sync_pair("str", "ses", 3.7)
            .with_rapid_restart_penalty("pbcom", 4.0);
        let model = FailureModel::new()
            .with_mode(FailureMode::solo("fedr", "fedr", 6.0).unwrap())
            .with_mode(FailureMode::solo("pbcom", "pbcom", 0.05).unwrap())
            .with_mode(
                FailureMode::correlated("pbcom-joint", "pbcom", ["fedr", "pbcom"], 0.4).unwrap(),
            )
            .with_mode(FailureMode::correlated("ses", "ses", ["ses"], 0.2).unwrap())
            .with_mode(FailureMode::correlated("str", "str", ["str"], 0.2).unwrap());

        for quality in [
            OracleQuality::Perfect,
            OracleQuality::Faulty { undershoot: 0.3 },
        ] {
            let (best_tree, best_cost) = exhaustive_best(&set, &model, &cost, quality).unwrap();
            let start = TreeSpec::cell("root")
                .with_components(set.clone())
                .build()
                .unwrap();
            let climbed =
                optimize_tree(&start, &model, &cost, quality, OptimizerConfig::default()).unwrap();
            assert!(
                (climbed.expected_mttr_s - best_cost).abs() < 1e-9,
                "{quality:?}: hill climb {:.4}s vs exhaustive {:.4}s\nclimbed:\n{}\nbest:\n{}",
                climbed.expected_mttr_s,
                best_cost,
                climbed.tree,
                best_tree
            );
        }
    }
}

//! MTTF/MTTR algebra and analytic recovery-time prediction.
//!
//! §3.2 gives the restart-group algebra (`MTTF_G ≤ min MTTF_ci`,
//! `MTTR_G ≥ max MTTR_ci`) and §4.1 the tree-II bound
//! `MTTR_G ≤ Σ f_ci · MTTR_ci`. This module provides those relations plus an
//! analytic model of expected recovery time for a (tree, failure model,
//! oracle quality) triple, using a pluggable [`CostModel`] for restart costs.
//! The analytic predictions cross-validate the simulation: the test suite and
//! benches check that simulated Table 4 entries agree with the closed form.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::{AnalysisError, ModelError, TreeError};
use crate::model::{FailureMode, FailureModel};
use crate::schedule::{plan_episodes, Suspicion};
use crate::tree::RestartTree;

/// Steady-state availability from mean time to failure and recovery:
/// `MTTF / (MTTF + MTTR)` (§3).
///
/// # Errors
///
/// Returns [`AnalysisError::NonPositive`] unless both arguments are positive
/// and finite.
///
/// ```
/// use rr_core::analysis::availability;
/// let a = availability(3600.0, 24.75)?;
/// assert!((a - 0.99317).abs() < 1e-4);
/// # Ok::<(), rr_core::AnalysisError>(())
/// ```
pub fn availability(mttf_s: f64, mttr_s: f64) -> Result<f64, AnalysisError> {
    if !(mttf_s.is_finite() && mttf_s > 0.0) {
        return Err(AnalysisError::NonPositive {
            what: "MTTF",
            value: mttf_s,
        });
    }
    if !(mttr_s.is_finite() && mttr_s > 0.0) {
        return Err(AnalysisError::NonPositive {
            what: "MTTR",
            value: mttr_s,
        });
    }
    Ok(mttf_s / (mttf_s + mttr_s))
}

/// Downtime per year (in seconds) implied by an availability figure.
///
/// # Errors
///
/// Returns [`AnalysisError::OutOfRange`] unless `availability` is in `(0, 1]`.
pub fn downtime_s_per_year(availability: f64) -> Result<f64, AnalysisError> {
    if !(availability > 0.0 && availability <= 1.0) {
        return Err(AnalysisError::OutOfRange {
            what: "availability",
            value: availability,
        });
    }
    Ok((1.0 - availability) * 365.25 * 24.0 * 3600.0)
}

/// Group MTTF bound of §3.2: a group fails when any member fails.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyGroup`] if `member_mttfs_s` is empty.
pub fn group_mttf_bound_s(member_mttfs_s: &[f64]) -> Result<f64, AnalysisError> {
    if member_mttfs_s.is_empty() {
        return Err(AnalysisError::EmptyGroup {
            what: "group_mttf_bound_s",
        });
    }
    Ok(member_mttfs_s.iter().copied().fold(f64::INFINITY, f64::min))
}

/// Group MTTR bound of §3.2: recovering a group takes at least as long as its
/// slowest member.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyGroup`] if `member_mttrs_s` is empty.
pub fn group_mttr_bound_s(member_mttrs_s: &[f64]) -> Result<f64, AnalysisError> {
    if member_mttrs_s.is_empty() {
        return Err(AnalysisError::EmptyGroup {
            what: "group_mttr_bound_s",
        });
    }
    Ok(member_mttrs_s.iter().copied().fold(0.0, f64::max))
}

/// The §4.1 expected MTTR of a depth-augmented group:
/// `Σ f_ci · MTTR_ci` over `(probability, mttr)` pairs.
///
/// # Errors
///
/// Returns [`AnalysisError::UnnormalizedCures`] if the probabilities do not
/// sum to 1 (within 1e-6) — the `A_cure` assumption that every failure is
/// restart-curable.
pub fn weighted_group_mttr_s(cures: &[(f64, f64)]) -> Result<f64, AnalysisError> {
    let total: f64 = cures.iter().map(|(p, _)| p).sum();
    if (total - 1.0).abs() >= 1e-6 {
        return Err(AnalysisError::UnnormalizedCures { total });
    }
    Ok(cures.iter().map(|(p, mttr)| p * mttr).sum())
}

/// Restart-cost model: how long restarts and detections take.
pub trait CostModel {
    /// Mean seconds from a failure occurring to the recoverer knowing about
    /// it ("downtime starts when the failure occurs, not when it is
    /// detected", §3.2).
    fn detection_s(&self) -> f64;

    /// Mean extra seconds to re-detect a failure that persists after a
    /// completed (but wrong) restart.
    fn redetection_s(&self) -> f64;

    /// Mean seconds to restart exactly `components` concurrently, measured to
    /// the instant the *slowest* of them logs functionally-ready.
    fn restart_s(&self, components: &[String]) -> f64;

    /// Extra seconds charged when `component` is restarted a second time in
    /// a single episode (e.g. pbcom's serial renegotiation backing off after
    /// rapid successive restarts).
    fn rapid_restart_penalty_s(&self, component: &str) -> f64 {
        let _ = component;
        0.0
    }
}

/// A calibrated cost model sufficient for every experiment in the paper.
///
/// `restart_s` is `max_i(boot_i + solo_sync_penalty_i) · contention(k)` where
/// `contention(k) = 1 + q·(k−1)²` for `k` concurrently restarting components.
/// The quadratic form captures the paper's observation that "a whole system
/// restart causes contention for resources that is not present when
/// restarting just one component" while a two-component joint restart costs
/// nearly the same as its slowest member (tree IV/V measurements).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimpleCostModel {
    detection_s: f64,
    redetection_s: f64,
    boot_s: BTreeMap<String, f64>,
    contention_quadratic: f64,
    /// component → (sync peer, extra seconds when restarted without peer).
    solo_sync_penalty: BTreeMap<String, (String, f64)>,
    rapid_restart_penalty: BTreeMap<String, f64>,
}

impl SimpleCostModel {
    /// Creates a model with the given detection latencies.
    ///
    /// # Panics
    ///
    /// Panics if either latency is negative or not finite.
    pub fn new(detection_s: f64, redetection_s: f64) -> SimpleCostModel {
        assert!(detection_s.is_finite() && detection_s >= 0.0);
        assert!(redetection_s.is_finite() && redetection_s >= 0.0);
        SimpleCostModel {
            detection_s,
            redetection_s,
            ..SimpleCostModel::default()
        }
    }

    /// Sets a component's boot time (seconds to functionally-ready).
    #[must_use]
    pub fn with_boot(mut self, component: impl Into<String>, boot_s: f64) -> Self {
        assert!(
            boot_s.is_finite() && boot_s >= 0.0,
            "invalid boot time {boot_s}"
        );
        self.boot_s.insert(component.into(), boot_s);
        self
    }

    /// Sets the quadratic contention coefficient.
    #[must_use]
    pub fn with_contention(mut self, q: f64) -> Self {
        assert!(q.is_finite() && q >= 0.0, "invalid contention {q}");
        self.contention_quadratic = q;
        self
    }

    /// Declares that `component` blocks re-synchronizing with `peer` when
    /// restarted alone, costing `penalty_s` extra (the ses/str coupling of
    /// §4.3).
    #[must_use]
    pub fn with_sync_pair(
        mut self,
        component: impl Into<String>,
        peer: impl Into<String>,
        penalty_s: f64,
    ) -> Self {
        assert!(penalty_s.is_finite() && penalty_s >= 0.0);
        self.solo_sync_penalty
            .insert(component.into(), (peer.into(), penalty_s));
        self
    }

    /// Sets the rapid-restart penalty for a component.
    #[must_use]
    pub fn with_rapid_restart_penalty(mut self, component: impl Into<String>, s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0);
        self.rapid_restart_penalty.insert(component.into(), s);
        self
    }

    /// The boot time configured for `component`, if any.
    pub fn boot_s(&self, component: &str) -> Option<f64> {
        self.boot_s.get(component).copied()
    }

    /// The contention multiplier for `k` concurrent restarts.
    pub fn contention_factor(&self, k: usize) -> f64 {
        if k <= 1 {
            1.0
        } else {
            1.0 + self.contention_quadratic * ((k - 1) as f64).powi(2)
        }
    }

    /// Every configured `(component, boot seconds)` pair — the hook rr-abs
    /// uses to widen a calibrated point model into an interval model.
    pub fn boot_times(&self) -> impl Iterator<Item = (&str, f64)> {
        self.boot_s.iter().map(|(c, s)| (c.as_str(), *s))
    }

    /// Every configured `(component, sync peer, solo penalty seconds)`
    /// triple (§4.3 coupling).
    pub fn sync_pairs(&self) -> impl Iterator<Item = (&str, &str, f64)> {
        self.solo_sync_penalty
            .iter()
            .map(|(c, (peer, s))| (c.as_str(), peer.as_str(), *s))
    }

    /// Every configured `(component, rapid-restart penalty seconds)` pair.
    pub fn rapid_restart_penalties(&self) -> impl Iterator<Item = (&str, f64)> {
        self.rapid_restart_penalty
            .iter()
            .map(|(c, s)| (c.as_str(), *s))
    }

    /// The quadratic contention coefficient `q` of
    /// [`contention_factor`](Self::contention_factor).
    pub fn contention_quadratic(&self) -> f64 {
        self.contention_quadratic
    }
}

impl CostModel for SimpleCostModel {
    fn detection_s(&self) -> f64 {
        self.detection_s
    }

    fn redetection_s(&self) -> f64 {
        self.redetection_s
    }

    fn restart_s(&self, components: &[String]) -> f64 {
        let mut slowest: f64 = 0.0;
        for comp in components {
            let boot = self.boot_s.get(comp).copied().unwrap_or(0.0);
            let penalty = match self.solo_sync_penalty.get(comp) {
                Some((peer, penalty)) if !components.contains(peer) => *penalty,
                _ => 0.0,
            };
            slowest = slowest.max(boot + penalty);
        }
        slowest * self.contention_factor(components.len())
    }

    fn rapid_restart_penalty_s(&self, component: &str) -> f64 {
        self.rapid_restart_penalty
            .get(component)
            .copied()
            .unwrap_or(0.0)
    }
}

/// Analytic oracle quality, mirroring the oracles of
/// [`oracle`](crate::oracle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OracleQuality {
    /// Always recommends the minimal cure cell (`A_oracle`).
    Perfect,
    /// With probability `undershoot`, first recommends the failed
    /// component's own cell when the minimal cure is higher (§4.4's faulty
    /// oracle), then escalates level by level.
    Faulty {
        /// Probability of a guess-too-low mistake.
        undershoot: f64,
    },
    /// Always starts at the failed component's own cell and escalates —
    /// equivalent to `Faulty { undershoot: 1.0 }`.
    Naive,
}

/// Expected recovery seconds for one failure mode under the given tree,
/// cost model and oracle quality.
///
/// # Errors
///
/// Returns [`TreeError`] if the mode references components not in the tree.
pub fn expected_mode_recovery_s(
    tree: &RestartTree,
    mode: &FailureMode,
    cost: &dyn CostModel,
    quality: OracleQuality,
) -> Result<f64, TreeError> {
    let minimal = tree.lowest_cover(&mode.cure_set)?;
    let own = tree
        .cell_of_component(&mode.trigger)
        .ok_or_else(|| TreeError::UnknownComponent(mode.trigger.clone()))?;

    let perfect_cost = cost.detection_s() + cost.restart_s(&tree.components_under(minimal));
    let undershoot = match quality {
        OracleQuality::Perfect => return Ok(perfect_cost),
        OracleQuality::Faulty { undershoot } => undershoot,
        OracleQuality::Naive => 1.0,
    };
    if own == minimal || undershoot == 0.0 {
        // The tree structurally prevents guess-too-low for this mode
        // (node promotion's effect), or the oracle never errs.
        return Ok(perfect_cost);
    }

    // Wrong-guess path: restart at the component's own cell, then climb one
    // level per re-detection until reaching the minimal cell.
    let mut wrong_cost = cost.detection_s();
    let mut restarted_counts: BTreeMap<String, u32> = BTreeMap::new();
    let mut cur = own;
    loop {
        let comps = tree.components_under(cur);
        wrong_cost += cost.restart_s(&comps);
        for c in &comps {
            let count = restarted_counts.entry(c.clone()).or_insert(0);
            *count += 1;
            if *count > 1 {
                wrong_cost += cost.rapid_restart_penalty_s(c);
            }
        }
        if cur == minimal {
            break;
        }
        wrong_cost += cost.redetection_s();
        cur = tree.parent(cur).unwrap_or(cur);
    }

    Ok((1.0 - undershoot) * perfect_cost + undershoot * wrong_cost)
}

/// Expected recovery seconds for `modes` failing together when REC handles
/// them *serially*: one episode at a time, each restarting its own minimal
/// cure cell, later suspicions waiting for earlier ones to drain. Detection
/// is paid once (the failures are simultaneous and FD's sweep finds them in
/// the same round); restart costs accumulate.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyGroup`] if `modes` is empty, or a tree error
/// if a mode references components not in the tree.
pub fn expected_serial_group_recovery_s(
    tree: &RestartTree,
    modes: &[FailureMode],
    cost: &dyn CostModel,
) -> Result<f64, AnalysisError> {
    if modes.is_empty() {
        return Err(AnalysisError::EmptyGroup {
            what: "expected_serial_group_recovery_s",
        });
    }
    let mut total = cost.detection_s();
    for mode in modes {
        let cell = tree.lowest_cover(&mode.cure_set)?;
        total += cost.restart_s(&tree.components_under(cell));
    }
    Ok(total)
}

/// Expected recovery seconds for `modes` failing together when REC plans one
/// *antichain* of episodes and drives them concurrently: overlapping cure
/// cells merge by promotion to their least common ancestor, independent ones
/// restart in parallel. The group completes when the slowest component of the
/// union is back, and contention is charged over everything rebooting at
/// once — so `restart_s(union)` is exactly the parallel completion cost.
///
/// With a sub-additive cost model (contention below the cost of booting
/// twice), this is never above [`expected_serial_group_recovery_s`] — the
/// analytic face of the scheduler's "parallel no worse than serial" property.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyGroup`] if `modes` is empty, or a tree error
/// if a mode references components not in the tree.
pub fn expected_parallel_group_recovery_s(
    tree: &RestartTree,
    modes: &[FailureMode],
    cost: &dyn CostModel,
) -> Result<f64, AnalysisError> {
    if modes.is_empty() {
        return Err(AnalysisError::EmptyGroup {
            what: "expected_parallel_group_recovery_s",
        });
    }
    let suspicions = modes
        .iter()
        .map(|mode| Suspicion::covering(tree, &mode.trigger, &mode.cure_set))
        .collect::<Result<Vec<_>, _>>()?;
    let plan = plan_episodes(tree, &suspicions)?;
    let union: BTreeSet<String> = plan
        .episodes
        .iter()
        .flat_map(|ep| ep.components.iter().cloned())
        .collect();
    let union: Vec<String> = union.into_iter().collect();
    Ok(cost.detection_s() + cost.restart_s(&union))
}

/// Expected system MTTR: mode probabilities weighting mode recovery
/// times — the generalization of the §4.1 formula to arbitrary trees and
/// oracles.
///
/// # Errors
///
/// Returns [`AnalysisError::Model`] if `model` has no modes, or
/// [`AnalysisError::Tree`] if the model references components not in the
/// tree.
pub fn expected_system_mttr_s(
    tree: &RestartTree,
    model: &FailureModel,
    cost: &dyn CostModel,
    quality: OracleQuality,
) -> Result<f64, AnalysisError> {
    if model.modes().is_empty() {
        return Err(ModelError::EmptyModel {
            query: "expected_system_mttr_s",
        }
        .into());
    }
    let mut total = 0.0;
    for mode in model.modes() {
        let p = model.mode_probability(mode)?;
        total += p * expected_mode_recovery_s(tree, mode, cost, quality)?;
    }
    Ok(total)
}

/// Expected steady-state availability of the system under `A_entire`.
///
/// # Errors
///
/// Returns [`AnalysisError`] if the model is empty or references components
/// not in the tree.
pub fn expected_availability(
    tree: &RestartTree,
    model: &FailureModel,
    cost: &dyn CostModel,
    quality: OracleQuality,
) -> Result<f64, AnalysisError> {
    let mttr = expected_system_mttr_s(tree, model, cost, quality)?;
    availability(model.system_mttf_s()?, mttr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeSpec;

    fn cost() -> SimpleCostModel {
        SimpleCostModel::new(0.9, 2.0)
            .with_boot("mbus", 4.83)
            .with_boot("fedr", 4.86)
            .with_boot("pbcom", 20.34)
            .with_boot("ses", 5.25)
            .with_boot("str", 5.11)
            .with_boot("rtu", 4.69)
            .with_contention(0.0119)
            .with_sync_pair("ses", "str", 3.35)
            .with_sync_pair("str", "ses", 3.75)
            .with_rapid_restart_penalty("pbcom", 4.0)
    }

    fn tree_iv() -> RestartTree {
        TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
            .with_child(
                TreeSpec::cell("R_[fedr,pbcom]")
                    .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
                    .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom")),
            )
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
            .build()
            .unwrap()
    }

    fn tree_v() -> RestartTree {
        let mut t = tree_iv();
        crate::transform::promote_component(&mut t, "pbcom").unwrap();
        t
    }

    #[test]
    fn availability_basics() {
        assert!((availability(99.0, 1.0).unwrap() - 0.99).abs() < 1e-12);
        let d = downtime_s_per_year(0.99).unwrap();
        assert!((d - 0.01 * 365.25 * 24.0 * 3600.0).abs() < 1e-6);
    }

    #[test]
    fn availability_rejects_degenerate_inputs() {
        assert!(matches!(
            availability(0.0, 1.0),
            Err(AnalysisError::NonPositive { what: "MTTF", .. })
        ));
        assert!(matches!(
            availability(99.0, f64::NAN),
            Err(AnalysisError::NonPositive { what: "MTTR", .. })
        ));
        assert!(matches!(
            downtime_s_per_year(1.5),
            Err(AnalysisError::OutOfRange { .. })
        ));
        assert!(matches!(
            downtime_s_per_year(0.0),
            Err(AnalysisError::OutOfRange { .. })
        ));
    }

    #[test]
    fn group_bounds() {
        assert_eq!(group_mttf_bound_s(&[100.0, 50.0, 75.0]).unwrap(), 50.0);
        assert_eq!(group_mttr_bound_s(&[5.0, 21.0, 9.0]).unwrap(), 21.0);
        assert!(matches!(
            group_mttf_bound_s(&[]),
            Err(AnalysisError::EmptyGroup { .. })
        ));
        assert!(matches!(
            group_mttr_bound_s(&[]),
            Err(AnalysisError::EmptyGroup { .. })
        ));
    }

    #[test]
    fn weighted_mttr_formula() {
        // §4.1: MTTR ≤ Σ f_ci · MTTR_ci with Σ f_ci = 1.
        let v = weighted_group_mttr_s(&[(0.5, 10.0), (0.3, 20.0), (0.2, 5.0)]).unwrap();
        assert!((v - 12.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mttr_requires_probabilities_summing_to_one() {
        let err = weighted_group_mttr_s(&[(0.5, 10.0)]).unwrap_err();
        assert!(matches!(err, AnalysisError::UnnormalizedCures { .. }));
        assert!(err.to_string().contains("A_cure"));
    }

    #[test]
    fn restart_cost_uses_slowest_with_contention() {
        let c = cost();
        let one = c.restart_s(&["rtu".to_string()]);
        assert!((one - 4.69).abs() < 1e-9);
        let all: Vec<String> = ["mbus", "fedr", "pbcom", "ses", "str", "rtu"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let full = c.restart_s(&all);
        // 6 components: contention factor 1 + 0.0119·25.
        assert!((full - 20.34 * (1.0 + 0.0119 * 25.0)).abs() < 1e-9);
        assert!(c.contention_factor(1) == 1.0 && c.contention_factor(2) > 1.0);
    }

    #[test]
    fn sync_penalty_applies_only_when_peer_absent() {
        let c = cost();
        let solo = c.restart_s(&["ses".to_string()]);
        assert!((solo - (5.25 + 3.35)).abs() < 1e-9);
        let joint = c.restart_s(&["ses".to_string(), "str".to_string()]);
        // No penalty; slowest is ses's 5.25, times pair contention.
        assert!((joint - 5.25 * (1.0 + 0.0119)).abs() < 1e-9);
        assert!(joint < solo, "consolidation must beat sequential resync");
    }

    #[test]
    fn tree_iv_perfect_matches_paper_shape() {
        // Perfect-oracle recovery for each solo mode lands near Table 4 row IV.
        let tree = tree_iv();
        let c = cost();
        let cases = [
            ("mbus", 5.73),
            ("ses", 6.25),
            ("str", 6.11),
            ("rtu", 5.59),
            ("fedr", 5.76),
            ("pbcom", 21.24),
        ];
        for (comp, paper) in cases {
            let mode = FailureMode::solo(comp, comp, 1.0).unwrap();
            let got = expected_mode_recovery_s(&tree, &mode, &c, OracleQuality::Perfect).unwrap();
            let rel = (got - paper).abs() / paper;
            assert!(rel < 0.05, "{comp}: predicted {got:.2}, paper {paper}");
        }
    }

    #[test]
    fn faulty_oracle_costs_more_only_when_undershoot_possible() {
        let tree = tree_iv();
        let c = cost();
        let joint =
            FailureMode::correlated("pbcom-joint", "pbcom", ["fedr", "pbcom"], 1.0).unwrap();
        let perfect = expected_mode_recovery_s(&tree, &joint, &c, OracleQuality::Perfect).unwrap();
        let faulty =
            expected_mode_recovery_s(&tree, &joint, &c, OracleQuality::Faulty { undershoot: 0.3 })
                .unwrap();
        assert!(faulty > perfect);
        // Paper: 29.19 s for tree IV under the 30%-faulty oracle.
        assert!((faulty - 29.19).abs() / 29.19 < 0.05, "faulty {faulty:.2}");

        // Tree V structurally removes the mistake: faulty == perfect.
        let tv = tree_v();
        let v_faulty =
            expected_mode_recovery_s(&tv, &joint, &c, OracleQuality::Faulty { undershoot: 0.3 })
                .unwrap();
        let v_perfect = expected_mode_recovery_s(&tv, &joint, &c, OracleQuality::Perfect).unwrap();
        assert_eq!(v_faulty, v_perfect);
        // Paper: 21.63 s in tree V.
        assert!(
            (v_faulty - 21.63).abs() / 21.63 < 0.05,
            "tree V {v_faulty:.2}"
        );
    }

    #[test]
    fn naive_equals_faulty_one() {
        let tree = tree_iv();
        let c = cost();
        let joint =
            FailureMode::correlated("pbcom-joint", "pbcom", ["fedr", "pbcom"], 1.0).unwrap();
        let naive = expected_mode_recovery_s(&tree, &joint, &c, OracleQuality::Naive).unwrap();
        let faulty1 =
            expected_mode_recovery_s(&tree, &joint, &c, OracleQuality::Faulty { undershoot: 1.0 })
                .unwrap();
        assert_eq!(naive, faulty1);
    }

    #[test]
    fn system_mttr_weights_by_mode_probability() {
        let tree = tree_iv();
        let c = cost();
        let model = FailureModel::new()
            .with_mode(FailureMode::solo("fedr", "fedr", 6.0).unwrap())
            .with_mode(FailureMode::solo("rtu", "rtu", 0.2).unwrap());
        let sys = expected_system_mttr_s(&tree, &model, &c, OracleQuality::Perfect).unwrap();
        let fedr =
            expected_mode_recovery_s(&tree, &model.modes()[0], &c, OracleQuality::Perfect).unwrap();
        let rtu =
            expected_mode_recovery_s(&tree, &model.modes()[1], &c, OracleQuality::Perfect).unwrap();
        let expected = (6.0 * fedr + 0.2 * rtu) / 6.2;
        assert!((sys - expected).abs() < 1e-9);
    }

    #[test]
    fn availability_improves_with_better_tree() {
        // Tree I (single group) vs tree IV: same failure model, same costs.
        let tree_i = TreeSpec::cell("mercury")
            .with_components(["mbus", "fedr", "pbcom", "ses", "str", "rtu"])
            .build()
            .unwrap();
        let model = FailureModel::new()
            .with_mode(FailureMode::solo("fedr", "fedr", 6.0).unwrap())
            .with_mode(FailureMode::solo("ses", "ses", 0.2).unwrap())
            .with_mode(FailureMode::solo("rtu", "rtu", 0.2).unwrap());
        let c = cost();
        let a1 = expected_availability(&tree_i, &model, &c, OracleQuality::Perfect).unwrap();
        let a4 = expected_availability(&tree_iv(), &model, &c, OracleQuality::Perfect).unwrap();
        assert!(a4 > a1, "tree IV {a4} should beat tree I {a1}");
    }

    #[test]
    fn parallel_group_beats_serial_for_independent_faults() {
        // rtu and fedr fail together in tree IV: their cells are disjoint,
        // so the parallel plan restarts both at once and finishes with the
        // slowest, while the serial baseline pays both boots back to back.
        let tree = tree_iv();
        let c = cost();
        let modes = [
            FailureMode::solo("rtu", "rtu", 1.0).unwrap(),
            FailureMode::solo("fedr", "fedr", 1.0).unwrap(),
        ];
        let serial = expected_serial_group_recovery_s(&tree, &modes, &c).unwrap();
        let parallel = expected_parallel_group_recovery_s(&tree, &modes, &c).unwrap();
        // Serial: 0.9 + 4.69 + 4.86. Parallel: 0.9 + max(4.69, 4.86)·(1+q).
        assert!((serial - (0.9 + 4.69 + 4.86)).abs() < 1e-9);
        assert!((parallel - (0.9 + 4.86 * (1.0 + 0.0119))).abs() < 1e-9);
        assert!(parallel < serial);
    }

    #[test]
    fn parallel_group_merges_overlapping_faults_to_lca() {
        // fedr and the joint pbcom failure overlap: the plan promotes to
        // R_[fedr,pbcom], one episode, cost of the joint pair restart.
        let tree = tree_iv();
        let c = cost();
        let modes = [
            FailureMode::solo("fedr", "fedr", 1.0).unwrap(),
            FailureMode::correlated("pbcom-joint", "pbcom", ["fedr", "pbcom"], 1.0).unwrap(),
        ];
        let parallel = expected_parallel_group_recovery_s(&tree, &modes, &c).unwrap();
        let pair: Vec<String> = vec!["fedr".into(), "pbcom".into()];
        assert!((parallel - (0.9 + c.restart_s(&pair))).abs() < 1e-9);
        // The serial baseline restarts R_fedr, then the joint cell: strictly
        // more work than the merged single episode.
        let serial = expected_serial_group_recovery_s(&tree, &modes, &c).unwrap();
        assert!(parallel < serial);
    }

    #[test]
    fn group_recovery_of_single_mode_matches_perfect_mode_recovery() {
        // A group of one is just the perfect-oracle mode recovery: the
        // parallel algebra degenerates cleanly.
        let tree = tree_iv();
        let c = cost();
        let mode = FailureMode::solo("rtu", "rtu", 1.0).unwrap();
        let solo = expected_mode_recovery_s(&tree, &mode, &c, OracleQuality::Perfect).unwrap();
        let group =
            expected_parallel_group_recovery_s(&tree, std::slice::from_ref(&mode), &c).unwrap();
        assert!((solo - group).abs() < 1e-9);
        let serial = expected_serial_group_recovery_s(&tree, &[mode], &c).unwrap();
        assert!((solo - serial).abs() < 1e-9);
    }

    #[test]
    fn unknown_components_error() {
        let tree = tree_iv();
        let c = cost();
        let mode = FailureMode::solo("ghost", "ghost", 1.0).unwrap();
        assert!(expected_mode_recovery_s(&tree, &mode, &c, OracleQuality::Perfect).is_err());
    }
}

//! ASCII rendering of restart trees — the reproduction of the paper's tree
//! figures (Figures 2–6).
//!
//! The harness prints these renderings when regenerating the figures; the
//! format shows each restart cell with the components attached directly to it
//! in braces:
//!
//! ```text
//! mercury
//! ├── R_mbus {mbus}
//! ├── R_[fedr,pbcom] {pbcom}
//! │   └── R_fedr {fedr}
//! ├── R_[ses,str] {ses, str}
//! └── R_rtu {rtu}
//! ```

use crate::tree::{NodeId, RestartTree};

/// Renders a tree as indented ASCII art, one cell per line.
pub fn render_tree(tree: &RestartTree) -> String {
    let mut out = String::new();
    render_node(tree, tree.root(), "", "", &mut out);
    out
}

fn node_line(tree: &RestartTree, id: NodeId) -> String {
    let comps = tree.components_at(id);
    if comps.is_empty() {
        tree.label(id).to_string()
    } else {
        format!("{} {{{}}}", tree.label(id), comps.join(", "))
    }
}

fn render_node(tree: &RestartTree, id: NodeId, prefix: &str, child_prefix: &str, out: &mut String) {
    out.push_str(prefix);
    out.push_str(&node_line(tree, id));
    out.push('\n');
    let children = tree.children(id);
    for (i, &child) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        let (branch, extend) = if last {
            ("└── ", "    ")
        } else {
            ("├── ", "│   ")
        };
        render_node(
            tree,
            child,
            &format!("{child_prefix}{branch}"),
            &format!("{child_prefix}{extend}"),
            out,
        );
    }
}

/// Renders a one-line summary of the tree's restart groups, e.g.
/// `mercury[mbus+fedr/pbcom+ses,str+rtu]` — compact enough for table cells.
pub fn render_compact(tree: &RestartTree) -> String {
    fn rec(tree: &RestartTree, id: NodeId, out: &mut String) {
        let comps = tree.components_at(id);
        out.push_str(&comps.join(","));
        let children = tree.children(id);
        if !children.is_empty() {
            if !comps.is_empty() {
                out.push('/');
            }
            out.push('(');
            for (i, &c) in children.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                rec(tree, c, out);
            }
            out.push(')');
        }
    }
    let mut out = String::new();
    rec(tree, tree.root(), &mut out);
    out
}

/// Renders a tree in Graphviz DOT format: restart cells as boxes, attached
/// components as ellipses — the publishable version of Figures 2–6.
///
/// ```
/// use rr_core::render::render_dot;
/// use rr_core::tree::TreeSpec;
/// let tree = TreeSpec::cell("root")
///     .with_child(TreeSpec::cell("R_a").with_component("a"))
///     .build()?;
/// let dot = render_dot(&tree);
/// assert!(dot.starts_with("digraph restart_tree"));
/// assert!(dot.contains("\"cell0\" -> \"cell1\""));
/// # Ok::<(), rr_core::TreeError>(())
/// ```
pub fn render_dot(tree: &RestartTree) -> String {
    let mut out =
        String::from("digraph restart_tree {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n");
    let cells = tree.cells();
    let index_of = |id: NodeId| {
        cells
            .iter()
            .position(|&c| c == id)
            .unwrap_or_else(|| unreachable!("cells() lists every rendered cell"))
    };
    for &cell in &cells {
        let idx = index_of(cell);
        out.push_str(&format!(
            "  \"cell{idx}\" [shape=box, style=rounded, label=\"{}\"];\n",
            escape_dot(tree.label(cell))
        ));
        for comp in tree.components_at(cell) {
            out.push_str(&format!(
                "  \"comp_{}\" [shape=ellipse, label=\"{}\"];\n",
                escape_dot(comp),
                escape_dot(comp)
            ));
            out.push_str(&format!(
                "  \"cell{idx}\" -> \"comp_{}\" [style=dashed, arrowhead=none];\n",
                escape_dot(comp)
            ));
        }
        for &child in tree.children(cell) {
            out.push_str(&format!(
                "  \"cell{idx}\" -> \"cell{}\";\n",
                index_of(child)
            ));
        }
    }
    out.push_str("}\n");
    out
}

fn escape_dot(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeSpec;

    fn tree_v() -> RestartTree {
        TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
            .with_child(
                TreeSpec::cell("R_[fedr,pbcom]")
                    .with_component("pbcom")
                    .with_child(TreeSpec::cell("R_fedr").with_component("fedr")),
            )
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
            .build()
            .unwrap()
    }

    #[test]
    fn render_shows_structure_and_components() {
        let rendered = render_tree(&tree_v());
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0], "mercury");
        assert!(lines[1].contains("R_mbus {mbus}"));
        assert!(lines[2].contains("R_[fedr,pbcom] {pbcom}"));
        assert!(lines[3].contains("└── R_fedr {fedr}"));
        assert!(
            lines[3].starts_with("│   "),
            "fedr nests under the joint cell: {}",
            lines[3]
        );
        assert!(lines[4].contains("{ses, str}"));
        assert!(
            lines[5].starts_with("└── "),
            "last child uses corner: {}",
            lines[5]
        );
    }

    #[test]
    fn display_impl_matches_render() {
        let tree = tree_v();
        assert_eq!(tree.to_string(), render_tree(&tree));
    }

    #[test]
    fn compact_form_is_single_line() {
        let c = render_compact(&tree_v());
        assert!(!c.contains('\n'));
        assert!(c.contains("pbcom/(fedr)"), "{c}");
    }

    #[test]
    fn dot_output_is_well_formed() {
        let dot = render_dot(&tree_v());
        assert!(dot.starts_with("digraph restart_tree {"));
        assert!(dot.trim_end().ends_with('}'));
        // 6 cells and 6 components.
        assert_eq!(dot.matches("shape=box").count(), 6);
        assert_eq!(dot.matches("shape=ellipse").count(), 6);
        // Structural edges: 5 parent→child plus 6 dashed attachments.
        assert_eq!(dot.matches("style=dashed").count(), 6);
        assert!(dot.contains("label=\"R_[fedr,pbcom]\""));
    }

    #[test]
    fn dot_escapes_quotes() {
        let tree = TreeSpec::cell("we \"quote\"")
            .with_component("x")
            .build()
            .unwrap();
        let dot = render_dot(&tree);
        assert!(dot.contains("we \\\"quote\\\""));
    }

    #[test]
    fn single_cell_tree_renders() {
        let tree = TreeSpec::cell("solo").with_component("x").build().unwrap();
        assert_eq!(render_tree(&tree), "solo {x}\n");
        assert_eq!(render_compact(&tree), "x");
    }
}

//! Failure models: which failures occur, how often, and what cures them.
//!
//! The paper characterizes failures by where they manifest (a component), how
//! often (Table 1's MTTFs) and what minimally cures them (the `f_ci`
//! probabilities of §4.1–4.4). A [`FailureModel`] is a list of
//! [`FailureMode`]s carrying exactly that information; it drives both the
//! synthetic fault injection in the simulator and the analytic expected-MTTR
//! computation in [`analysis`](crate::analysis).

use crate::oracle::Failure;
use crate::tree::RestartTree;

/// One class of failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureMode {
    /// Human-readable name (e.g. `"pbcom-joint"`).
    pub name: String,
    /// The component the failure manifests in (whose ping goes unanswered).
    pub trigger: String,
    /// The minimal set of components whose joint restart cures it. Always
    /// contains `trigger`.
    pub cure_set: Vec<String>,
    /// Occurrence rate, in failures per hour of operation.
    pub rate_per_hour: f64,
}

impl FailureMode {
    /// A mode curable by restarting only the component it manifests in.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_hour` is not positive and finite.
    pub fn solo(name: impl Into<String>, trigger: impl Into<String>, rate_per_hour: f64) -> Self {
        let trigger = trigger.into();
        Self::correlated(name, trigger.clone(), [trigger], rate_per_hour)
    }

    /// A mode that manifests in `trigger` but needs all of `cure_set`
    /// restarted together.
    ///
    /// # Panics
    ///
    /// Panics if `cure_set` does not contain `trigger`, or if
    /// `rate_per_hour` is not positive and finite.
    pub fn correlated<I, S>(
        name: impl Into<String>,
        trigger: impl Into<String>,
        cure_set: I,
        rate_per_hour: f64,
    ) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        assert!(
            rate_per_hour.is_finite() && rate_per_hour > 0.0,
            "invalid rate {rate_per_hour}"
        );
        let trigger = trigger.into();
        let cure_set: Vec<String> = cure_set.into_iter().map(Into::into).collect();
        assert!(
            cure_set.contains(&trigger),
            "cure set must contain the trigger component"
        );
        FailureMode {
            name: name.into(),
            trigger,
            cure_set,
            rate_per_hour,
        }
    }

    /// The [`Failure`] event this mode injects.
    pub fn to_failure(&self) -> Failure {
        Failure {
            component: self.trigger.clone(),
            cure_set: self.cure_set.clone(),
        }
    }

    /// The mode's mean time to failure, in seconds.
    pub fn mttf_s(&self) -> f64 {
        3600.0 / self.rate_per_hour
    }
}

/// A complete failure model: the set of failure modes a system exhibits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureModel {
    modes: Vec<FailureMode>,
}

impl FailureModel {
    /// An empty model.
    pub fn new() -> FailureModel {
        FailureModel::default()
    }

    /// Adds a mode.
    pub fn push(&mut self, mode: FailureMode) {
        self.modes.push(mode);
    }

    /// Builder-style [`push`](Self::push).
    #[must_use]
    pub fn with_mode(mut self, mode: FailureMode) -> FailureModel {
        self.push(mode);
        self
    }

    /// The modes, in insertion order.
    pub fn modes(&self) -> &[FailureMode] {
        &self.modes
    }

    /// Total failure rate (per hour) across all modes.
    pub fn total_rate_per_hour(&self) -> f64 {
        self.modes.iter().map(|m| m.rate_per_hour).sum()
    }

    /// The probability that a manifested failure is this mode — the paper's
    /// `f` values, e.g. `f_{fedr,pbcom}` (§4.2).
    ///
    /// # Panics
    ///
    /// Panics if the model is empty.
    pub fn mode_probability(&self, mode: &FailureMode) -> f64 {
        let total = self.total_rate_per_hour();
        assert!(total > 0.0, "mode_probability on an empty model");
        mode.rate_per_hour / total
    }

    /// System MTTF in seconds under `A_entire` (any component failure takes
    /// the whole system down): the inverse of the total failure rate. This is
    /// the algebraic form of `MTTF_G ≤ min(MTTF_ci)` for independent
    /// exponential components.
    ///
    /// # Panics
    ///
    /// Panics if the model is empty.
    pub fn system_mttf_s(&self) -> f64 {
        let total = self.total_rate_per_hour();
        assert!(total > 0.0, "system_mttf_s on an empty model");
        3600.0 / total
    }

    /// The aggregate failure rate attributed to one component (sum over the
    /// modes that manifest in it), per hour.
    pub fn component_rate_per_hour(&self, component: &str) -> f64 {
        self.modes
            .iter()
            .filter(|m| m.trigger == component)
            .map(|m| m.rate_per_hour)
            .sum()
    }

    /// The component's MTTF in seconds, or `None` if no mode manifests in it.
    pub fn component_mttf_s(&self, component: &str) -> Option<f64> {
        let rate = self.component_rate_per_hour(component);
        (rate > 0.0).then(|| 3600.0 / rate)
    }

    /// Checks that every component mentioned by any mode is attached in
    /// `tree`.
    ///
    /// # Errors
    ///
    /// Returns the sorted list of unattached component names.
    pub fn validate_against(&self, tree: &RestartTree) -> Result<(), Vec<String>> {
        let mut missing: Vec<String> = Vec::new();
        for mode in &self.modes {
            for comp in std::iter::once(&mode.trigger).chain(mode.cure_set.iter()) {
                if tree.cell_of_component(comp).is_none() && !missing.contains(comp) {
                    missing.push(comp.clone());
                }
            }
        }
        if missing.is_empty() {
            Ok(())
        } else {
            missing.sort();
            Err(missing)
        }
    }
}

impl FromIterator<FailureMode> for FailureModel {
    fn from_iter<T: IntoIterator<Item = FailureMode>>(iter: T) -> Self {
        FailureModel {
            modes: iter.into_iter().collect(),
        }
    }
}

impl Extend<FailureMode> for FailureModel {
    fn extend<T: IntoIterator<Item = FailureMode>>(&mut self, iter: T) {
        self.modes.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeSpec;

    fn sample() -> FailureModel {
        FailureModel::new()
            .with_mode(FailureMode::solo("fedr-crash", "fedr", 6.0)) // MTTF 10 min
            .with_mode(FailureMode::solo("ses-crash", "ses", 0.2)) // MTTF 5 h
            .with_mode(FailureMode::correlated(
                "pbcom-joint",
                "pbcom",
                ["fedr", "pbcom"],
                0.05,
            ))
    }

    #[test]
    fn rates_and_probabilities() {
        let model = sample();
        assert!((model.total_rate_per_hour() - 6.25).abs() < 1e-12);
        let p = model.mode_probability(&model.modes()[0]);
        assert!((p - 6.0 / 6.25).abs() < 1e-12);
        let sum: f64 = model
            .modes()
            .iter()
            .map(|m| model.mode_probability(m))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12, "f_ci sum to 1 (A_cure)");
    }

    #[test]
    fn mttf_relationships() {
        let model = sample();
        // System MTTF is at most the smallest component MTTF (§3.2).
        let sys = model.system_mttf_s();
        for comp in ["fedr", "ses", "pbcom"] {
            let c = model.component_mttf_s(comp).unwrap();
            assert!(sys <= c + 1e-9, "system {sys} vs {comp} {c}");
        }
        assert!((model.component_mttf_s("fedr").unwrap() - 600.0).abs() < 1e-9);
        assert_eq!(model.component_mttf_s("mbus"), None);
    }

    #[test]
    fn mode_mttf_matches_rate() {
        let m = FailureMode::solo("x", "c", 2.0);
        assert!((m.mttf_s() - 1800.0).abs() < 1e-12);
    }

    #[test]
    fn validate_against_finds_missing() {
        let model = sample();
        let tree = TreeSpec::cell("root")
            .with_components(["fedr", "pbcom"])
            .build()
            .unwrap();
        let missing = model.validate_against(&tree).unwrap_err();
        assert_eq!(missing, vec!["ses".to_string()]);

        let full = TreeSpec::cell("root")
            .with_components(["fedr", "pbcom", "ses"])
            .build()
            .unwrap();
        assert!(model.validate_against(&full).is_ok());
    }

    #[test]
    fn to_failure_carries_cure_set() {
        let m = FailureMode::correlated("j", "a", ["a", "b"], 1.0);
        let f = m.to_failure();
        assert_eq!(f.component, "a");
        assert_eq!(f.cure_set, vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "cure set must contain")]
    fn correlated_requires_trigger_in_cure_set() {
        FailureMode::correlated("bad", "a", ["b"], 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn rejects_zero_rate() {
        FailureMode::solo("bad", "a", 0.0);
    }

    #[test]
    fn collect_from_iterator() {
        let model: FailureModel = vec![FailureMode::solo("a", "a", 1.0)].into_iter().collect();
        assert_eq!(model.modes().len(), 1);
    }
}

//! Failure models: which failures occur, how often, and what cures them.
//!
//! The paper characterizes failures by where they manifest (a component), how
//! often (Table 1's MTTFs) and what minimally cures them (the `f_ci`
//! probabilities of §4.1–4.4). A [`FailureModel`] is a list of
//! [`FailureMode`]s carrying exactly that information; it drives both the
//! synthetic fault injection in the simulator and the analytic expected-MTTR
//! computation in [`analysis`](crate::analysis).

use crate::error::ModelError;
use crate::oracle::Failure;
use crate::tree::RestartTree;

/// One class of failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureMode {
    /// Human-readable name (e.g. `"pbcom-joint"`).
    pub name: String,
    /// The component the failure manifests in (whose ping goes unanswered).
    pub trigger: String,
    /// The minimal set of components whose joint restart cures it. Always
    /// contains `trigger`.
    pub cure_set: Vec<String>,
    /// Occurrence rate, in failures per hour of operation.
    pub rate_per_hour: f64,
}

impl FailureMode {
    /// A mode curable by restarting only the component it manifests in.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRate`] if `rate_per_hour` is not positive
    /// and finite.
    pub fn solo(
        name: impl Into<String>,
        trigger: impl Into<String>,
        rate_per_hour: f64,
    ) -> Result<Self, ModelError> {
        let trigger = trigger.into();
        Self::correlated(name, trigger.clone(), [trigger], rate_per_hour)
    }

    /// A mode that manifests in `trigger` but needs all of `cure_set`
    /// restarted together.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::TriggerOutsideCureSet`] if `cure_set` does not
    /// contain `trigger`, or [`ModelError::InvalidRate`] if `rate_per_hour`
    /// is not positive and finite.
    pub fn correlated<I, S>(
        name: impl Into<String>,
        trigger: impl Into<String>,
        cure_set: I,
        rate_per_hour: f64,
    ) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let name = name.into();
        if !(rate_per_hour.is_finite() && rate_per_hour > 0.0) {
            return Err(ModelError::InvalidRate {
                mode: name,
                rate: rate_per_hour,
            });
        }
        let trigger = trigger.into();
        let cure_set: Vec<String> = cure_set.into_iter().map(Into::into).collect();
        if !cure_set.contains(&trigger) {
            return Err(ModelError::TriggerOutsideCureSet {
                mode: name,
                trigger,
            });
        }
        Ok(FailureMode {
            name,
            trigger,
            cure_set,
            rate_per_hour,
        })
    }

    /// The [`Failure`] event this mode injects.
    pub fn to_failure(&self) -> Failure {
        Failure {
            component: self.trigger.clone(),
            cure_set: self.cure_set.clone(),
        }
    }

    /// The mode's mean time to failure, in seconds.
    pub fn mttf_s(&self) -> f64 {
        3600.0 / self.rate_per_hour
    }
}

/// A complete failure model: the set of failure modes a system exhibits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureModel {
    modes: Vec<FailureMode>,
}

impl FailureModel {
    /// An empty model.
    pub fn new() -> FailureModel {
        FailureModel::default()
    }

    /// Adds a mode.
    pub fn push(&mut self, mode: FailureMode) {
        self.modes.push(mode);
    }

    /// Builder-style [`push`](Self::push).
    #[must_use]
    pub fn with_mode(mut self, mode: FailureMode) -> FailureModel {
        self.push(mode);
        self
    }

    /// The modes, in insertion order.
    pub fn modes(&self) -> &[FailureMode] {
        &self.modes
    }

    /// Total failure rate (per hour) across all modes.
    pub fn total_rate_per_hour(&self) -> f64 {
        self.modes.iter().map(|m| m.rate_per_hour).sum()
    }

    /// The probability that a manifested failure is this mode — the paper's
    /// `f` values, e.g. `f_{fedr,pbcom}` (§4.2).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyModel`] if the model has no modes.
    pub fn mode_probability(&self, mode: &FailureMode) -> Result<f64, ModelError> {
        let total = self.total_rate_per_hour();
        if total <= 0.0 {
            return Err(ModelError::EmptyModel {
                query: "mode_probability",
            });
        }
        Ok(mode.rate_per_hour / total)
    }

    /// System MTTF in seconds under `A_entire` (any component failure takes
    /// the whole system down): the inverse of the total failure rate. This is
    /// the algebraic form of `MTTF_G ≤ min(MTTF_ci)` for independent
    /// exponential components.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyModel`] if the model has no modes.
    pub fn system_mttf_s(&self) -> Result<f64, ModelError> {
        let total = self.total_rate_per_hour();
        if total <= 0.0 {
            return Err(ModelError::EmptyModel {
                query: "system_mttf_s",
            });
        }
        Ok(3600.0 / total)
    }

    /// The aggregate failure rate attributed to one component (sum over the
    /// modes that manifest in it), per hour.
    pub fn component_rate_per_hour(&self, component: &str) -> f64 {
        self.modes
            .iter()
            .filter(|m| m.trigger == component)
            .map(|m| m.rate_per_hour)
            .sum()
    }

    /// The component's MTTF in seconds, or `None` if no mode manifests in it.
    pub fn component_mttf_s(&self, component: &str) -> Option<f64> {
        let rate = self.component_rate_per_hour(component);
        (rate > 0.0).then(|| 3600.0 / rate)
    }

    /// Checks that every component mentioned by any mode is attached in
    /// `tree`.
    ///
    /// # Errors
    ///
    /// Returns the sorted list of unattached component names.
    pub fn validate_against(&self, tree: &RestartTree) -> Result<(), Vec<String>> {
        let mut missing: Vec<String> = Vec::new();
        for mode in &self.modes {
            for comp in std::iter::once(&mode.trigger).chain(mode.cure_set.iter()) {
                if tree.cell_of_component(comp).is_none() && !missing.contains(comp) {
                    missing.push(comp.clone());
                }
            }
        }
        if missing.is_empty() {
            Ok(())
        } else {
            missing.sort();
            Err(missing)
        }
    }
}

impl FromIterator<FailureMode> for FailureModel {
    fn from_iter<T: IntoIterator<Item = FailureMode>>(iter: T) -> Self {
        FailureModel {
            modes: iter.into_iter().collect(),
        }
    }
}

impl Extend<FailureMode> for FailureModel {
    fn extend<T: IntoIterator<Item = FailureMode>>(&mut self, iter: T) {
        self.modes.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeSpec;

    fn sample() -> FailureModel {
        FailureModel::new()
            .with_mode(FailureMode::solo("fedr-crash", "fedr", 6.0).unwrap()) // MTTF 10 min
            .with_mode(FailureMode::solo("ses-crash", "ses", 0.2).unwrap()) // MTTF 5 h
            .with_mode(
                FailureMode::correlated("pbcom-joint", "pbcom", ["fedr", "pbcom"], 0.05).unwrap(),
            )
    }

    #[test]
    fn rates_and_probabilities() {
        let model = sample();
        assert!((model.total_rate_per_hour() - 6.25).abs() < 1e-12);
        let p = model.mode_probability(&model.modes()[0]).unwrap();
        assert!((p - 6.0 / 6.25).abs() < 1e-12);
        let sum: f64 = model
            .modes()
            .iter()
            .map(|m| model.mode_probability(m).unwrap())
            .sum();
        assert!((sum - 1.0).abs() < 1e-12, "f_ci sum to 1 (A_cure)");
    }

    #[test]
    fn empty_model_queries_are_typed_errors() {
        let empty = FailureModel::new();
        let probe = FailureMode::solo("x", "c", 1.0).unwrap();
        assert_eq!(
            empty.mode_probability(&probe),
            Err(ModelError::EmptyModel {
                query: "mode_probability"
            })
        );
        assert_eq!(
            empty.system_mttf_s(),
            Err(ModelError::EmptyModel {
                query: "system_mttf_s"
            })
        );
    }

    #[test]
    fn mttf_relationships() {
        let model = sample();
        // System MTTF is at most the smallest component MTTF (§3.2).
        let sys = model.system_mttf_s().unwrap();
        for comp in ["fedr", "ses", "pbcom"] {
            let c = model.component_mttf_s(comp).unwrap();
            assert!(sys <= c + 1e-9, "system {sys} vs {comp} {c}");
        }
        assert!((model.component_mttf_s("fedr").unwrap() - 600.0).abs() < 1e-9);
        assert_eq!(model.component_mttf_s("mbus"), None);
    }

    #[test]
    fn mode_mttf_matches_rate() {
        let m = FailureMode::solo("x", "c", 2.0).unwrap();
        assert!((m.mttf_s() - 1800.0).abs() < 1e-12);
    }

    #[test]
    fn validate_against_finds_missing() {
        let model = sample();
        let tree = TreeSpec::cell("root")
            .with_components(["fedr", "pbcom"])
            .build()
            .unwrap();
        let missing = model.validate_against(&tree).unwrap_err();
        assert_eq!(missing, vec!["ses".to_string()]);

        let full = TreeSpec::cell("root")
            .with_components(["fedr", "pbcom", "ses"])
            .build()
            .unwrap();
        assert!(model.validate_against(&full).is_ok());
    }

    #[test]
    fn to_failure_carries_cure_set() {
        let m = FailureMode::correlated("j", "a", ["a", "b"], 1.0).unwrap();
        let f = m.to_failure();
        assert_eq!(f.component, "a");
        assert_eq!(f.cure_set, vec!["a", "b"]);
    }

    #[test]
    fn correlated_requires_trigger_in_cure_set() {
        let err = FailureMode::correlated("bad", "a", ["b"], 1.0).unwrap_err();
        assert_eq!(
            err,
            ModelError::TriggerOutsideCureSet {
                mode: "bad".into(),
                trigger: "a".into(),
            }
        );
        assert!(err.to_string().contains("cure set must contain"));
    }

    #[test]
    fn rejects_degenerate_rates() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = FailureMode::solo("bad", "a", bad).unwrap_err();
            assert!(
                matches!(err, ModelError::InvalidRate { ref mode, .. } if mode == "bad"),
                "rate {bad}: {err}"
            );
        }
    }

    #[test]
    fn collect_from_iterator() {
        let model: FailureModel = vec![FailureMode::solo("a", "a", 1.0).unwrap()]
            .into_iter()
            .collect();
        assert_eq!(model.modes().len(), 1);
    }
}

//! Error types for restart-tree construction and transformation.

use std::fmt;

use crate::tree::NodeId;

/// An error manipulating a [`RestartTree`](crate::tree::RestartTree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The node id does not name a live node of this tree.
    UnknownNode(NodeId),
    /// The component name is not attached anywhere in the tree.
    UnknownComponent(String),
    /// The component name is already attached to a cell.
    DuplicateComponent(String),
    /// A transformation's preconditions were not met.
    InvalidTransform {
        /// Which transformation failed.
        transform: &'static str,
        /// Why its preconditions were not met.
        reason: String,
    },
    /// The operation would orphan or delete the root cell.
    CannotModifyRoot,
}

impl TreeError {
    pub(crate) fn invalid(transform: &'static str, reason: impl Into<String>) -> TreeError {
        TreeError::InvalidTransform {
            transform,
            reason: reason.into(),
        }
    }
}

/// An error constructing or querying a [`FailureModel`](crate::model::FailureModel).
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A mode's occurrence rate was not positive and finite.
    InvalidRate {
        /// The mode's name.
        mode: String,
        /// The offending rate (per hour).
        rate: f64,
    },
    /// A correlated mode's cure set does not contain its trigger component.
    TriggerOutsideCureSet {
        /// The mode's name.
        mode: String,
        /// The trigger component missing from the cure set.
        trigger: String,
    },
    /// A rate-derived quantity was asked of a model with no modes.
    EmptyModel {
        /// Which query hit the empty model.
        query: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidRate { mode, rate } => {
                write!(f, "failure mode {mode:?} has invalid rate {rate}/h")
            }
            ModelError::TriggerOutsideCureSet { mode, trigger } => write!(
                f,
                "failure mode {mode:?}: cure set must contain the trigger component {trigger:?}"
            ),
            ModelError::EmptyModel { query } => {
                write!(f, "{query} on an empty failure model")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// An error from the MTTF/MTTR analysis algebra
/// ([`analysis`](crate::analysis)).
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// A tree lookup failed.
    Tree(TreeError),
    /// A failure-model query failed.
    Model(ModelError),
    /// A parameter that must be positive and finite was not.
    NonPositive {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A parameter fell outside its valid range.
    OutOfRange {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A group aggregate was asked of an empty member list.
    EmptyGroup {
        /// Which aggregate hit the empty group.
        what: &'static str,
    },
    /// §4.1 cure probabilities do not sum to 1 (the `A_cure` assumption).
    UnnormalizedCures {
        /// What the probabilities actually summed to.
        total: f64,
    },
}

impl From<TreeError> for AnalysisError {
    fn from(e: TreeError) -> AnalysisError {
        AnalysisError::Tree(e)
    }
}

impl From<ModelError> for AnalysisError {
    fn from(e: ModelError) -> AnalysisError {
        AnalysisError::Model(e)
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Tree(e) => e.fmt(f),
            AnalysisError::Model(e) => e.fmt(f),
            AnalysisError::NonPositive { what, value } => {
                write!(f, "{what} must be positive and finite, got {value}")
            }
            AnalysisError::OutOfRange { what, value } => {
                write!(f, "{what} is out of range: {value}")
            }
            AnalysisError::EmptyGroup { what } => write!(f, "{what} on an empty group"),
            AnalysisError::UnnormalizedCures { total } => {
                write!(f, "cure probabilities sum to {total}, expected 1 (A_cure)")
            }
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Tree(e) => Some(e),
            AnalysisError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownNode(id) => write!(f, "unknown restart cell {id}"),
            TreeError::UnknownComponent(name) => write!(f, "unknown component {name:?}"),
            TreeError::DuplicateComponent(name) => {
                write!(f, "component {name:?} is already attached to a cell")
            }
            TreeError::InvalidTransform { transform, reason } => {
                write!(f, "invalid {transform}: {reason}")
            }
            TreeError::CannotModifyRoot => {
                write!(f, "the root cell cannot be removed or re-parented")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_and_analysis_errors_display() {
        let e = ModelError::InvalidRate {
            mode: "fedr-crash".into(),
            rate: f64::NAN,
        };
        assert!(e.to_string().contains("fedr-crash"));
        let e = AnalysisError::NonPositive {
            what: "MTTF",
            value: -1.0,
        };
        assert!(e.to_string().contains("MTTF"));
        let e: AnalysisError = TreeError::CannotModifyRoot.into();
        assert!(matches!(e, AnalysisError::Tree(_)));
        let e: AnalysisError = ModelError::EmptyModel {
            query: "system_mttf_s",
        }
        .into();
        assert!(e.to_string().contains("system_mttf_s"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_messages_are_informative() {
        let e = TreeError::UnknownComponent("warp".into());
        assert!(e.to_string().contains("warp"));
        let e = TreeError::invalid("consolidation", "cells are not siblings");
        assert!(e.to_string().contains("consolidation"));
        assert!(e.to_string().contains("siblings"));
        assert!(TreeError::CannotModifyRoot.to_string().contains("root"));
    }
}

//! Error types for restart-tree construction and transformation.

use std::fmt;

use crate::tree::NodeId;

/// An error manipulating a [`RestartTree`](crate::tree::RestartTree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The node id does not name a live node of this tree.
    UnknownNode(NodeId),
    /// The component name is not attached anywhere in the tree.
    UnknownComponent(String),
    /// The component name is already attached to a cell.
    DuplicateComponent(String),
    /// A transformation's preconditions were not met.
    InvalidTransform {
        /// Which transformation failed.
        transform: &'static str,
        /// Why its preconditions were not met.
        reason: String,
    },
    /// The operation would orphan or delete the root cell.
    CannotModifyRoot,
}

impl TreeError {
    pub(crate) fn invalid(transform: &'static str, reason: impl Into<String>) -> TreeError {
        TreeError::InvalidTransform {
            transform,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownNode(id) => write!(f, "unknown restart cell {id}"),
            TreeError::UnknownComponent(name) => write!(f, "unknown component {name:?}"),
            TreeError::DuplicateComponent(name) => {
                write!(f, "component {name:?} is already attached to a cell")
            }
            TreeError::InvalidTransform { transform, reason } => {
                write!(f, "invalid {transform}: {reason}")
            }
            TreeError::CannotModifyRoot => {
                write!(f, "the root cell cannot be removed or re-parented")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TreeError::UnknownComponent("warp".into());
        assert!(e.to_string().contains("warp"));
        let e = TreeError::invalid("consolidation", "cells are not siblings");
        assert!(e.to_string().contains("consolidation"));
        assert!(e.to_string().contains("siblings"));
        assert!(TreeError::CannotModifyRoot.to_string().contains("root"));
    }
}

//! Automatic restart-tree optimization — the "specific algorithms for
//! transforming restart trees" the paper leaves as future work (§7).
//!
//! Given a failure model, a cost model and an oracle quality, the optimizer
//! searches the space of restart trees reachable through the paper's
//! transformations (augment, group, consolidate, promote, demote, flatten)
//! for the tree minimizing analytic expected system MTTR. The search is a
//! steepest-descent hill climb over single-transformation neighbourhoods;
//! because every paper transformation and its inverse are in the move set,
//! the climb can both grow and shrink the tree.
//!
//! The headline test (and the `ablation_optimizer` bench) shows the optimizer
//! re-deriving the paper's hand-designed trees: starting from the trivial
//! tree I it reaches a tree equivalent to tree IV under a perfect oracle, and
//! to tree V under the §4.4 faulty oracle.

use crate::analysis::{expected_system_mttr_s, CostModel, OracleQuality};
use crate::error::{AnalysisError, TreeError};
use crate::model::FailureModel;
use crate::transform::{
    consolidate, consolidate_one_sided, demote_component, depth_augment, flatten, group_cells,
    promote_component,
};
use crate::tree::{NodeId, RestartTree};

/// One applied transformation, for reporting the optimizer's derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Move {
    /// Depth-augmented a cell into singleton children.
    AugmentSingletons(String),
    /// Grouped sibling cells under a new intermediate cell.
    Group(Vec<String>),
    /// Consolidated sibling cells into one.
    Consolidate(Vec<String>),
    /// One-sided consolidation: grouped two siblings and absorbed the second
    /// into the joint cell (the paper's view of node promotion, §4.4).
    ConsolidateOneSided {
        /// The sibling that keeps its own restart button.
        keep: String,
        /// The sibling absorbed into the joint cell.
        absorb: String,
    },
    /// Promoted a component into its parent cell.
    Promote(String),
    /// Demoted a component into its own child cell.
    Demote(String),
    /// Flattened a subtree.
    Flatten(String),
}

impl std::fmt::Display for Move {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Move::AugmentSingletons(cell) => write!(f, "augment {cell} into singletons"),
            Move::Group(cells) => write!(f, "group [{}]", cells.join(", ")),
            Move::Consolidate(cells) => write!(f, "consolidate [{}]", cells.join(", ")),
            Move::ConsolidateOneSided { keep, absorb } => {
                write!(f, "one-sided consolidate: absorb {absorb}, keep {keep}")
            }
            Move::Promote(c) => write!(f, "promote {c}"),
            Move::Demote(c) => write!(f, "demote {c}"),
            Move::Flatten(cell) => write!(f, "flatten {cell}"),
        }
    }
}

/// The result of an optimization run.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The best tree found.
    pub tree: RestartTree,
    /// Its analytic expected MTTR in seconds.
    pub expected_mttr_s: f64,
    /// The move sequence that produced it.
    pub derivation: Vec<Move>,
}

/// Configuration for [`optimize_tree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Stop after this many accepted moves (defends against pathological
    /// cost models).
    pub max_moves: usize,
    /// A candidate must improve expected MTTR by more than this (seconds) to
    /// be accepted — prevents churning on ties.
    pub min_improvement_s: f64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            max_moves: 64,
            min_improvement_s: 1e-9,
        }
    }
}

fn neighbourhood(tree: &RestartTree) -> Vec<(Move, RestartTree)> {
    let mut out = Vec::new();

    // Augment any cell holding ≥2 components into singletons.
    for cell in tree.cells() {
        let comps = tree.components_at(cell).to_vec();
        if comps.len() >= 2 {
            let partition: Vec<Vec<String>> = comps.iter().map(|c| vec![c.clone()]).collect();
            let mut t = tree.clone();
            if depth_augment(&mut t, cell, &partition).is_ok() {
                out.push((Move::AugmentSingletons(tree.label(cell).to_string()), t));
            }
        }
    }

    // Pairwise group / consolidate of sibling cells.
    for parent in tree.cells() {
        let children = tree.children(parent).to_vec();
        for i in 0..children.len() {
            for j in (i + 1)..children.len() {
                let pair = [children[i], children[j]];
                let labels = vec![
                    tree.label(pair[0]).to_string(),
                    tree.label(pair[1]).to_string(),
                ];
                let mut t = tree.clone();
                if group_cells(&mut t, &pair).is_ok() {
                    out.push((Move::Group(labels.clone()), t));
                }
                let mut t = tree.clone();
                if consolidate(&mut t, &pair).is_ok() {
                    out.push((Move::Consolidate(labels.clone()), t));
                }
                for (keep, absorb) in [(pair[0], pair[1]), (pair[1], pair[0])] {
                    let mut t = tree.clone();
                    if consolidate_one_sided(&mut t, keep, absorb).is_ok() {
                        out.push((
                            Move::ConsolidateOneSided {
                                keep: tree.label(keep).to_string(),
                                absorb: tree.label(absorb).to_string(),
                            },
                            t,
                        ));
                    }
                }
            }
        }
    }

    // Promote / demote every component.
    for comp in tree.components() {
        let mut t = tree.clone();
        if promote_component(&mut t, &comp).is_ok() {
            out.push((Move::Promote(comp.clone()), t));
        }
        let mut t = tree.clone();
        if demote_component(&mut t, &comp).is_ok() {
            out.push((Move::Demote(comp.clone()), t));
        }
    }

    // Flatten every internal non-root cell (and the root).
    for cell in tree.cells() {
        if !tree.children(cell).is_empty() {
            let mut t = tree.clone();
            if flatten(&mut t, cell).is_ok() {
                out.push((Move::Flatten(tree.label(cell).to_string()), t));
            }
        }
    }

    out
}

/// Hill-climbs from `start` to a locally optimal restart tree.
///
/// # Errors
///
/// Returns [`AnalysisError`] if the failure model references components absent
/// from `start`.
pub fn optimize_tree(
    start: &RestartTree,
    model: &FailureModel,
    cost: &dyn CostModel,
    quality: OracleQuality,
    config: OptimizerConfig,
) -> Result<Optimized, AnalysisError> {
    model
        .validate_against(start)
        .map_err(|missing| TreeError::UnknownComponent(missing.join(", ")))?;

    let mut current = start.clone();
    let mut current_cost = expected_system_mttr_s(&current, model, cost, quality)?;
    let mut derivation = Vec::new();

    for _ in 0..config.max_moves {
        let mut best: Option<(Move, RestartTree, f64)> = None;
        for (mv, candidate) in neighbourhood(&current) {
            debug_assert!(candidate.validate().is_ok(), "move {mv} broke the tree");
            let Ok(c) = expected_system_mttr_s(&candidate, model, cost, quality) else {
                continue;
            };
            if c < current_cost - config.min_improvement_s
                && best.as_ref().is_none_or(|(_, _, b)| c < *b)
            {
                best = Some((mv, candidate, c));
            }
        }
        match best {
            Some((mv, tree, c)) => {
                derivation.push(mv);
                current = tree;
                current_cost = c;
            }
            None => break,
        }
    }

    Ok(Optimized {
        tree: current,
        expected_mttr_s: current_cost,
        derivation,
    })
}

/// Convenience: the cell of `tree` whose subtree exactly covers `components`,
/// if one exists. Useful for asserting that an optimized tree contains a
/// particular restart group.
pub fn find_group(tree: &RestartTree, components: &[&str]) -> Option<NodeId> {
    let mut want: Vec<String> = components.iter().map(|s| s.to_string()).collect();
    want.sort();
    tree.cells()
        .into_iter()
        .find(|&c| tree.components_under(c) == want)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SimpleCostModel;
    use crate::model::FailureMode;
    use crate::tree::TreeSpec;

    /// The post-split Mercury component set with calibrated costs.
    fn cost() -> SimpleCostModel {
        SimpleCostModel::new(0.9, 2.0)
            .with_boot("mbus", 4.83)
            .with_boot("fedr", 4.86)
            .with_boot("pbcom", 20.34)
            .with_boot("ses", 5.25)
            .with_boot("str", 5.11)
            .with_boot("rtu", 4.69)
            .with_contention(0.0119)
            .with_sync_pair("ses", "str", 3.35)
            .with_sync_pair("str", "ses", 3.75)
            .with_rapid_restart_penalty("pbcom", 4.0)
    }

    /// Mercury's failure model: Table 1 rates plus the correlated modes of
    /// §4.2/§4.3.
    fn model() -> FailureModel {
        FailureModel::new()
            .with_mode(FailureMode::solo("mbus", "mbus", 1.0 / (30.0 * 24.0)).unwrap())
            .with_mode(FailureMode::solo("fedr", "fedr", 5.0).unwrap())
            .with_mode(FailureMode::solo("pbcom", "pbcom", 0.05).unwrap())
            .with_mode(
                FailureMode::correlated("pbcom-joint", "pbcom", ["fedr", "pbcom"], 0.4).unwrap(),
            )
            .with_mode(FailureMode::correlated("ses", "ses", ["ses", "str"], 0.2).unwrap())
            .with_mode(FailureMode::correlated("str", "str", ["ses", "str"], 0.2).unwrap())
            .with_mode(FailureMode::solo("rtu", "rtu", 0.2).unwrap())
    }

    fn tree_i() -> RestartTree {
        TreeSpec::cell("mercury")
            .with_components(["mbus", "fedr", "pbcom", "ses", "str", "rtu"])
            .build()
            .unwrap()
    }

    #[test]
    fn optimizer_improves_on_tree_i() {
        let c = cost();
        let m = model();
        let start = tree_i();
        let start_cost = expected_system_mttr_s(&start, &m, &c, OracleQuality::Perfect).unwrap();
        let opt = optimize_tree(
            &start,
            &m,
            &c,
            OracleQuality::Perfect,
            OptimizerConfig::default(),
        )
        .unwrap();
        opt.tree.validate().unwrap();
        assert!(
            opt.expected_mttr_s < start_cost / 2.0,
            "optimizer {:.2}s vs tree I {:.2}s",
            opt.expected_mttr_s,
            start_cost
        );
        assert!(!opt.derivation.is_empty());
    }

    #[test]
    fn optimizer_discovers_ses_str_consolidation() {
        let opt = optimize_tree(
            &tree_i(),
            &model(),
            &cost(),
            OracleQuality::Perfect,
            OptimizerConfig::default(),
        )
        .unwrap();
        // The optimized tree must contain a restart group of exactly
        // {ses, str} (tree IV's consolidated cell).
        let cell = find_group(&opt.tree, &["ses", "str"]);
        assert!(cell.is_some(), "no [ses,str] group in:\n{}", opt.tree);
    }

    #[test]
    fn optimizer_discovers_joint_fedr_pbcom_group() {
        let opt = optimize_tree(
            &tree_i(),
            &model(),
            &cost(),
            OracleQuality::Perfect,
            OptimizerConfig::default(),
        )
        .unwrap();
        // With f_{fedr,pbcom} > 0, a joint restart button must exist (§4.2)
        // while fedr keeps its own (fedr fails often and boots fast).
        assert!(
            find_group(&opt.tree, &["fedr", "pbcom"]).is_some(),
            "{}",
            opt.tree
        );
        assert!(find_group(&opt.tree, &["fedr"]).is_some(), "{}", opt.tree);
    }

    #[test]
    fn faulty_oracle_drives_promotion_to_tree_v_shape() {
        let opt = optimize_tree(
            &tree_i(),
            &model(),
            &cost(),
            OracleQuality::Faulty { undershoot: 0.3 },
            OptimizerConfig::default(),
        )
        .unwrap();
        // Under a faulty oracle the optimum removes pbcom's solo button:
        // pbcom's own cell must cover fedr too (tree V), so the
        // guess-too-low mistake is impossible.
        let pbcom_cell = opt.tree.cell_of_component("pbcom").unwrap();
        let under = opt.tree.components_under(pbcom_cell);
        assert_eq!(under, vec!["fedr", "pbcom"], "{}", opt.tree);
        // fedr keeps its cheap solo button.
        assert!(find_group(&opt.tree, &["fedr"]).is_some(), "{}", opt.tree);
    }

    #[test]
    fn perfect_oracle_keeps_pbcom_solo_button() {
        // With a perfect oracle, tree IV is never worse than tree V
        // ("tree IV is strictly more flexible", §4.4) — pbcom should keep a
        // solo cell because solo pbcom failures exist.
        let opt = optimize_tree(
            &tree_i(),
            &model(),
            &cost(),
            OracleQuality::Perfect,
            OptimizerConfig::default(),
        )
        .unwrap();
        assert!(find_group(&opt.tree, &["pbcom"]).is_some(), "{}", opt.tree);
    }

    #[test]
    fn optimizer_is_idempotent_at_local_optimum() {
        let c = cost();
        let m = model();
        let first = optimize_tree(
            &tree_i(),
            &m,
            &c,
            OracleQuality::Perfect,
            OptimizerConfig::default(),
        )
        .unwrap();
        let second = optimize_tree(
            &first.tree,
            &m,
            &c,
            OracleQuality::Perfect,
            OptimizerConfig::default(),
        )
        .unwrap();
        assert!(second.derivation.is_empty());
        assert!((second.expected_mttr_s - first.expected_mttr_s).abs() < 1e-9);
    }

    #[test]
    fn optimizer_rejects_incomplete_trees() {
        let tree = TreeSpec::cell("r").with_component("fedr").build().unwrap();
        let err = optimize_tree(
            &tree,
            &model(),
            &cost(),
            OracleQuality::Perfect,
            OptimizerConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            AnalysisError::Tree(TreeError::UnknownComponent(_))
        ));
    }

    #[test]
    fn move_display() {
        assert_eq!(Move::Promote("pbcom".into()).to_string(), "promote pbcom");
        assert!(Move::Consolidate(vec!["a".into(), "b".into()])
            .to_string()
            .contains("a, b"));
    }

    #[test]
    fn find_group_exact_match_only() {
        let tree = tree_i();
        assert!(find_group(&tree, &["mbus"]).is_none());
        assert!(find_group(&tree, &["fedr", "mbus", "pbcom", "rtu", "ses", "str"]).is_some());
    }
}

//! The recoverer: turns failure reports into restart decisions (§3.3).
//!
//! "The restart tree plays a central role in keeping a recursively
//! restartable system alive, in conjunction with a recoverer, which performs
//! the actual restarts." The [`Recoverer`] here is execution-agnostic: it
//! owns the tree, an [`Oracle`] and a [`RestartPolicy`], tracks failure
//! *episodes*, and returns [`RecoveryDecision`]s. The caller (Mercury's `REC`
//! process, or the threaded runtime's supervisor) actually kills and respawns
//! processes and reports back.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rr_sim::{SimDuration, SimTime};

use crate::deadline::DeadlineModel;
use crate::oracle::{Failure, Oracle, RestartOutcome};
use crate::policy::{GiveUpReason, RestartPolicy};
use crate::schedule::{plan_episodes, Suspicion};
use crate::tree::{NodeId, RestartTree};

/// What the recoverer wants done about a reported failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryDecision {
    /// Restart the given cell (i.e. all `components`, together).
    Restart {
        /// The cell whose button to push.
        node: NodeId,
        /// The components under that cell, in sorted order.
        components: Vec<String>,
        /// 0-based escalation attempt within the failure episode.
        attempt: u32,
        /// How long to wait before pushing the button (the policy's
        /// exponential backoff; zero unless backoff is configured and the
        /// cell was restarted recently).
        delay: SimDuration,
        /// The originating suspicions this episode answers. The first entry
        /// is the episode owner (its key for
        /// [`Recoverer::on_restart_complete`] / [`Recoverer::on_cured`]);
        /// any further entries are suspicions whose episodes were merged
        /// into this one by promotion to the least common ancestor, and
        /// whose previously-issued restarts are superseded.
        origins: Vec<String>,
    },
    /// A restart of a cell covering this component is already in flight;
    /// the new report is subsumed by it.
    AlreadyRecovering {
        /// The in-flight cell.
        node: NodeId,
    },
    /// The policy refused further restarts; escalate to a human operator.
    GiveUp {
        /// The component whose episode was abandoned.
        component: String,
        /// Why.
        reason: GiveUpReason,
    },
}

#[derive(Debug, Clone)]
struct Episode {
    failure: Failure,
    attempt: u32,
    last_node: Option<NodeId>,
    /// `true` once the restart has been issued but not yet completed.
    in_flight: bool,
    /// The suspicions this episode answers: just the owner, until an LCA
    /// merge folds other episodes' origins in.
    origins: BTreeSet<String>,
}

/// Aggregate counts of every decision the recoverer has made, in a shape
/// convenient for export into a telemetry registry (each field maps onto one
/// oracle-decision counter).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionTally {
    /// Restarts issued (one per [`RecoveryDecision::Restart`]).
    pub restarts: u64,
    /// Episodes abandoned to quarantine.
    pub give_ups: u64,
    /// In-flight episodes absorbed into a promoted (LCA-merged) restart.
    pub merges: u64,
    /// Failure reports swallowed because a covering restart was already in
    /// flight.
    pub already_recovering: u64,
}

/// A canonical snapshot of one open failure episode, exposed for model
/// checking and invariant auditing ([`Recoverer::protocol_snapshot`]).
///
/// Snapshots carry everything an external checker needs to reconstruct the
/// protocol state — owner, escalation depth, target cell, in-flight flag and
/// merged origins — without reaching into the recoverer's internals, and they
/// order/compare deterministically so they can serve as (part of) a canonical
/// state signature.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EpisodeSnapshot {
    /// The episode's owner component (its key for completion and cure calls).
    pub owner: String,
    /// 0-based escalation attempt the episode has reached.
    pub attempt: u32,
    /// The cell targeted by the latest restart, if one was issued.
    pub cell: Option<NodeId>,
    /// `true` while the latest restart is issued but not yet complete.
    pub in_flight: bool,
    /// The originating suspicions folded into this episode, sorted.
    pub origins: Vec<String>,
}

/// Tracks failure episodes and produces restart decisions.
///
/// Protocol, per failure episode:
///
/// 1. [`Recoverer::on_failure`] — returns the cell to restart (or a give-up).
/// 2. caller performs the restart, then calls
///    [`Recoverer::on_restart_complete`].
/// 3. if the failure re-manifests, another [`Recoverer::on_failure`]
///    escalates; if it does not, the caller confirms with
///    [`Recoverer::on_cured`], which also feeds the learning oracle.
///
/// A recoverer over a cloneable oracle is itself cloneable: the clone shares
/// nothing with the original, which is what lets a model checker fork the
/// *real* protocol implementation at a state and explore every interleaving
/// of the actions enabled there.
#[derive(Clone)]
pub struct Recoverer<O> {
    tree: RestartTree,
    oracle: O,
    policy: RestartPolicy,
    /// Open episodes keyed by owner component. Ordered so that iteration
    /// (and therefore merge resolution and decision order) is deterministic.
    episodes: BTreeMap<String, Episode>,
    /// Deadline model ordering batch plans by slack. Empty by default, in
    /// which case planning keeps the tree's pre-order (the pre-deadline
    /// behaviour, byte-identical in traces).
    deadlines: DeadlineModel,
    restarts_issued: u64,
    give_ups: u64,
    merges: u64,
    already_recovering: u64,
}

impl<O: fmt::Debug> fmt::Debug for Recoverer<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recoverer")
            .field("oracle", &self.oracle)
            .field("open_episodes", &self.episodes.len())
            .field("restarts_issued", &self.restarts_issued)
            .field("give_ups", &self.give_ups)
            .field("merges", &self.merges)
            .field("already_recovering", &self.already_recovering)
            .finish()
    }
}

impl<O: Oracle> Recoverer<O> {
    /// Creates a recoverer over `tree` with the given oracle and policy.
    pub fn new(tree: RestartTree, oracle: O, policy: RestartPolicy) -> Recoverer<O> {
        Recoverer {
            tree,
            oracle,
            policy,
            episodes: BTreeMap::new(),
            deadlines: DeadlineModel::new(),
            restarts_issued: 0,
            give_ups: 0,
            merges: 0,
            already_recovering: 0,
        }
    }

    /// The restart tree being operated.
    pub fn tree(&self) -> &RestartTree {
        &self.tree
    }

    /// The oracle (e.g. to inspect learned estimates).
    pub fn oracle(&self) -> &O {
        &self.oracle
    }

    /// Replaces the tree (e.g. after an offline transformation). Open
    /// episodes are cleared, since their node ids referred to the old tree.
    pub fn set_tree(&mut self, tree: RestartTree) {
        self.tree = tree;
        self.episodes.clear();
    }

    /// Replaces the restart policy. Existing restart history is discarded;
    /// the new policy governs subsequent decisions.
    pub fn set_policy(&mut self, policy: RestartPolicy) {
        self.policy = policy;
    }

    /// Replaces the deadline model ([`crate::deadline`]). Batch plans are
    /// thereafter issued most-urgent first instead of in tree pre-order.
    pub fn set_deadline_model(&mut self, deadlines: DeadlineModel) {
        self.deadlines = deadlines;
    }

    /// The deadline model (empty unless one was set).
    pub fn deadline_model(&self) -> &DeadlineModel {
        &self.deadlines
    }

    /// Mutable access to the deadline model, so the driver can advance
    /// deadlines as passes come and go.
    pub fn deadline_model_mut(&mut self) -> &mut DeadlineModel {
        &mut self.deadlines
    }

    /// Total restarts issued.
    pub fn restarts_issued(&self) -> u64 {
        self.restarts_issued
    }

    /// Total abandoned episodes.
    pub fn give_ups(&self) -> u64 {
        self.give_ups
    }

    /// A snapshot of every decision counter, for export into telemetry.
    pub fn decision_tally(&self) -> DecisionTally {
        DecisionTally {
            restarts: self.restarts_issued,
            give_ups: self.give_ups,
            merges: self.merges,
            already_recovering: self.already_recovering,
        }
    }

    /// The cell of an in-flight restart already covering `component`, if any.
    fn covering_in_flight(&self, component: &str) -> Option<NodeId> {
        self.episodes.values().find_map(|ep| {
            let node = ep.last_node.filter(|_| ep.in_flight)?;
            self.tree
                .components_under(node)
                .iter()
                .any(|c| c == component)
                .then_some(node)
        })
    }

    /// Opens (or escalates) `failure`'s episode and asks the oracle for the
    /// target cell. Returns `(attempt, cell)`.
    fn prepare(&mut self, failure: &Failure) -> (u32, NodeId) {
        let episode = self
            .episodes
            .entry(failure.component.clone())
            .and_modify(|ep| {
                // Re-detection after a completed restart: escalate.
                ep.attempt += 1;
                ep.failure = failure.clone();
                ep.in_flight = false;
            })
            .or_insert_with(|| Episode {
                failure: failure.clone(),
                attempt: 0,
                last_node: None,
                in_flight: false,
                origins: BTreeSet::from([failure.component.clone()]),
            });
        let node = self
            .oracle
            .recommend(&self.tree, failure, episode.attempt, episode.last_node);
        (episode.attempt, node)
    }

    /// Issues the restart for `owner`'s episode targeting `node`, first
    /// merging away any **overlapping** in-flight episode: a cell may never
    /// restart concurrently with an episode touching its ancestor or
    /// descendant, so the target is promoted to the least common ancestor
    /// (repeatedly, since promotion can create new overlaps) and the
    /// absorbed episodes fold their origins and escalation depth into this
    /// one. Afterwards the in-flight cells again form an antichain.
    fn issue(
        &mut self,
        owner: String,
        mut node: NodeId,
        mut attempt: u32,
        mut origins: BTreeSet<String>,
        now: SimTime,
    ) -> RecoveryDecision {
        origins.insert(owner.clone());
        loop {
            let absorbed = self.episodes.iter().find_map(|(key, ep)| {
                let n = ep.last_node.filter(|_| ep.in_flight && *key != owner)?;
                self.tree.overlaps(n, node).then(|| key.clone())
            });
            let Some(key) = absorbed else { break };
            self.merges += 1;
            let ep = self
                .episodes
                .remove(&key)
                .unwrap_or_else(|| unreachable!("episode key just seen"));
            if let Some(n) = ep.last_node {
                if n != node {
                    node = self.tree.lca(node, n);
                }
            }
            attempt = attempt.max(ep.attempt);
            origins.extend(ep.origins);
        }
        let components = self.tree.components_under(node);

        if let Err(reason) = self.policy.check(attempt, &components, now) {
            for origin in &origins {
                self.episodes.remove(origin);
            }
            self.give_ups += 1;
            return RecoveryDecision::GiveUp {
                component: owner,
                reason,
            };
        }

        // Consolidate: the owner's entry carries the merged episode; other
        // origins' entries (absorbed, or same-batch co-planned) disappear.
        for origin in &origins {
            if origin != &owner {
                self.episodes.remove(origin);
            }
        }
        let episode = self
            .episodes
            .get_mut(&owner)
            .unwrap_or_else(|| unreachable!("owner episode open"));
        episode.attempt = attempt;
        episode.last_node = Some(node);
        episode.in_flight = true;
        episode.origins = origins.clone();
        let delay = self.policy.restart_delay(&components, now);
        self.policy.record_restart(&components, now);
        self.restarts_issued += 1;
        let mut origin_list = vec![owner.clone()];
        origin_list.extend(origins.into_iter().filter(|o| *o != owner));
        RecoveryDecision::Restart {
            node,
            components,
            attempt,
            delay,
            origins: origin_list,
        }
    }

    /// Handles a failure report from the failure detector.
    pub fn on_failure(&mut self, failure: Failure, now: SimTime) -> RecoveryDecision {
        // If a restart already in flight covers this component, the failure
        // report is expected (the component is down *because* it is being
        // restarted) — do not start a second episode.
        if let Some(node) = self.covering_in_flight(&failure.component) {
            self.already_recovering += 1;
            return RecoveryDecision::AlreadyRecovering { node };
        }
        let owner = failure.component.clone();
        let (attempt, node) = self.prepare(&failure);
        self.issue(owner, node, attempt, BTreeSet::new(), now)
    }

    /// Handles a **batch** of concurrently-reported failures: plans the
    /// maximal antichain of target cells ([`plan_episodes`]) so suspicions
    /// whose cells overlap are recovered by one merged episode instead of
    /// racing restarts, then issues each planned episode. Independent
    /// episodes come back as separate [`RecoveryDecision::Restart`]s, safe
    /// to drive concurrently.
    pub fn on_failures(&mut self, failures: Vec<Failure>, now: SimTime) -> Vec<RecoveryDecision> {
        let mut decisions = Vec::new();
        let mut suspicions: Vec<Suspicion> = Vec::new();
        let mut attempts: BTreeMap<String, u32> = BTreeMap::new();
        for failure in failures {
            if let Some(node) = self.covering_in_flight(&failure.component) {
                decisions.push(RecoveryDecision::AlreadyRecovering { node });
                continue;
            }
            if attempts.contains_key(&failure.component) {
                continue; // duplicate report within the batch
            }
            let component = failure.component.clone();
            let (attempt, cell) = self.prepare(&failure);
            attempts.insert(component.clone(), attempt);
            suspicions.push(Suspicion { component, cell });
        }
        let mut plan = plan_episodes(&self.tree, &suspicions)
            .unwrap_or_else(|e| unreachable!("oracle cells are live: {e}"));
        plan.order_by_urgency(&self.deadlines, now);
        for planned in plan.episodes {
            // Deepest escalation among the merged origins carries over; the
            // owner is the first origin (deterministic: sorted order).
            let attempt = planned
                .origins
                .iter()
                .filter_map(|o| attempts.get(o))
                .copied()
                .max()
                .unwrap_or(0);
            let owner = planned.origins[0].clone();
            let origins: BTreeSet<String> = planned.origins.into_iter().collect();
            decisions.push(self.issue(owner, planned.cell, attempt, origins, now));
        }
        decisions
    }

    /// Reports that the restart issued for `component`'s episode has
    /// completed (all components are booted again). The episode stays open
    /// until [`Recoverer::on_cured`] or a re-detected failure.
    pub fn on_restart_complete(&mut self, component: &str, _now: SimTime) {
        if let Some(ep) = self.episodes.get_mut(component) {
            ep.in_flight = false;
        }
    }

    /// Confirms that `component`'s failure is cured; closes the episode and
    /// feeds the oracle positive feedback for the last restarted cell.
    pub fn on_cured(&mut self, component: &str, _now: SimTime) {
        if let Some(ep) = self.episodes.remove(component) {
            if let Some(node) = ep.last_node {
                self.oracle
                    .observe(&ep.failure, RestartOutcome { node, cured: true });
            }
        }
    }

    /// Records negative feedback for the previous attempt of an episode.
    /// Called internally by `on_failure` escalation in spirit; exposed so
    /// drivers that detect persistence out-of-band can teach the oracle.
    pub fn on_not_cured(&mut self, component: &str) {
        if let Some(ep) = self.episodes.get(component) {
            if let Some(node) = ep.last_node {
                self.oracle
                    .observe(&ep.failure, RestartOutcome { node, cured: false });
            }
        }
    }

    /// `true` if the component currently has an open failure episode.
    pub fn is_recovering(&self, component: &str) -> bool {
        self.episodes.contains_key(component)
    }

    /// `true` if a restart for `component`'s episode has been issued but not
    /// yet reported complete.
    pub fn is_in_flight(&self, component: &str) -> bool {
        self.episodes.get(component).is_some_and(|ep| ep.in_flight)
    }

    /// The originating suspicions of `component`'s open episode (sorted),
    /// or `None` if it has no open episode. A singleton unless other
    /// episodes were merged into this one; a cure of the episode cures
    /// every origin listed.
    pub fn episode_origins(&self, component: &str) -> Option<Vec<String>> {
        self.episodes
            .get(component)
            .map(|ep| ep.origins.iter().cloned().collect())
    }

    /// The cells of all in-flight episodes — by construction an antichain
    /// (see [`crate::schedule`]).
    pub fn in_flight_cells(&self) -> Vec<NodeId> {
        self.episodes
            .values()
            .filter(|ep| ep.in_flight)
            .filter_map(|ep| ep.last_node)
            .collect()
    }

    /// The restart policy this recoverer enforces.
    pub fn policy(&self) -> &RestartPolicy {
        &self.policy
    }

    /// A canonical, deterministic snapshot of every open episode, sorted by
    /// owner. This is the protocol-state extraction hook used by `rr-model`:
    /// together with the per-component restart counters from
    /// [`Recoverer::policy`] it captures everything that influences future
    /// decisions, so two states with equal snapshots behave identically.
    pub fn protocol_snapshot(&self) -> Vec<EpisodeSnapshot> {
        self.episodes
            .iter()
            .map(|(owner, ep)| EpisodeSnapshot {
                owner: owner.clone(),
                attempt: ep.attempt,
                cell: ep.last_node,
                in_flight: ep.in_flight,
                origins: ep.origins.iter().cloned().collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{NaiveOracle, PerfectOracle};
    use crate::tree::TreeSpec;
    use rr_sim::SimDuration;

    fn tree_iv() -> RestartTree {
        TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
            .with_child(
                TreeSpec::cell("R_[fedr,pbcom]")
                    .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
                    .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom")),
            )
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
            .build()
            .unwrap()
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn solo_failure_restarts_own_cell() {
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        let decision = rec.on_failure(Failure::solo("rtu"), t(10));
        match decision {
            RecoveryDecision::Restart { components, .. } => {
                assert_eq!(components, vec!["rtu"]);
            }
            other => panic!("unexpected decision {other:?}"),
        }
        assert!(rec.is_recovering("rtu"));
        rec.on_restart_complete("rtu", t(16));
        rec.on_cured("rtu", t(17));
        assert!(!rec.is_recovering("rtu"));
        assert_eq!(rec.restarts_issued(), 1);
    }

    #[test]
    fn consolidated_cell_restarts_both() {
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        let decision = rec.on_failure(Failure::solo("ses"), t(0));
        match decision {
            RecoveryDecision::Restart { components, .. } => {
                assert_eq!(components, vec!["ses", "str"]);
            }
            other => panic!("unexpected decision {other:?}"),
        }
    }

    #[test]
    fn in_flight_restart_subsumes_covered_failures() {
        // While the [ses,str] cell restarts, str's "failure" (it is down
        // because we killed it) must not open a second episode.
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        let d1 = rec.on_failure(Failure::solo("ses"), t(0));
        let node = match d1 {
            RecoveryDecision::Restart { node, .. } => node,
            other => panic!("unexpected {other:?}"),
        };
        let d2 = rec.on_failure(Failure::solo("str"), t(1));
        assert_eq!(d2, RecoveryDecision::AlreadyRecovering { node });
        assert_eq!(rec.restarts_issued(), 1);
    }

    #[test]
    fn redetection_escalates_with_naive_oracle() {
        let mut rec = Recoverer::new(tree_iv(), NaiveOracle::new(), RestartPolicy::new());
        let joint = Failure::correlated("pbcom", ["fedr", "pbcom"]);
        let d1 = rec.on_failure(joint.clone(), t(0));
        let first = match d1 {
            RecoveryDecision::Restart {
                node, components, ..
            } => {
                assert_eq!(components, vec!["pbcom"]);
                node
            }
            other => panic!("unexpected {other:?}"),
        };
        rec.on_restart_complete("pbcom", t(21));
        rec.on_not_cured("pbcom");
        // Failure persists → escalate to the joint cell.
        let d2 = rec.on_failure(joint, t(23));
        match d2 {
            RecoveryDecision::Restart {
                node, components, ..
            } => {
                assert_ne!(node, first);
                assert_eq!(components, vec!["fedr", "pbcom"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn escalation_limit_gives_up() {
        let policy = RestartPolicy::new().with_escalation_limit(2);
        let mut rec = Recoverer::new(tree_iv(), NaiveOracle::new(), policy);
        let f = Failure::solo("mbus");
        for i in 0..2 {
            let d = rec.on_failure(f.clone(), t(i * 30));
            assert!(
                matches!(d, RecoveryDecision::Restart { .. }),
                "attempt {i}: {d:?}"
            );
            rec.on_restart_complete("mbus", t(i * 30 + 10));
        }
        let d = rec.on_failure(f, t(100));
        assert_eq!(
            d,
            RecoveryDecision::GiveUp {
                component: "mbus".into(),
                reason: GiveUpReason::EscalationExhausted
            }
        );
        assert_eq!(rec.give_ups(), 1);
        assert!(!rec.is_recovering("mbus"));
    }

    #[test]
    fn restart_storm_gives_up() {
        let policy = RestartPolicy::new().with_rate_limit(2, SimDuration::from_secs(1000));
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), policy);
        for i in 0..2 {
            let d = rec.on_failure(Failure::solo("rtu"), t(i * 50));
            assert!(matches!(d, RecoveryDecision::Restart { .. }));
            rec.on_restart_complete("rtu", t(i * 50 + 6));
            rec.on_cured("rtu", t(i * 50 + 7));
        }
        let d = rec.on_failure(Failure::solo("rtu"), t(200));
        assert_eq!(
            d,
            RecoveryDecision::GiveUp {
                component: "rtu".into(),
                reason: GiveUpReason::RestartStorm
            }
        );
    }

    #[test]
    fn overlapping_episode_merges_to_lca() {
        // fedr's restart is in flight at R_fedr when a correlated pbcom
        // failure demands R_[fedr,pbcom] — an ancestor of the in-flight
        // cell. The episodes must merge (promotion to the LCA), not race.
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        let d1 = rec.on_failure(Failure::solo("fedr"), t(0));
        assert!(matches!(d1, RecoveryDecision::Restart { .. }));
        let joint = Failure::correlated("pbcom", ["fedr", "pbcom"]);
        let d2 = rec.on_failure(joint, t(1));
        match d2 {
            RecoveryDecision::Restart {
                node,
                components,
                origins,
                ..
            } => {
                assert_eq!(rec.tree().label(node), "R_[fedr,pbcom]");
                assert_eq!(components, vec!["fedr", "pbcom"]);
                assert_eq!(origins, vec!["pbcom", "fedr"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The absorbed episode is folded into the owner's.
        assert!(!rec.is_recovering("fedr"));
        assert!(rec.is_recovering("pbcom"));
        assert_eq!(rec.episode_origins("pbcom").unwrap(), vec!["fedr", "pbcom"]);
        assert!(super::super::schedule::is_antichain(
            rec.tree(),
            &rec.in_flight_cells()
        ));
        rec.on_restart_complete("pbcom", t(25));
        rec.on_cured("pbcom", t(28));
        assert!(!rec.is_recovering("pbcom"));
    }

    #[test]
    fn batch_of_independent_failures_yields_parallel_episodes() {
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        let decisions = rec.on_failures(vec![Failure::solo("rtu"), Failure::solo("fedr")], t(0));
        assert_eq!(decisions.len(), 2);
        let mut restarted: Vec<Vec<String>> = Vec::new();
        for d in decisions {
            match d {
                RecoveryDecision::Restart { components, .. } => restarted.push(components),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(restarted, vec![vec!["fedr"], vec!["rtu"]]);
        assert!(super::super::schedule::is_antichain(
            rec.tree(),
            &rec.in_flight_cells()
        ));
        assert_eq!(rec.restarts_issued(), 2);
    }

    #[test]
    fn batch_of_overlapping_failures_yields_one_merged_episode() {
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        let decisions = rec.on_failures(
            vec![
                Failure::solo("fedr"),
                Failure::correlated("pbcom", ["fedr", "pbcom"]),
            ],
            t(0),
        );
        assert_eq!(decisions.len(), 1, "{decisions:?}");
        match &decisions[0] {
            RecoveryDecision::Restart {
                node,
                components,
                origins,
                ..
            } => {
                assert_eq!(rec.tree().label(*node), "R_[fedr,pbcom]");
                assert_eq!(*components, vec!["fedr", "pbcom"]);
                assert_eq!(*origins, vec!["fedr", "pbcom"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(rec.restarts_issued(), 1, "one restart, not a race");
    }

    #[test]
    fn batch_issues_in_deadline_order_when_model_set() {
        use crate::deadline::DeadlineModel;
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        let batch = vec![Failure::solo("fedr"), Failure::solo("rtu")];
        // Pre-order baseline: fedr's cell precedes rtu's.
        let decisions = rec.on_failures(batch.clone(), t(0));
        let order: Vec<_> = decisions
            .iter()
            .map(|d| match d {
                RecoveryDecision::Restart { origins, .. } => origins[0].clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(order, vec!["fedr", "rtu"]);

        // With rtu holding the tighter pass deadline, it is issued first.
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        let mut model = DeadlineModel::new();
        model.set_deadline("rtu", t(40));
        model.set_deadline("fedr", t(400));
        rec.set_deadline_model(model);
        let decisions = rec.on_failures(batch, t(0));
        let order: Vec<_> = decisions
            .iter()
            .map(|d| match d {
                RecoveryDecision::Restart { origins, .. } => origins[0].clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(order, vec!["rtu", "fedr"]);
        assert_eq!(rec.deadline_model().deadline_of("rtu"), Some(t(40)));
    }

    #[test]
    fn batch_subsumes_covered_failures() {
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        let d1 = rec.on_failure(Failure::solo("ses"), t(0));
        let node = match d1 {
            RecoveryDecision::Restart { node, .. } => node,
            other => panic!("unexpected {other:?}"),
        };
        // str is down because the [ses,str] cell is mid-restart; rtu is a
        // genuinely new, independent failure.
        let decisions = rec.on_failures(vec![Failure::solo("str"), Failure::solo("rtu")], t(1));
        assert_eq!(decisions.len(), 2);
        assert_eq!(decisions[0], RecoveryDecision::AlreadyRecovering { node });
        assert!(matches!(
            &decisions[1],
            RecoveryDecision::Restart { components, .. } if *components == vec!["rtu"]
        ));
    }

    #[test]
    fn merge_inherits_deepest_escalation() {
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        let f = Failure::solo("fedr");
        // Drive fedr's episode to attempt 1 with the restart in flight.
        assert!(matches!(
            rec.on_failure(f.clone(), t(0)),
            RecoveryDecision::Restart { attempt: 0, .. }
        ));
        rec.on_restart_complete("fedr", t(6));
        assert!(matches!(
            rec.on_failure(f, t(8)),
            RecoveryDecision::Restart { attempt: 1, .. }
        ));
        // fedr's attempt-1 cell is R_[fedr,pbcom] (the perfect oracle climbs
        // on escalation). A failure needing [mbus, fedr] targets the root,
        // which overlaps it: the merge absorbs fedr's episode — and inherits
        // its escalation depth.
        let wide = Failure::correlated("mbus", ["mbus", "fedr"]);
        match rec.on_failure(wide, t(9)) {
            RecoveryDecision::Restart {
                node,
                attempt,
                origins,
                ..
            } => {
                assert_eq!(node, rec.tree().root());
                assert_eq!(attempt, 1);
                assert_eq!(origins, vec!["mbus", "fedr"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(super::super::schedule::is_antichain(
            rec.tree(),
            &rec.in_flight_cells()
        ));
    }

    #[test]
    fn set_tree_clears_episodes() {
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        rec.on_failure(Failure::solo("rtu"), t(0));
        assert!(rec.is_recovering("rtu"));
        rec.set_tree(tree_iv());
        assert!(!rec.is_recovering("rtu"));
    }

    #[test]
    fn learning_oracle_gets_feedback_through_recoverer() {
        use crate::oracle::LearningOracle;
        let mut rec = Recoverer::new(tree_iv(), LearningOracle::new(0.5), RestartPolicy::new());
        let f = Failure::solo("fedr");
        let own = rec.tree().cell_of_component("fedr").unwrap();
        for i in 0..5 {
            let d = rec.on_failure(f.clone(), t(i * 100));
            assert!(matches!(d, RecoveryDecision::Restart { .. }));
            rec.on_restart_complete("fedr", t(i * 100 + 6));
            rec.on_cured("fedr", t(i * 100 + 7));
        }
        assert!(rec.oracle().estimate("fedr", own) > 0.7);
    }
}

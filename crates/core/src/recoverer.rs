//! The recoverer: turns failure reports into restart decisions (§3.3).
//!
//! "The restart tree plays a central role in keeping a recursively
//! restartable system alive, in conjunction with a recoverer, which performs
//! the actual restarts." The [`Recoverer`] here is execution-agnostic: it
//! owns the tree, an [`Oracle`] and a [`RestartPolicy`], tracks failure
//! *episodes*, and returns [`RecoveryDecision`]s. The caller (Mercury's `REC`
//! process, or the threaded runtime's supervisor) actually kills and respawns
//! processes and reports back.

use std::collections::HashMap;
use std::fmt;

use rr_sim::{SimDuration, SimTime};

use crate::oracle::{Failure, Oracle, RestartOutcome};
use crate::policy::{GiveUpReason, RestartPolicy};
use crate::tree::{NodeId, RestartTree};

/// What the recoverer wants done about a reported failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryDecision {
    /// Restart the given cell (i.e. all `components`, together).
    Restart {
        /// The cell whose button to push.
        node: NodeId,
        /// The components under that cell, in sorted order.
        components: Vec<String>,
        /// 0-based escalation attempt within the failure episode.
        attempt: u32,
        /// How long to wait before pushing the button (the policy's
        /// exponential backoff; zero unless backoff is configured and the
        /// cell was restarted recently).
        delay: SimDuration,
    },
    /// A restart of a cell covering this component is already in flight;
    /// the new report is subsumed by it.
    AlreadyRecovering {
        /// The in-flight cell.
        node: NodeId,
    },
    /// The policy refused further restarts; escalate to a human operator.
    GiveUp {
        /// The component whose episode was abandoned.
        component: String,
        /// Why.
        reason: GiveUpReason,
    },
}

#[derive(Debug, Clone)]
struct Episode {
    failure: Failure,
    attempt: u32,
    last_node: Option<NodeId>,
    /// `true` once the restart has been issued but not yet completed.
    in_flight: bool,
}

/// Tracks failure episodes and produces restart decisions.
///
/// Protocol, per failure episode:
///
/// 1. [`Recoverer::on_failure`] — returns the cell to restart (or a give-up).
/// 2. caller performs the restart, then calls
///    [`Recoverer::on_restart_complete`].
/// 3. if the failure re-manifests, another [`Recoverer::on_failure`]
///    escalates; if it does not, the caller confirms with
///    [`Recoverer::on_cured`], which also feeds the learning oracle.
pub struct Recoverer<O> {
    tree: RestartTree,
    oracle: O,
    policy: RestartPolicy,
    episodes: HashMap<String, Episode>,
    restarts_issued: u64,
    give_ups: u64,
}

impl<O: fmt::Debug> fmt::Debug for Recoverer<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recoverer")
            .field("oracle", &self.oracle)
            .field("open_episodes", &self.episodes.len())
            .field("restarts_issued", &self.restarts_issued)
            .field("give_ups", &self.give_ups)
            .finish()
    }
}

impl<O: Oracle> Recoverer<O> {
    /// Creates a recoverer over `tree` with the given oracle and policy.
    pub fn new(tree: RestartTree, oracle: O, policy: RestartPolicy) -> Recoverer<O> {
        Recoverer {
            tree,
            oracle,
            policy,
            episodes: HashMap::new(),
            restarts_issued: 0,
            give_ups: 0,
        }
    }

    /// The restart tree being operated.
    pub fn tree(&self) -> &RestartTree {
        &self.tree
    }

    /// The oracle (e.g. to inspect learned estimates).
    pub fn oracle(&self) -> &O {
        &self.oracle
    }

    /// Replaces the tree (e.g. after an offline transformation). Open
    /// episodes are cleared, since their node ids referred to the old tree.
    pub fn set_tree(&mut self, tree: RestartTree) {
        self.tree = tree;
        self.episodes.clear();
    }

    /// Replaces the restart policy. Existing restart history is discarded;
    /// the new policy governs subsequent decisions.
    pub fn set_policy(&mut self, policy: RestartPolicy) {
        self.policy = policy;
    }

    /// Total restarts issued.
    pub fn restarts_issued(&self) -> u64 {
        self.restarts_issued
    }

    /// Total abandoned episodes.
    pub fn give_ups(&self) -> u64 {
        self.give_ups
    }

    /// Handles a failure report from the failure detector.
    pub fn on_failure(&mut self, failure: Failure, now: SimTime) -> RecoveryDecision {
        // If a restart already in flight covers this component, the failure
        // report is expected (the component is down *because* it is being
        // restarted) — do not start a second episode.
        for ep in self.episodes.values() {
            if ep.in_flight {
                if let Some(node) = ep.last_node {
                    if self
                        .tree
                        .components_under(node)
                        .contains(&failure.component)
                    {
                        return RecoveryDecision::AlreadyRecovering { node };
                    }
                }
            }
        }

        let episode = self
            .episodes
            .entry(failure.component.clone())
            .and_modify(|ep| {
                // Re-detection after a completed restart: escalate.
                ep.attempt += 1;
                ep.failure = failure.clone();
                ep.in_flight = false;
            })
            .or_insert(Episode {
                failure: failure.clone(),
                attempt: 0,
                last_node: None,
                in_flight: false,
            });

        let node = self
            .oracle
            .recommend(&self.tree, &failure, episode.attempt, episode.last_node);
        let components = self.tree.components_under(node);

        if let Err(reason) = self.policy.check(episode.attempt, &components, now) {
            self.episodes.remove(&failure.component);
            self.give_ups += 1;
            return RecoveryDecision::GiveUp {
                component: failure.component,
                reason,
            };
        }

        let episode = self
            .episodes
            .get_mut(&failure.component)
            .expect("episode just inserted");
        let attempt = episode.attempt;
        episode.last_node = Some(node);
        episode.in_flight = true;
        let delay = self.policy.restart_delay(&components, now);
        self.policy.record_restart(&components, now);
        self.restarts_issued += 1;
        RecoveryDecision::Restart {
            node,
            components,
            attempt,
            delay,
        }
    }

    /// Reports that the restart issued for `component`'s episode has
    /// completed (all components are booted again). The episode stays open
    /// until [`Recoverer::on_cured`] or a re-detected failure.
    pub fn on_restart_complete(&mut self, component: &str, _now: SimTime) {
        if let Some(ep) = self.episodes.get_mut(component) {
            ep.in_flight = false;
        }
    }

    /// Confirms that `component`'s failure is cured; closes the episode and
    /// feeds the oracle positive feedback for the last restarted cell.
    pub fn on_cured(&mut self, component: &str, _now: SimTime) {
        if let Some(ep) = self.episodes.remove(component) {
            if let Some(node) = ep.last_node {
                self.oracle
                    .observe(&ep.failure, RestartOutcome { node, cured: true });
            }
        }
    }

    /// Records negative feedback for the previous attempt of an episode.
    /// Called internally by `on_failure` escalation in spirit; exposed so
    /// drivers that detect persistence out-of-band can teach the oracle.
    pub fn on_not_cured(&mut self, component: &str) {
        if let Some(ep) = self.episodes.get(component) {
            if let Some(node) = ep.last_node {
                self.oracle
                    .observe(&ep.failure, RestartOutcome { node, cured: false });
            }
        }
    }

    /// `true` if the component currently has an open failure episode.
    pub fn is_recovering(&self, component: &str) -> bool {
        self.episodes.contains_key(component)
    }

    /// `true` if a restart for `component`'s episode has been issued but not
    /// yet reported complete.
    pub fn is_in_flight(&self, component: &str) -> bool {
        self.episodes.get(component).is_some_and(|ep| ep.in_flight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{NaiveOracle, PerfectOracle};
    use crate::tree::TreeSpec;
    use rr_sim::SimDuration;

    fn tree_iv() -> RestartTree {
        TreeSpec::cell("mercury")
            .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
            .with_child(
                TreeSpec::cell("R_[fedr,pbcom]")
                    .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
                    .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom")),
            )
            .with_child(TreeSpec::cell("R_[ses,str]").with_components(["ses", "str"]))
            .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
            .build()
            .unwrap()
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn solo_failure_restarts_own_cell() {
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        let decision = rec.on_failure(Failure::solo("rtu"), t(10));
        match decision {
            RecoveryDecision::Restart { components, .. } => {
                assert_eq!(components, vec!["rtu"]);
            }
            other => panic!("unexpected decision {other:?}"),
        }
        assert!(rec.is_recovering("rtu"));
        rec.on_restart_complete("rtu", t(16));
        rec.on_cured("rtu", t(17));
        assert!(!rec.is_recovering("rtu"));
        assert_eq!(rec.restarts_issued(), 1);
    }

    #[test]
    fn consolidated_cell_restarts_both() {
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        let decision = rec.on_failure(Failure::solo("ses"), t(0));
        match decision {
            RecoveryDecision::Restart { components, .. } => {
                assert_eq!(components, vec!["ses", "str"]);
            }
            other => panic!("unexpected decision {other:?}"),
        }
    }

    #[test]
    fn in_flight_restart_subsumes_covered_failures() {
        // While the [ses,str] cell restarts, str's "failure" (it is down
        // because we killed it) must not open a second episode.
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        let d1 = rec.on_failure(Failure::solo("ses"), t(0));
        let node = match d1 {
            RecoveryDecision::Restart { node, .. } => node,
            other => panic!("unexpected {other:?}"),
        };
        let d2 = rec.on_failure(Failure::solo("str"), t(1));
        assert_eq!(d2, RecoveryDecision::AlreadyRecovering { node });
        assert_eq!(rec.restarts_issued(), 1);
    }

    #[test]
    fn redetection_escalates_with_naive_oracle() {
        let mut rec = Recoverer::new(tree_iv(), NaiveOracle::new(), RestartPolicy::new());
        let joint = Failure::correlated("pbcom", ["fedr", "pbcom"]);
        let d1 = rec.on_failure(joint.clone(), t(0));
        let first = match d1 {
            RecoveryDecision::Restart {
                node, components, ..
            } => {
                assert_eq!(components, vec!["pbcom"]);
                node
            }
            other => panic!("unexpected {other:?}"),
        };
        rec.on_restart_complete("pbcom", t(21));
        rec.on_not_cured("pbcom");
        // Failure persists → escalate to the joint cell.
        let d2 = rec.on_failure(joint, t(23));
        match d2 {
            RecoveryDecision::Restart {
                node, components, ..
            } => {
                assert_ne!(node, first);
                assert_eq!(components, vec!["fedr", "pbcom"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn escalation_limit_gives_up() {
        let policy = RestartPolicy::new().with_escalation_limit(2);
        let mut rec = Recoverer::new(tree_iv(), NaiveOracle::new(), policy);
        let f = Failure::solo("mbus");
        for i in 0..2 {
            let d = rec.on_failure(f.clone(), t(i * 30));
            assert!(
                matches!(d, RecoveryDecision::Restart { .. }),
                "attempt {i}: {d:?}"
            );
            rec.on_restart_complete("mbus", t(i * 30 + 10));
        }
        let d = rec.on_failure(f, t(100));
        assert_eq!(
            d,
            RecoveryDecision::GiveUp {
                component: "mbus".into(),
                reason: GiveUpReason::EscalationExhausted
            }
        );
        assert_eq!(rec.give_ups(), 1);
        assert!(!rec.is_recovering("mbus"));
    }

    #[test]
    fn restart_storm_gives_up() {
        let policy = RestartPolicy::new().with_rate_limit(2, SimDuration::from_secs(1000));
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), policy);
        for i in 0..2 {
            let d = rec.on_failure(Failure::solo("rtu"), t(i * 50));
            assert!(matches!(d, RecoveryDecision::Restart { .. }));
            rec.on_restart_complete("rtu", t(i * 50 + 6));
            rec.on_cured("rtu", t(i * 50 + 7));
        }
        let d = rec.on_failure(Failure::solo("rtu"), t(200));
        assert_eq!(
            d,
            RecoveryDecision::GiveUp {
                component: "rtu".into(),
                reason: GiveUpReason::RestartStorm
            }
        );
    }

    #[test]
    fn set_tree_clears_episodes() {
        let mut rec = Recoverer::new(tree_iv(), PerfectOracle::new(), RestartPolicy::new());
        rec.on_failure(Failure::solo("rtu"), t(0));
        assert!(rec.is_recovering("rtu"));
        rec.set_tree(tree_iv());
        assert!(!rec.is_recovering("rtu"));
    }

    #[test]
    fn learning_oracle_gets_feedback_through_recoverer() {
        use crate::oracle::LearningOracle;
        let mut rec = Recoverer::new(tree_iv(), LearningOracle::new(0.5), RestartPolicy::new());
        let f = Failure::solo("fedr");
        let own = rec.tree().cell_of_component("fedr").unwrap();
        for i in 0..5 {
            let d = rec.on_failure(f.clone(), t(i * 100));
            assert!(matches!(d, RecoveryDecision::Restart { .. }));
            rec.on_restart_complete("fedr", t(i * 100 + 6));
            rec.on_cured("fedr", t(i * 100 + 7));
        }
        assert!(rec.oracle().estimate("fedr", own) > 0.7);
    }
}

//! # rr-core — recursive restartability
//!
//! A library implementation of the concepts in *Reducing Recovery Time in a
//! Small Recursively Restartable System* (Candea, Cutler, Fox, Doshi, Garg,
//! Gowda — DSN 2002): restart trees, restart groups, oracles, recoverers,
//! restart policies, the MTTF/MTTR algebra, and the tree transformations that
//! reduce a system's mean time to recover.
//!
//! ## Concepts
//!
//! * [`tree::RestartTree`] — a hierarchy of *restart cells*; pushing a cell's
//!   button restarts every component in its subtree. Subtrees are *restart
//!   groups* (§3.1–3.2).
//! * [`transform`] — the paper's tree transformations: depth augmentation,
//!   component splitting, group consolidation and node promotion (§4), plus
//!   their inverses.
//! * [`oracle`] — the restart policy: perfect, naive, faulty (§4.4) and
//!   learning (§7 future work) oracles.
//! * [`recoverer::Recoverer`] — turns failure reports into restart decisions,
//!   tracking escalation and applying a [`policy::RestartPolicy`] so hard
//!   failures are not restarted forever.
//! * [`model::FailureModel`] — which failures occur, how often, what cures
//!   them (the `f_ci` values of §4).
//! * [`deadline::DeadlineModel`] — per-component pass deadlines and
//!   criticalities; batch recovery plans are issued most-urgent first.
//! * [`analysis`] — availability and expected-MTTR computation under a
//!   pluggable [`analysis::CostModel`].
//! * [`optimize`] — automatic restart-tree search (§7 future work): hill
//!   climbing over the transformation moves re-derives the paper's trees.
//! * [`render`] — ASCII tree rendering (the reproduction of Figures 2–6).
//!
//! ## Example
//!
//! ```
//! use rr_core::oracle::{Failure, PerfectOracle};
//! use rr_core::policy::RestartPolicy;
//! use rr_core::recoverer::{Recoverer, RecoveryDecision};
//! use rr_core::tree::TreeSpec;
//! use rr_sim::SimTime;
//!
//! let tree = TreeSpec::cell("system")
//!     .with_child(TreeSpec::cell("R_a").with_component("a"))
//!     .with_child(TreeSpec::cell("R_b").with_component("b"))
//!     .build()?;
//! let mut rec = Recoverer::new(tree, PerfectOracle::new(), RestartPolicy::new());
//! match rec.on_failure(Failure::solo("a"), SimTime::from_secs(5)) {
//!     RecoveryDecision::Restart { components, .. } => assert_eq!(components, vec!["a"]),
//!     other => panic!("unexpected: {other:?}"),
//! }
//! # Ok::<(), rr_core::TreeError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![warn(missing_docs)]

pub mod advisor;
pub mod analysis;
pub mod deadline;
pub mod enumerate;
pub mod error;
pub mod model;
pub mod optimize;
pub mod oracle;
pub mod policy;
pub mod recoverer;
pub mod recovery;
pub mod render;
pub mod schedule;
pub mod transform;
pub mod tree;

pub use advisor::{advise, Advice, OracleAssumption};
pub use analysis::{availability, CostModel, OracleQuality, SimpleCostModel};
pub use deadline::{DeadlineModel, Urgency};
pub use error::{AnalysisError, ModelError, TreeError};
pub use model::{FailureMode, FailureModel};
pub use oracle::{Failure, FaultyOracle, LearningOracle, NaiveOracle, Oracle, PerfectOracle};
pub use policy::{GiveUpReason, RecoveryMode, RestartPolicy};
pub use recoverer::{DecisionTally, EpisodeSnapshot, Recoverer, RecoveryDecision};
pub use recovery::{ProcedureKind, RecoveryLadder, RecoveryProcedure};
pub use schedule::{
    is_antichain, plan_episodes, EpisodePlan, PlanStats, PlannedEpisode, Suspicion,
};
pub use tree::{NodeId, RestartTree, TreeSpec};

//! The restart-tree transformations of §4: depth augmentation, component
//! splitting (subtree depth augmentation), group consolidation, and node
//! promotion — plus `flatten`, their common inverse, used by the automatic
//! tree optimizer.
//!
//! Each transformation is exactly the operation the paper applies to Mercury:
//!
//! | Paper step | Function |
//! |---|---|
//! | tree I → II (simple depth augmentation, §4.1) | [`depth_augment`] |
//! | tree II → II′ (splitting `fedrcom`, §4.2) | [`split_component`] |
//! | tree II′ → III (augmenting the tight subtree, §4.2) | [`depth_augment`] on the new cell |
//! | tree III → IV (consolidating `ses`/`str`, §4.3) | [`consolidate`] |
//! | tree IV → V (promoting `pbcom`, §4.4) | [`promote_component`] |

use crate::error::TreeError;
use crate::tree::{NodeId, RestartTree};

/// Simple depth augmentation (§4.1): partitions the components attached
/// directly to `cell` into new child cells, so subsets can be restarted
/// without pushing the whole cell's button.
///
/// `partition` lists the new child groups; every component currently attached
/// to `cell` must appear in exactly one group. Returns the new child cells in
/// partition order. Each new cell is labelled `R_<comp>` for singleton groups
/// and `R_[a,b,…]` otherwise.
///
/// # Errors
///
/// Returns [`TreeError::InvalidTransform`] if the partition is empty, has
/// empty groups, mentions components not attached to `cell`, repeats a
/// component, or fails to cover all of `cell`'s components.
///
/// # Examples
///
/// ```
/// use rr_core::tree::RestartTree;
/// use rr_core::transform::depth_augment;
///
/// // Tree I: one restart group holding the whole station.
/// let mut tree = RestartTree::new("mercury");
/// for c in ["mbus", "fedrcom", "ses", "str", "rtu"] {
///     tree.attach_component(tree.root(), c)?;
/// }
/// // Tree II: every component independently restartable.
/// let parts: Vec<Vec<String>> = ["mbus", "fedrcom", "ses", "str", "rtu"]
///     .iter().map(|c| vec![c.to_string()]).collect();
/// let root = tree.root();
/// depth_augment(&mut tree, root, &parts)?;
/// assert_eq!(tree.cell_count(), 6);
/// # Ok::<(), rr_core::TreeError>(())
/// ```
pub fn depth_augment(
    tree: &mut RestartTree,
    cell: NodeId,
    partition: &[Vec<String>],
) -> Result<Vec<NodeId>, TreeError> {
    if !tree.contains(cell) {
        return Err(TreeError::UnknownNode(cell));
    }
    if partition.is_empty() {
        return Err(TreeError::invalid("depth augmentation", "empty partition"));
    }
    let mut attached: Vec<String> = tree.components_at(cell).to_vec();
    attached.sort();
    let mut mentioned: Vec<String> = partition.iter().flatten().cloned().collect();
    mentioned.sort();
    for group in partition {
        if group.is_empty() {
            return Err(TreeError::invalid(
                "depth augmentation",
                "empty group in partition",
            ));
        }
    }
    for w in mentioned.windows(2) {
        if w[0] == w[1] {
            return Err(TreeError::invalid(
                "depth augmentation",
                format!("component {:?} appears in two groups", w[0]),
            ));
        }
    }
    if mentioned != attached {
        return Err(TreeError::invalid(
            "depth augmentation",
            format!(
                "partition {mentioned:?} does not exactly cover the cell's components {attached:?}"
            ),
        ));
    }
    let mut new_cells = Vec::with_capacity(partition.len());
    for group in partition {
        let label = group_label(group);
        let child = tree.add_cell(cell, label)?;
        for comp in group {
            tree.move_component(comp, child)?;
        }
        new_cells.push(child);
    }
    Ok(new_cells)
}

/// Splitting a component along its MTTR/MTTF fault lines (§4.2): replaces
/// `old` with the components `parts`, attached to the same cell.
///
/// This models re-architecting `fedrcom` into `fedr` (low MTTR, low MTTF) and
/// `pbcom` (high MTTR, high MTTF) — tree II′. Follow with [`depth_augment`] on
/// the cell to make the parts independently restartable (tree III).
///
/// # Errors
///
/// Returns [`TreeError::UnknownComponent`] if `old` is not attached,
/// [`TreeError::DuplicateComponent`] if any part already exists, or
/// [`TreeError::InvalidTransform`] if `parts` is empty.
pub fn split_component(
    tree: &mut RestartTree,
    old: &str,
    parts: &[impl AsRef<str>],
) -> Result<NodeId, TreeError> {
    if parts.is_empty() {
        return Err(TreeError::invalid(
            "component split",
            "no replacement parts",
        ));
    }
    let cell = tree
        .cell_of_component(old)
        .ok_or_else(|| TreeError::UnknownComponent(old.to_string()))?;
    for p in parts {
        if tree.cell_of_component(p.as_ref()).is_some() {
            return Err(TreeError::DuplicateComponent(p.as_ref().to_string()));
        }
    }
    tree.detach_component(old)?;
    for p in parts {
        tree.attach_component(cell, p.as_ref())?;
    }
    Ok(cell)
}

/// Group consolidation (§4.3): merges sibling cells into one, used when
/// components "substantially always" fail together (`f_A + f_B ≪ f_{A,B}`) —
/// the ses/str case. The merged cell inherits every component and child of
/// the originals; the first cell survives (relabelled), the rest are removed.
///
/// Returns the surviving cell.
///
/// # Errors
///
/// Returns [`TreeError::InvalidTransform`] unless at least two distinct live
/// sibling cells are given.
pub fn consolidate(tree: &mut RestartTree, cells: &[NodeId]) -> Result<NodeId, TreeError> {
    let mut unique: Vec<NodeId> = Vec::new();
    for &c in cells {
        if !tree.contains(c) {
            return Err(TreeError::UnknownNode(c));
        }
        if !unique.contains(&c) {
            unique.push(c);
        }
    }
    if unique.len() < 2 {
        return Err(TreeError::invalid(
            "group consolidation",
            "need at least two distinct cells",
        ));
    }
    let parent = tree.parent(unique[0]);
    for &c in &unique[1..] {
        if tree.parent(c) != parent {
            return Err(TreeError::invalid(
                "group consolidation",
                "cells are not siblings",
            ));
        }
    }
    let survivor = unique[0];
    for &victim in &unique[1..] {
        // Move children first, then components, then delete the husk.
        let children: Vec<NodeId> = tree.children(victim).to_vec();
        for child in children {
            tree.reparent(child, survivor)?;
        }
        let comps: Vec<String> = tree.components_at(victim).to_vec();
        for comp in comps {
            tree.move_component(&comp, survivor)?;
        }
        tree.remove_empty_cell(victim)?;
    }
    let mut all = tree.components_at(survivor).to_vec();
    all.sort();
    tree.set_label(survivor, group_label(&all))?;
    Ok(survivor)
}

/// Node promotion (§4.4): moves a high-MTTR component up from its own cell to
/// the parent cell, so that every failure attributed to it forces a joint
/// restart — removing the oracle's opportunity to guess too low.
///
/// If the component's old cell becomes empty it is deleted. Returns the cell
/// the component now lives on.
///
/// # Errors
///
/// Returns [`TreeError::UnknownComponent`] if `name` is not attached, or
/// [`TreeError::InvalidTransform`] if the component is already attached to
/// the root (there is no parent to promote into).
pub fn promote_component(tree: &mut RestartTree, name: &str) -> Result<NodeId, TreeError> {
    let cell = tree
        .cell_of_component(name)
        .ok_or_else(|| TreeError::UnknownComponent(name.to_string()))?;
    let Some(parent) = tree.parent(cell) else {
        return Err(TreeError::invalid(
            "node promotion",
            format!("component {name:?} is already attached to the root"),
        ));
    };
    tree.move_component(name, parent)?;
    if tree.components_at(cell).is_empty() && tree.is_leaf(cell) {
        tree.remove_empty_cell(cell)?;
    }
    Ok(parent)
}

/// One-sided group consolidation (§4.4): "Node promotion can be viewed as a
/// special case of one-sided group consolidation, induced by asymmetrically
/// correlated failure behavior." Creates a joint cell over the two siblings,
/// then absorbs `absorb` into it (its components attach to the joint cell,
/// its children re-parent there), while `keep` remains an independently
/// restartable child.
///
/// Applied to tree III's `R_fedr`/`R_pbcom` pair with `keep = R_fedr`, this
/// produces tree V's shape in a single step.
///
/// Returns the joint cell.
///
/// # Errors
///
/// Returns [`TreeError::InvalidTransform`] unless `keep` and `absorb` are
/// distinct live sibling non-root cells.
pub fn consolidate_one_sided(
    tree: &mut RestartTree,
    keep: NodeId,
    absorb: NodeId,
) -> Result<NodeId, TreeError> {
    if keep == absorb {
        return Err(TreeError::invalid(
            "one-sided consolidation",
            "cells must be distinct",
        ));
    }
    let joint = group_cells(tree, &[keep, absorb])?;
    // Absorb: hoist the absorbed cell's children and components into the joint.
    let grandchildren: Vec<NodeId> = tree.children(absorb).to_vec();
    for gc in grandchildren {
        tree.reparent(gc, joint)?;
    }
    let comps: Vec<String> = tree.components_at(absorb).to_vec();
    for comp in comps {
        tree.move_component(&comp, joint)?;
    }
    tree.remove_empty_cell(absorb)?;
    Ok(joint)
}

/// Inserts a new intermediate cell above a set of sibling cells — the
/// structural step of subtree depth augmentation when the components are
/// already independently restartable: it creates a joint restart button for
/// correlated failures (`f_{A,B} > 0`, §4.2) without giving up the individual
/// buttons.
///
/// Returns the new intermediate cell.
///
/// # Errors
///
/// Returns [`TreeError::InvalidTransform`] unless at least two distinct live
/// sibling non-root cells are given.
pub fn group_cells(tree: &mut RestartTree, cells: &[NodeId]) -> Result<NodeId, TreeError> {
    let mut unique: Vec<NodeId> = Vec::new();
    for &c in cells {
        if !tree.contains(c) {
            return Err(TreeError::UnknownNode(c));
        }
        if !unique.contains(&c) {
            unique.push(c);
        }
    }
    if unique.len() < 2 {
        return Err(TreeError::invalid(
            "grouping",
            "need at least two distinct cells",
        ));
    }
    let Some(parent) = tree.parent(unique[0]) else {
        return Err(TreeError::CannotModifyRoot);
    };
    for &c in &unique[1..] {
        if tree.parent(c) != Some(parent) {
            return Err(TreeError::invalid("grouping", "cells are not siblings"));
        }
    }
    let mut covered: Vec<String> = unique
        .iter()
        .flat_map(|&c| tree.components_under(c))
        .collect();
    covered.sort();
    let joint = tree.add_cell(parent, group_label(&covered))?;
    for &c in &unique {
        tree.reparent(c, joint)?;
    }
    Ok(joint)
}

/// The inverse of node promotion: moves a component off its cell into a new
/// dedicated child cell, so it can be restarted without disturbing the rest
/// of the cell's subtree.
///
/// Returns the new child cell.
///
/// # Errors
///
/// Returns [`TreeError::UnknownComponent`] if `name` is not attached.
pub fn demote_component(tree: &mut RestartTree, name: &str) -> Result<NodeId, TreeError> {
    let cell = tree
        .cell_of_component(name)
        .ok_or_else(|| TreeError::UnknownComponent(name.to_string()))?;
    let child = tree.add_cell(cell, group_label(&[name.to_string()]))?;
    tree.move_component(name, child)?;
    Ok(child)
}

/// The inverse of augmentation: collapses the entire subtree under `cell`,
/// re-attaching every descendant component directly to `cell`. Used by the
/// automatic tree optimizer to explore the neighbourhood of a tree.
///
/// # Errors
///
/// Returns [`TreeError::UnknownNode`] if `cell` is not live.
pub fn flatten(tree: &mut RestartTree, cell: NodeId) -> Result<(), TreeError> {
    if !tree.contains(cell) {
        return Err(TreeError::UnknownNode(cell));
    }
    // Repeatedly promote: move each direct child's contents up, delete it.
    while let Some(&child) = tree.children(cell).first() {
        let grandchildren: Vec<NodeId> = tree.children(child).to_vec();
        for gc in grandchildren {
            tree.reparent(gc, cell)?;
        }
        let comps: Vec<String> = tree.components_at(child).to_vec();
        for comp in comps {
            tree.move_component(&comp, cell)?;
        }
        tree.remove_empty_cell(child)?;
    }
    Ok(())
}

/// Canonical label for a group of components: `R_x` or `R_[a,b]`.
pub fn group_label(components: &[String]) -> String {
    match components {
        [single] => format!("R_{single}"),
        many => format!("R_[{}]", many.join(",")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeSpec;

    fn singletons(names: &[&str]) -> Vec<Vec<String>> {
        names.iter().map(|n| vec![n.to_string()]).collect()
    }

    /// Mercury tree I: a single restart group.
    fn tree_i() -> RestartTree {
        TreeSpec::cell("mercury")
            .with_components(["mbus", "fedrcom", "ses", "str", "rtu"])
            .build()
            .unwrap()
    }

    #[test]
    fn paper_evolution_i_through_v() {
        // Tree I → II: simple depth augmentation.
        let mut tree = tree_i();
        let root = tree.root();
        depth_augment(
            &mut tree,
            root,
            &singletons(&["mbus", "fedrcom", "ses", "str", "rtu"]),
        )
        .unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.cell_count(), 6);
        assert!(tree
            .cells()
            .iter()
            .all(|&c| c == tree.root() || tree.is_leaf(c)));

        // Tree II → II′: split fedrcom.
        let cell = split_component(&mut tree, "fedrcom", &["fedr", "pbcom"]).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.components_at(cell), ["fedr", "pbcom"]);

        // Tree II′ → III: augment the tight subtree.
        depth_augment(&mut tree, cell, &singletons(&["fedr", "pbcom"])).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.cell_count(), 8);
        assert_eq!(tree.restart_path("fedr").unwrap().len(), 3);

        // Tree III → IV: consolidate ses and str.
        let ses = tree.cell_of_component("ses").unwrap();
        let strr = tree.cell_of_component("str").unwrap();
        let joint = consolidate(&mut tree, &[ses, strr]).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.components_under(joint), vec!["ses", "str"]);
        assert_eq!(tree.cell_count(), 7);

        // Tree IV → V: promote pbcom.
        let new_home = promote_component(&mut tree, "pbcom").unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.cell_count(), 6);
        // pbcom now lives on the joint cell whose child holds fedr:
        assert_eq!(tree.components_at(new_home), ["pbcom"]);
        assert_eq!(tree.components_under(new_home), vec!["fedr", "pbcom"]);
        // A pbcom failure's minimal restart is now the joint cell — the
        // guess-too-low mistake is structurally impossible.
        assert_eq!(tree.restart_path("pbcom").unwrap().len(), 2);
        assert_eq!(tree.restart_path("fedr").unwrap().len(), 3);
    }

    #[test]
    fn depth_augment_validates_partition() {
        let mut tree = tree_i();
        let root = tree.root();
        // Not covering:
        assert!(depth_augment(&mut tree, root, &singletons(&["mbus"])).is_err());
        // Unknown component:
        assert!(depth_augment(
            &mut tree,
            root,
            &singletons(&["mbus", "fedrcom", "ses", "str", "ghost"])
        )
        .is_err());
        // Duplicate:
        let mut p = singletons(&["mbus", "fedrcom", "ses", "str", "rtu"]);
        p.push(vec!["mbus".to_string()]);
        assert!(depth_augment(&mut tree, root, &p).is_err());
        // Empty group / empty partition:
        assert!(depth_augment(&mut tree, root, &[]).is_err());
        let mut p = singletons(&["mbus", "fedrcom", "ses", "str", "rtu"]);
        p.push(vec![]);
        assert!(depth_augment(&mut tree, root, &p).is_err());
        // The failed attempts must not have corrupted the tree.
        tree.validate().unwrap();
        assert_eq!(tree.cell_count(), 1);
    }

    #[test]
    fn depth_augment_supports_non_trivial_groups() {
        let mut tree = tree_i();
        let root = tree.root();
        let cells = depth_augment(
            &mut tree,
            root,
            &[
                vec!["mbus".to_string()],
                vec!["ses".to_string(), "str".to_string()],
                vec!["fedrcom".to_string(), "rtu".to_string()],
            ],
        )
        .unwrap();
        assert_eq!(cells.len(), 3);
        assert_eq!(tree.label(cells[1]), "R_[ses,str]");
        assert_eq!(tree.components_under(cells[1]), vec!["ses", "str"]);
    }

    #[test]
    fn split_component_errors() {
        let mut tree = tree_i();
        assert!(matches!(
            split_component(&mut tree, "nope", &["a"]),
            Err(TreeError::UnknownComponent(_))
        ));
        assert!(matches!(
            split_component(&mut tree, "fedrcom", &["mbus"]),
            Err(TreeError::DuplicateComponent(_))
        ));
        let empty: &[&str] = &[];
        assert!(split_component(&mut tree, "fedrcom", empty).is_err());
        tree.validate().unwrap();
    }

    #[test]
    fn consolidate_requires_siblings() {
        let mut tree = tree_i();
        let root = tree.root();
        depth_augment(
            &mut tree,
            root,
            &singletons(&["mbus", "fedrcom", "ses", "str", "rtu"]),
        )
        .unwrap();
        let fedrcom = tree.cell_of_component("fedrcom").unwrap();
        split_component(&mut tree, "fedrcom", &["fedr", "pbcom"]).unwrap();
        depth_augment(&mut tree, fedrcom, &singletons(&["fedr", "pbcom"])).unwrap();
        let fedr = tree.cell_of_component("fedr").unwrap();
        let mbus = tree.cell_of_component("mbus").unwrap();
        // fedr's cell is two levels down; mbus is one level down — not siblings.
        assert!(consolidate(&mut tree, &[fedr, mbus]).is_err());
        // Single / duplicate cells rejected.
        assert!(consolidate(&mut tree, &[mbus]).is_err());
        assert!(consolidate(&mut tree, &[mbus, mbus]).is_err());
        tree.validate().unwrap();
    }

    #[test]
    fn consolidate_merges_children_too() {
        // Consolidating two internal cells must keep their subtrees.
        let mut tree = TreeSpec::cell("root")
            .with_child(TreeSpec::cell("L").with_child(TreeSpec::cell("La").with_component("a")))
            .with_child(
                TreeSpec::cell("R")
                    .with_component("r")
                    .with_child(TreeSpec::cell("Rb").with_component("b")),
            )
            .build()
            .unwrap();
        let l = tree.lowest_cover(&["a"]).unwrap();
        let l = tree.parent(l).unwrap();
        let r = tree.cell_of_component("r").unwrap();
        let joint = consolidate(&mut tree, &[l, r]).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.components_under(joint), vec!["a", "b", "r"]);
        assert_eq!(tree.children(joint).len(), 2);
    }

    #[test]
    fn promote_from_root_cell_fails() {
        let mut tree = tree_i();
        assert!(promote_component(&mut tree, "mbus").is_err());
        assert!(matches!(
            promote_component(&mut tree, "ghost"),
            Err(TreeError::UnknownComponent(_))
        ));
    }

    #[test]
    fn promote_keeps_cell_with_children() {
        // Promoting a component off a cell that still has children must keep
        // the cell.
        let mut tree = TreeSpec::cell("root")
            .with_child(
                TreeSpec::cell("mid")
                    .with_component("x")
                    .with_child(TreeSpec::cell("leaf").with_component("y")),
            )
            .build()
            .unwrap();
        let root = tree.root();
        let home = promote_component(&mut tree, "x").unwrap();
        assert_eq!(home, root);
        tree.validate().unwrap();
        assert_eq!(tree.cell_count(), 3);
        assert_eq!(tree.components_under(root), vec!["x", "y"]);
    }

    #[test]
    fn flatten_inverts_augmentation() {
        let mut tree = tree_i();
        let original = tree.to_spec();
        let root = tree.root();
        depth_augment(
            &mut tree,
            root,
            &singletons(&["mbus", "fedrcom", "ses", "str", "rtu"]),
        )
        .unwrap();
        assert_ne!(tree.to_spec(), original);
        let root = tree.root();
        flatten(&mut tree, root).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.cell_count(), 1);
        let mut comps = tree.components_at(tree.root()).to_vec();
        comps.sort();
        assert_eq!(comps, ["fedrcom", "mbus", "rtu", "ses", "str"]);
    }

    #[test]
    fn flatten_handles_deep_trees() {
        let mut tree = TreeSpec::cell("root")
            .with_child(
                TreeSpec::cell("a").with_component("x").with_child(
                    TreeSpec::cell("b")
                        .with_component("y")
                        .with_child(TreeSpec::cell("c").with_component("z")),
                ),
            )
            .build()
            .unwrap();
        let root = tree.root();
        flatten(&mut tree, root).unwrap();
        assert_eq!(tree.cell_count(), 1);
        assert_eq!(tree.components(), vec!["x", "y", "z"]);
    }

    #[test]
    fn group_cells_inserts_intermediate() {
        // Tree II over {fedr, pbcom, mbus} → grouping fedr+pbcom gives the
        // tree III shape without a component split.
        let mut tree = TreeSpec::cell("root")
            .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
            .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
            .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom"))
            .build()
            .unwrap();
        let fedr = tree.cell_of_component("fedr").unwrap();
        let pbcom = tree.cell_of_component("pbcom").unwrap();
        let joint = group_cells(&mut tree, &[fedr, pbcom]).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.label(joint), "R_[fedr,pbcom]");
        assert_eq!(tree.components_under(joint), vec!["fedr", "pbcom"]);
        assert_eq!(tree.parent(fedr), Some(joint));
        assert_eq!(tree.children(tree.root()).len(), 2);
        // Individual buttons survive:
        assert_eq!(tree.restart_path("fedr").unwrap().len(), 3);
    }

    #[test]
    fn group_cells_rejects_root_and_non_siblings() {
        let mut tree = tree_i();
        let root = tree.root();
        assert!(group_cells(&mut tree, &[root, root]).is_err());
        depth_augment(
            &mut tree,
            root,
            &singletons(&["mbus", "fedrcom", "ses", "str", "rtu"]),
        )
        .unwrap();
        let ses = tree.cell_of_component("ses").unwrap();
        assert!(group_cells(&mut tree, &[ses]).is_err());
        assert!(group_cells(&mut tree, &[ses, root]).is_err());
        tree.validate().unwrap();
    }

    #[test]
    fn demote_then_promote_round_trips() {
        let mut tree = tree_i();
        let before = tree.to_spec();
        let cell = demote_component(&mut tree, "ses").unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.components_at(cell), ["ses"]);
        assert_eq!(tree.restart_path("ses").unwrap().len(), 2);
        promote_component(&mut tree, "ses").unwrap();
        tree.validate().unwrap();
        // Promotion deletes the emptied cell, restoring the original shape
        // (modulo component order on the root, which to_spec preserves).
        assert_eq!(tree.cell_count(), 1);
        let mut got = tree.to_spec().components;
        let mut want = before.components;
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn group_then_promote_builds_tree_v_shape() {
        let mut tree = TreeSpec::cell("root")
            .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
            .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom"))
            .build()
            .unwrap();
        let fedr = tree.cell_of_component("fedr").unwrap();
        let pbcom = tree.cell_of_component("pbcom").unwrap();
        let joint = group_cells(&mut tree, &[fedr, pbcom]).unwrap();
        promote_component(&mut tree, "pbcom").unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.components_at(joint), ["pbcom"]);
        assert_eq!(tree.components_under(joint), vec!["fedr", "pbcom"]);
        assert_eq!(tree.restart_path("pbcom").unwrap().len(), 2);
    }

    #[test]
    fn group_label_forms() {
        assert_eq!(group_label(&["a".to_string()]), "R_a");
        assert_eq!(group_label(&["a".to_string(), "b".to_string()]), "R_[a,b]");
    }
}

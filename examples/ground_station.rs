#![allow(clippy::disallowed_methods)]
//! A full satellite pass with a mid-pass failure: the workload the paper's
//! §5.2 worries about ("downtime during satellite passes is very expensive
//! because we may lose some science data and telemetry").
//!
//! ```text
//! cargo run --example ground_station --release
//! ```
//!
//! Predicts a real OPAL pass over Stanford with the Keplerian orbit model,
//! drives the tracker/tuner/radio pipeline through it, kills `rtu` mid-pass,
//! and compares the telemetry captured under tree I (full reboot) vs
//! tree V (partial restart).

use mercury::config::{names, StationConfig};
use mercury::measure::telemetry_frames;
use mercury::scenario::PassScenario;
use mercury::station::{Station, TreeVariant};
use rr_core::PerfectOracle;
use rr_sim::SimDuration;

fn run_pass(variant: TreeVariant, inject: bool) -> (usize, f64) {
    let mut cfg = StationConfig::paper();
    let plan = PassScenario::plan(&cfg, "opal", 120.0, 30.0, 20.0);
    cfg.pass_epoch_offset_s = plan.epoch_offset_s;
    let mut station =
        Station::new(cfg, variant, Box::new(PerfectOracle::new()), 42).expect("valid station");
    station.warm_up();
    let start = station.now();
    plan.start_tracking(&mut station);

    let mut recovery = 0.0;
    if inject {
        // Two minutes into the pass, rtu dies.
        let until = plan.rise_sim_time() + SimDuration::from_secs(120);
        let dur = until.saturating_since(station.now());
        station.run_for(dur);
        let injected = station.inject_kill(names::RTU).expect("known component");
        station.run_for(SimDuration::from_secs(60));
        if let Ok(m) = mercury::measure_recovery(station.trace(), names::RTU, injected) {
            recovery = m.recovery_s();
        }
    }

    let end = plan.set_sim_time() + SimDuration::from_secs(10);
    let dur = end.saturating_since(station.now());
    station.run_for(dur);
    (
        telemetry_frames(station.trace(), start, station.now()),
        recovery,
    )
}

fn main() {
    let cfg = StationConfig::paper();
    let plan = PassScenario::plan(&cfg, "opal", 120.0, 30.0, 20.0);
    println!(
        "Next OPAL pass over Stanford: rise at epoch {:.0}s, duration {:.0}s, peak elevation {:.1} deg\n",
        plan.window.rise_s,
        plan.window.duration_s(),
        plan.window.max_elevation_deg
    );
    println!(
        "Maximum telemetry the pass can deliver: ~{} frames at 1 frame/s\n",
        plan.max_frames(&cfg)
    );

    println!(
        "{:<10} {:>16} {:>18} {:>14}",
        "tree", "frames (clean)", "frames (failure)", "recovery (s)"
    );
    for variant in [TreeVariant::I, TreeVariant::V] {
        let (clean, _) = run_pass(variant, false);
        let (faulty, recovery) = run_pass(variant, true);
        println!(
            "{:<10} {:>16} {:>18} {:>14.2}",
            variant.to_string(),
            clean,
            faulty,
            recovery
        );
    }
    println!(
        "\nThe partial restart (tree V) loses only the frames spanning one short\n\
         recovery; the full reboot (tree I) blacks out the pipeline for ~25s of\n\
         pass time — and a long enough outage would break the communication\n\
         link and lose the whole session (§5.2)."
    );
}

#![allow(clippy::disallowed_methods)]
//! Recursive restartability on real OS threads: a live supervision tree.
//!
//! ```text
//! cargo run --example live_supervision
//! ```
//!
//! Builds a three-service pipeline supervised over a restart tree with a
//! consolidated [worker-a, worker-b] cell (the ses/str pattern), kills
//! services fail-silently, and watches the watchdog cure them. Timescales
//! are milliseconds; the structure is Mercury's.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rr_core::tree::TreeSpec;
use rr_core::PerfectOracle;
use rr_runtime::{Post, Service, ServiceCtx, Supervisor, WatchdogConfig};

/// A worker that counts the jobs it has processed (state that a restart
/// wipes, demonstrating the return-to-start-state property).
struct Worker {
    processed: u64,
    lifetime_total: Arc<AtomicU64>,
}

impl Service for Worker {
    fn on_post(&mut self, post: Post, ctx: &mut ServiceCtx<'_>) {
        if post.body.starts_with("job:") {
            self.processed += 1;
            self.lifetime_total.fetch_add(1, Ordering::Relaxed);
            ctx.send(
                &post.from,
                format!("done:{}:{}", ctx.name(), self.processed),
            );
        }
    }
}

fn main() {
    // Restart tree: gateway alone; worker-a and worker-b consolidated
    // (restarting one restarts both — they share session state).
    let tree = TreeSpec::cell("pipeline")
        .with_child(TreeSpec::cell("R_gateway").with_component("gateway"))
        .with_child(TreeSpec::cell("R_[a,b]").with_components(["worker-a", "worker-b"]))
        .build()
        .expect("valid tree");
    println!("Supervision tree:\n{}", rr_core::render::render_tree(&tree));

    let sup = Supervisor::new(
        tree,
        Box::new(PerfectOracle::new()),
        WatchdogConfig::default(),
    );
    let total = Arc::new(AtomicU64::new(0));
    for name in ["gateway", "worker-a", "worker-b"] {
        let t = total.clone();
        sup.add_service(name, Duration::from_millis(10), move || {
            Box::new(Worker {
                processed: 0,
                lifetime_total: t.clone(),
            })
        });
    }
    sup.await_ready(Duration::from_secs(5));
    sup.start_watchdog();
    println!("All services up; watchdog running (20ms ping period).\n");

    // A client hammers the workers.
    let client_rx = sup.router().register("client");
    let send_job = |to: &str, n: u64| {
        sup.router().send("client", to, format!("job:{n}"));
    };

    for n in 0..20 {
        send_job("worker-a", n);
    }
    std::thread::sleep(Duration::from_millis(100));
    let replies = client_rx.try_iter().count();
    println!("worker-a answered {replies}/20 jobs.");

    // Fail-silent kill: the supervisor is not told.
    println!("\nKilling worker-a fail-silently…");
    let t0 = Instant::now();
    sup.inject_kill("worker-a");
    let deadline = Instant::now() + Duration::from_secs(5);
    while sup.restarts() == 0 {
        assert!(Instant::now() < deadline, "watchdog never acted");
        std::thread::sleep(Duration::from_millis(2));
    }
    println!(
        "Watchdog detected and restarted the consolidated [worker-a, worker-b] cell \
         in {:?}.",
        t0.elapsed()
    );

    // Wait for service to resume, then verify state was wiped (counter
    // restarts from 1).
    std::thread::sleep(Duration::from_millis(100));
    let _ = client_rx.try_iter().count();
    send_job("worker-a", 99);
    match client_rx.recv_timeout(Duration::from_secs(2)) {
        Ok(post) => println!(
            "worker-a is serving again; its per-incarnation counter reset: {}",
            post.body
        ),
        Err(_) => println!("worker-a still rebooting (slow machine) — try again"),
    }
    println!(
        "Jobs processed across all incarnations: {}",
        total.load(Ordering::Relaxed)
    );

    sup.shutdown();
    println!("\nClean shutdown. This is the Erlang-supervisor pattern with restart groups.");
}

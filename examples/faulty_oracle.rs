#![allow(clippy::disallowed_methods)]
//! §4.4: what an imperfect oracle costs, and how node promotion pays for it.
//!
//! ```text
//! cargo run --example faulty_oracle --release
//! ```
//!
//! Injects the correlated pbcom failure (manifests in pbcom, curable only by
//! a joint [fedr, pbcom] restart) under trees IV and V, with a perfect
//! oracle and with the paper's 30%-wrong oracle.

use mercury::config::{names, StationConfig};
use mercury::measure::measure_recovery;
use mercury::station::{Station, TreeVariant};
use rr_core::oracle::Oracle;
use rr_core::{FaultyOracle, PerfectOracle};
use rr_sim::{SimDuration, SimRng};

fn trial(variant: TreeVariant, oracle: Box<dyn Oracle>, seed: u64) -> (f64, u32) {
    let mut station =
        Station::new(StationConfig::paper(), variant, oracle, seed).expect("valid station");
    station.warm_up();
    let mut phase = SimRng::new(seed ^ 0xF00D);
    station.randomize_injection_phase(&mut phase);
    let injected = station.inject_correlated_pbcom().expect("known component");
    station.run_for(SimDuration::from_secs(150));
    let m = measure_recovery(station.trace(), names::PBCOM, injected).expect("recovers");
    (m.recovery_s(), m.attempts)
}

fn mean(variant: TreeVariant, error_rate: f64, trials: usize) -> (f64, f64) {
    let mut total = 0.0;
    let mut escalations = 0usize;
    for i in 0..trials {
        let seed = 5000 + i as u64;
        let oracle: Box<dyn Oracle> = if error_rate == 0.0 {
            Box::new(PerfectOracle::new())
        } else {
            Box::new(FaultyOracle::new(error_rate, SimRng::new(seed ^ 0xBAD)))
        };
        let (r, attempts) = trial(variant, oracle, seed);
        total += r;
        if attempts > 1 {
            escalations += 1;
        }
    }
    (total / trials as f64, escalations as f64 / trials as f64)
}

fn main() {
    let trials = 10;
    println!(
        "Correlated pbcom failure (cure = joint [fedr,pbcom] restart), {trials} trials per cell\n"
    );
    println!(
        "{:<8} {:<14} {:>14} {:>18}",
        "tree", "oracle", "recovery (s)", "episodes escalated"
    );
    for (variant, rate, label) in [
        (TreeVariant::IV, 0.0, "perfect"),
        (TreeVariant::IV, 0.3, "faulty(0.30)"),
        (TreeVariant::V, 0.3, "faulty(0.30)"),
    ] {
        let (r, esc) = mean(variant, rate, trials);
        println!(
            "{:<8} {:<14} {:>14.2} {:>17.0}%",
            variant.to_string(),
            label,
            r,
            esc * 100.0
        );
    }
    println!(
        "\nPaper: tree IV 21.24s perfect / 29.19s faulty; tree V 21.63s faulty.\n\
         In tree V the guess-too-low mistake is structurally impossible: pbcom's\n\
         own cell *is* the joint cell, so even a wrong-minded oracle pushes the\n\
         right button — 'tree V can be better only when the oracle is faulty'."
    );
}

#![allow(clippy::disallowed_methods)]
//! §7 future work: "we intend to extend the oracle with the ability to learn
//! from its mistakes and this way generate estimates for the f_ci values."
//!
//! ```text
//! cargo run --example learning_oracle --release
//! ```
//!
//! Runs a long-lived tree-IV station with a learning oracle and injects the
//! correlated pbcom failure repeatedly. Early episodes escalate (the oracle
//! tries pbcom's own cell first); once the estimated cure probability of the
//! too-low cell drops, episodes go straight to the joint cell.

use mercury::config::{names, StationConfig};
use mercury::measure::measure_recovery;
use mercury::station::{Station, TreeVariant};
use rr_core::LearningOracle;
use rr_sim::SimDuration;

fn main() {
    let mut station = Station::new(
        StationConfig::paper(),
        TreeVariant::IV,
        Box::new(LearningOracle::new(0.5)),
        2026,
    )
    .expect("valid station");
    station.warm_up();

    println!("Learning oracle over tree IV; repeated correlated pbcom failures:\n");
    println!(
        "{:<9} {:>9} {:>14} {:>22}",
        "episode", "attempts", "recovery (s)", "oracle went straight to"
    );
    for episode in 1..=8 {
        let injected = station.inject_correlated_pbcom().expect("known component");
        station.run_for(SimDuration::from_secs(150));
        let m = measure_recovery(station.trace(), names::PBCOM, injected).expect("recovers");
        println!(
            "{:<9} {:>9} {:>14.2} {:>22}",
            episode,
            m.attempts,
            m.recovery_s(),
            if m.attempts == 1 {
                "the joint cell"
            } else {
                "pbcom alone (wrong)"
            }
        );
        // Age the incarnations between episodes.
        station.run_for(SimDuration::from_secs(60));
    }

    println!(
        "\nThe oracle learned f_ci from outcomes alone — no ground-truth hints —\n\
         converging to the minimal restart policy the paper assumes (A_oracle)."
    );
}

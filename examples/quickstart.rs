#![allow(clippy::disallowed_methods)]
//! Quickstart: build a restart tree, wire a recoverer, cure a failure.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Reconstructs the Figure 2 example tree, then walks one failure episode
//! through the recoverer by hand — the smallest possible tour of the API.

use rr_core::oracle::{Failure, PerfectOracle};
use rr_core::policy::RestartPolicy;
use rr_core::recoverer::{Recoverer, RecoveryDecision};
use rr_core::render::render_tree;
use rr_core::tree::TreeSpec;
use rr_sim::SimTime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The example tree of §3.1 (Figure 2): R_ABC over R_A and R_BC.
    let tree = TreeSpec::cell("R_ABC")
        .with_child(TreeSpec::cell("R_A").with_component("A"))
        .with_child(
            TreeSpec::cell("R_BC")
                .with_child(TreeSpec::cell("R_B").with_component("B"))
                .with_child(TreeSpec::cell("R_C").with_component("C")),
        )
        .build()?;

    println!("The Figure 2 restart tree:\n\n{}", render_tree(&tree));
    println!(
        "It contains {} restart groups (the paper counts 5: three trivial, R_BC, and the root).\n",
        tree.groups().len()
    );

    // "Pushing the button" on R_BC restarts both B and C.
    let r_bc = tree.lowest_cover(&["B", "C"])?;
    println!(
        "The minimal cell covering {{B, C}} is {} — restarting it restarts {:?}.\n",
        tree.label(r_bc),
        tree.components_under(r_bc)
    );

    // Drive one failure episode through a recoverer with a perfect oracle.
    let mut rec = Recoverer::new(tree, PerfectOracle::new(), RestartPolicy::new());
    let t0 = SimTime::from_secs(10);

    println!("t=10s: the failure detector reports that B stopped answering pings.");
    match rec.on_failure(Failure::solo("B"), t0) {
        RecoveryDecision::Restart {
            node,
            components,
            attempt,
            ..
        } => {
            println!(
                "REC decision: restart cell {} (attempt {attempt}) -> components {:?}",
                rec.tree().label(node),
                components
            );
        }
        other => println!("unexpected decision: {other:?}"),
    }

    println!("t=16s: B's restart completed and it answers pings again.");
    rec.on_restart_complete("B", SimTime::from_secs(16));
    rec.on_cured("B", SimTime::from_secs(17));
    println!(
        "Episode closed. Restarts issued so far: {}. B recovering: {}.",
        rec.restarts_issued(),
        rec.is_recovering("B")
    );

    // A correlated failure: manifests in B but needs B and C together.
    println!("\nt=60s: a failure manifests in B that only a joint [B,C] restart cures.");
    match rec.on_failure(Failure::correlated("B", ["B", "C"]), SimTime::from_secs(60)) {
        RecoveryDecision::Restart {
            node, components, ..
        } => {
            println!(
                "A perfect oracle goes straight to {} -> {:?} (no guess-too-low).",
                rec.tree().label(node),
                components
            );
        }
        other => println!("unexpected decision: {other:?}"),
    }

    Ok(())
}

#![allow(clippy::disallowed_methods)]
//! The paper's narrative, §4: evolve Mercury's restart tree from I to V,
//! measuring recovery at each step.
//!
//! ```text
//! cargo run --example tree_evolution --release
//! ```

use mercury::config::{names, StationConfig};
use mercury::measure::measure_recovery;
use mercury::station::{Station, TreeVariant};
use rr_core::render::render_tree;
use rr_core::PerfectOracle;
use rr_sim::SimDuration;

fn measure(variant: TreeVariant, component: &str, trials: usize) -> f64 {
    let mut total = 0.0;
    for i in 0..trials {
        let mut station = Station::new(
            StationConfig::paper(),
            variant,
            Box::new(PerfectOracle::new()),
            1000 + i as u64,
        )
        .expect("valid station");
        station.warm_up();
        let mut phase = rr_sim::SimRng::new(77 + i as u64);
        station.randomize_injection_phase(&mut phase);
        let injected = station.inject_kill(component).expect("known component");
        station.run_for(SimDuration::from_secs(120));
        total += measure_recovery(station.trace(), component, injected)
            .expect("recovers")
            .recovery_s();
    }
    total / trials as f64
}

fn main() {
    let trials = 5;
    println!("Evolving Mercury's restart tree (each recovery averaged over {trials} trials)\n");

    // Tree I: the total-reboot baseline.
    println!("--- Tree I: one restart group ---");
    println!(
        "{}",
        render_tree(&TreeVariant::I.tree().expect("paper tree builds"))
    );
    let r = measure(TreeVariant::I, names::RTU, trials);
    println!("An rtu failure reboots everything: {r:.2}s (paper: 24.75s)\n");

    // Tree II: simple depth augmentation (§4.1).
    println!("--- Tree II: simple depth augmentation ---");
    println!(
        "{}",
        render_tree(&TreeVariant::II.tree().expect("paper tree builds"))
    );
    let r = measure(TreeVariant::II, names::RTU, trials);
    println!("Now an rtu failure restarts only rtu: {r:.2}s (paper: 5.59s)");
    let r = measure(TreeVariant::II, names::FEDRCOM, trials);
    println!("But fedrcom failures are frequent AND slow: {r:.2}s (paper: 20.93s)\n");

    // Tree III: splitting fedrcom (§4.2).
    println!("--- Tree III: fedrcom split into fedr + pbcom ---");
    println!(
        "{}",
        render_tree(&TreeVariant::III.tree().expect("paper tree builds"))
    );
    let rf = measure(TreeVariant::III, names::FEDR, trials);
    let rp = measure(TreeVariant::III, names::PBCOM, trials);
    println!("fedr (frequent) now recovers in {rf:.2}s (paper: 5.76s);");
    println!("pbcom (rare) still costs {rp:.2}s (paper: 21.24s)\n");

    // Tree IV: consolidating ses/str (§4.3).
    println!("--- Tree IV: ses and str consolidated ---");
    println!(
        "{}",
        render_tree(&TreeVariant::IV.tree().expect("paper tree builds"))
    );
    let r3 = measure(TreeVariant::III, names::SES, trials);
    let r4 = measure(TreeVariant::IV, names::SES, trials);
    println!("ses recovery: {r3:.2}s under tree III (slow resync with the old str)");
    println!(
        "           -> {r4:.2}s under tree IV (both restarted together; paper: 9.50 -> 6.25)\n"
    );

    // Tree V: promoting pbcom (§4.4).
    println!("--- Tree V: pbcom promoted onto the joint cell ---");
    println!(
        "{}",
        render_tree(&TreeVariant::V.tree().expect("paper tree builds"))
    );
    println!("Tree V matters only when the oracle errs; see `faulty_oracle` example.\n");

    println!(
        "Headline: {:.1}x faster recovery for the frequent failure (tree I vs II rtu).",
        24.75 / 5.59
    );
}

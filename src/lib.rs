//! # recursive-restartability
//!
//! Umbrella crate for the reproduction of *Reducing Recovery Time in a Small
//! Recursively Restartable System* (Candea, Cutler, Fox, Doshi, Garg, Gowda —
//! DSN 2002). Re-exports the workspace crates:
//!
//! * [`rr_core`] — restart trees, transformations, oracles, recoverer,
//!   policies, MTTF/MTTR analysis, the automatic tree optimizer.
//! * [`rr_sim`] — the deterministic discrete-event simulation kernel.
//! * [`mercury_msg`] — the XML command language.
//! * [`mercury`] — the simulated Mercury ground station (components, FD,
//!   REC, orbit model, fault injection, measurement).
//! * [`rr_runtime`] — the live threaded supervision runtime.
//! * [`rr_harness`] — the experiment harness regenerating every table and
//!   figure of the paper.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured record. The runnable
//! examples live in `examples/`:
//!
//! ```text
//! cargo run --example quickstart
//! cargo run --example tree_evolution
//! cargo run --example ground_station --release
//! cargo run --example faulty_oracle --release
//! cargo run --example learning_oracle --release
//! cargo run --example live_supervision
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub use mercury;
pub use mercury_msg;
pub use rr_core;
pub use rr_harness;
pub use rr_runtime;
pub use rr_sim;

#!/usr/bin/env sh
# CI gate: build, tests, formatting, lints. Run from the repo root.
set -eux

cargo build --release --workspace

# Golden regression suite first, as its own step, so a drift is visible as
# a distinct failure with the diff in the log. This covers both the
# normalized recovery traces (tests/golden/<name>.txt) and the telemetry
# snapshot (tests/golden/tree3-kill-pbcom.telemetry.txt). On mismatch the
# differ writes the actual output next to each golden as
# tests/golden/<name>.actual.txt; print the diffs so CI uploads survive
# without artifact plumbing. Re-record after an intentional change with
# GOLDEN_RECORD=1.
if ! cargo test -q -p rr-harness --test golden; then
    set +x
    echo "==== golden drift (traces + telemetry snapshot) ===="
    for actual in tests/golden/*.actual.txt; do
        [ -e "$actual" ] || continue
        golden="${actual%.actual.txt}.txt"
        echo "---- diff $golden ----"
        diff -u "$golden" "$actual" || true
    done
    echo "==== end golden-trace drift (re-record with GOLDEN_RECORD=1) ===="
    exit 1
fi

# Static verification next: the full built-in audit (trees I-V x
# paper/hardened, models, suspicions, plans, algebra claims, golden
# scenarios) must be spotless — warnings included — and the lint fixtures
# must behave: the clean script passes, the deliberately broken one fails.
# On a surprise the JSON report is printed so CI logs carry the findings.
RR_LINT=target/release/rr-lint
if ! "$RR_LINT" --deny-warnings; then
    set +x
    echo "==== rr-lint: built-in audit is no longer clean ===="
    "$RR_LINT" --format json || true
    echo "==== end rr-lint audit findings ===="
    exit 1
fi
"$RR_LINT" --deny-warnings tests/lint-fixtures/clean.fault
if "$RR_LINT" tests/lint-fixtures/broken.fault; then
    set +x
    echo "==== rr-lint: broken fixture was NOT rejected ===="
    "$RR_LINT" --format json tests/lint-fixtures/broken.fault || true
    echo "==== end rr-lint fixture findings ===="
    exit 1
fi

# Model checking: exhaustively explore the recovery protocol's interleavings
# (solo + correlated-pair faults, trees I-V, both oracles) at the default
# bound, and verify every golden scenario's recorded telemetry stream with
# the happens-before verifier. A violation prints its minimized replayable
# counterexample in the golden-trace line format, banner-framed like the
# golden drift above. The seeded-violation fixtures must behave: the clean
# scenario passes, the deliberately broken one is rejected.
RR_MODEL=target/release/rr-model
if ! "$RR_MODEL" > model-audit.log 2>&1; then
    set +x
    echo "==== rr-model: protocol audit found a violation ===="
    cat model-audit.log
    echo "==== end rr-model counterexample ===="
    exit 1
fi
rm -f model-audit.log
"$RR_MODEL" tests/model-fixtures/clean.scenario
if "$RR_MODEL" tests/model-fixtures/broken.scenario > model-fixture.log 2>&1; then
    set +x
    echo "==== rr-model: broken fixture was NOT rejected ===="
    cat model-fixture.log
    echo "==== end rr-model fixture output ===="
    exit 1
fi
set +x
echo "==== rr-model: broken fixture rejected, minimized counterexample ===="
cat model-fixture.log
echo "==== end rr-model counterexample ===="
set -x
rm -f model-fixture.log

# Overload fixture pair: deferral under a working admission controller is
# clean (coverage survives, every deferred restart is eventually admitted),
# while a starved drain tick must be rejected by the starvation invariant
# with a minimized counterexample.
"$RR_MODEL" tests/model-fixtures/overload-clean.scenario
if "$RR_MODEL" tests/model-fixtures/overload-starve.scenario > model-overload.log 2>&1; then
    set +x
    echo "==== rr-model: starvation fixture was NOT rejected ===="
    cat model-overload.log
    echo "==== end rr-model fixture output ===="
    exit 1
fi
set +x
echo "==== rr-model: starvation fixture rejected, minimized counterexample ===="
cat model-overload.log
echo "==== end rr-model counterexample ===="
set -x
rm -f model-overload.log

# Rehydrate fixture pair: completing a restart by verified checkpoint replay
# must be indistinguishable from a cold boot to every safety invariant,
# while a rehydration from an unverified stale snapshot must trip the
# liveness invariant (the fault survives the restart, masked from the FD)
# with a minimized counterexample.
"$RR_MODEL" tests/model-fixtures/rehydrate-clean.scenario
if "$RR_MODEL" tests/model-fixtures/rehydrate-stale.scenario > model-rehydrate.log 2>&1; then
    set +x
    echo "==== rr-model: stale-rehydrate fixture was NOT rejected ===="
    cat model-rehydrate.log
    echo "==== end rr-model fixture output ===="
    exit 1
fi
set +x
echo "==== rr-model: stale-rehydrate fixture rejected, minimized counterexample ===="
cat model-rehydrate.log
echo "==== end rr-model counterexample ===="
set -x
rm -f model-rehydrate.log

# rr-flow: the static action-dependence audit (trees I-V, both oracles, all
# built-in flavours) must be clean, warnings included, and the differential
# POR fixture pair must behave. The clean pair explores both ways and the
# verdicts must agree (the log line also carries the distinct-state
# reduction BENCH_model.json pins); the por-unsound fixture carries a
# deliberately broken independence assumption that rr-flow's RRL953 lint
# rejects statically and the differential run must catch dynamically — full
# exploration finds the starved-deferral violation the reduced search
# misses.
RR_FLOW=target/release/rr-flow
"$RR_FLOW" --deny-warnings --quiet
if "$RR_FLOW" --quiet tests/model-fixtures/por-unsound.scenario > flow-unsound.log 2>&1; then
    set +x
    echo "==== rr-flow: unsound por-assume fixture was NOT rejected ===="
    cat flow-unsound.log
    echo "==== end rr-flow fixture findings ===="
    exit 1
fi
rm -f flow-unsound.log
"$RR_MODEL" --differential tests/model-fixtures/por-clean.scenario
if "$RR_MODEL" --differential tests/model-fixtures/por-unsound.scenario > model-por.log 2>&1; then
    set +x
    echo "==== rr-model: unsound reduction fixture was NOT caught by differential mode ===="
    cat model-por.log
    echo "==== end rr-model differential output ===="
    exit 1
fi
set +x
echo "==== rr-model: differential drift caught, full-side minimized counterexample ===="
cat model-por.log
echo "==== end rr-model counterexample ===="
set -x
rm -f model-por.log

# rr-abs: the interval certification of the three §4 transformation
# decisions must certify `always` over the ±20% drift box, warnings
# included, and the regenerated decision table must be byte-identical to
# the committed artifact (directed-rounding interval arithmetic is
# deterministic, so any diff means the calibration or the abstraction
# changed — re-record deliberately with
#   target/release/rr-abs --quiet --json tests/golden/abs-decisions.json
# after reviewing the new certificates). The fixture pair must behave: the
# sound table passes, the contradicted one is rejected via RRL971.
RR_ABS=target/release/rr-abs
"$RR_ABS" --deny-warnings --quiet --json target/abs-decisions.json
if ! diff -u tests/golden/abs-decisions.json target/abs-decisions.json; then
    set +x
    echo "==== rr-abs: decision-table drift against tests/golden/abs-decisions.json ===="
    echo "==== end rr-abs drift (re-record with rr-abs --json after review) ===="
    exit 1
fi
"$RR_ABS" --deny-warnings tests/abs-fixtures/clean.abs
if "$RR_ABS" tests/abs-fixtures/broken.abs > abs-fixture.log 2>&1; then
    set +x
    echo "==== rr-abs: contradicted fixture was NOT rejected ===="
    cat abs-fixture.log
    echo "==== end rr-abs fixture findings ===="
    exit 1
fi
rm -f abs-fixture.log

# Crash-safety fixtures: the committed journal images (clean and torn) must
# recover byte-identically forever — this is the store's on-disk format
# stability gate, so it runs as its own step.
cargo test -q -p rr-store --test crash_fixtures

# Checkpoint campaign golden: the cold-vs-rehydrate MTTR table (and the
# failure-rate crossover at the calibrated state size) is pinned under
# tests/golden/checkpoint-mttr.txt; both regimes must reproduce — a cell
# where rehydration wins and a cell where the plain restart wins. Drift
# prints the table diff like the trace goldens above.
if ! cargo test -q -p rr-harness --test checkpoint; then
    set +x
    echo "==== checkpoint MTTR golden drift ===="
    if [ -e tests/golden/checkpoint-mttr.actual.txt ]; then
        diff -u tests/golden/checkpoint-mttr.txt \
            tests/golden/checkpoint-mttr.actual.txt || true
    fi
    echo "==== end checkpoint drift (re-record with GOLDEN_RECORD=1) ===="
    exit 1
fi

cargo test -q --workspace

# Bench smoke: run the full micro suite (the same configuration that
# produced the committed BENCH_micro.json — bench order affects allocator
# warmth, so a filtered subset would not reproduce the baseline numbers),
# write a fresh report under target/, and fail on a >20% drop in any gated
# record (see rr_bench::harness::REGRESSION_TOLERANCE). Only the derived
# wheel-vs-heap speedup ratios are gated: absolute events/sec drifts
# 20-40% with machine load, while both sides of an in-run ratio drift
# together and cancel.
# Paths are absolute because cargo runs bench binaries from the package dir.
cargo bench -q -p rr-bench --bench micro -- micro/ \
    --json "$PWD/target/BENCH_micro.json" --baseline "$PWD/BENCH_micro.json"

# Model-checker reduction gate: the distinct-state reduction rr-flow's
# ample sets buy on every tree's pair-fault audit is fully deterministic
# (both sides of each gated ratio are state counts, not wall times), so any
# drift against the committed BENCH_model.json means an ample class changed
# behaviour. Regenerate deliberately with
#   cargo bench -p rr-bench --bench model -- model/ --json BENCH_model.json
cargo bench -q -p rr-bench --bench model -- model/ \
    --json "$PWD/target/BENCH_model.json" --baseline "$PWD/BENCH_model.json"

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

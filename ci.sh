#!/usr/bin/env sh
# CI gate: build, tests, formatting, lints. Run from the repo root.
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

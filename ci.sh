#!/usr/bin/env sh
# CI gate: build, tests, formatting, lints. Run from the repo root.
set -eux

cargo build --release --workspace

# Golden regression suite first, as its own step, so a drift is visible as
# a distinct failure with the diff in the log. This covers both the
# normalized recovery traces (tests/golden/<name>.txt) and the telemetry
# snapshot (tests/golden/tree3-kill-pbcom.telemetry.txt). On mismatch the
# differ writes the actual output next to each golden as
# tests/golden/<name>.actual.txt; print the diffs so CI uploads survive
# without artifact plumbing. Re-record after an intentional change with
# GOLDEN_RECORD=1.
if ! cargo test -q -p rr-harness --test golden; then
    set +x
    echo "==== golden drift (traces + telemetry snapshot) ===="
    for actual in tests/golden/*.actual.txt; do
        [ -e "$actual" ] || continue
        golden="${actual%.actual.txt}.txt"
        echo "---- diff $golden ----"
        diff -u "$golden" "$actual" || true
    done
    echo "==== end golden-trace drift (re-record with GOLDEN_RECORD=1) ===="
    exit 1
fi

cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

#!/usr/bin/env sh
# CI gate: build, tests, formatting, lints. Run from the repo root.
set -eux

cargo build --release --workspace

# Golden-trace regression suite first, as its own step, so a drift is
# visible as a distinct failure with the trace diff in the log. On mismatch
# the differ writes the normalized actual trace next to each golden as
# tests/golden/<name>.actual.txt; print the diffs so CI uploads survive
# without artifact plumbing.
if ! cargo test -q -p rr-harness --test golden; then
    set +x
    echo "==== golden-trace drift ===="
    for actual in tests/golden/*.actual.txt; do
        [ -e "$actual" ] || continue
        golden="${actual%.actual.txt}.txt"
        echo "---- diff $golden ----"
        diff -u "$golden" "$actual" || true
    done
    echo "==== end golden-trace drift (re-record with GOLDEN_RECORD=1) ===="
    exit 1
fi

cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

#![allow(clippy::disallowed_methods)]
//! Closed-loop advisor test: start from tree II (post-split), repeatedly
//! apply whatever the Table 3 advisor recommends, and verify the loop
//! converges — mechanically — to the paper's final tree V.
//!
//! This is the strongest form of the §4 narrative: the hand-designed tree
//! evolution is fully recoverable from the failure-correlation data plus the
//! Table 3 conditions, with no human in the loop.

use mercury::config::StationConfig;
use rr_core::advisor::{advise, Advice, OracleAssumption};
use rr_core::transform::{consolidate, consolidate_one_sided, depth_augment, group_cells};
use rr_core::tree::RestartTree;
use rr_core::TreeSpec;

/// Applies one piece of advice to the tree.
fn apply(tree: &mut RestartTree, advice: &Advice) {
    match advice {
        Advice::Augment { cell, components } => {
            let partition: Vec<Vec<String>> = components.iter().map(|c| vec![c.clone()]).collect();
            depth_augment(tree, *cell, &partition).expect("augment applies");
        }
        Advice::Consolidate { components, .. } => {
            let cells: Vec<_> = components
                .iter()
                .map(|c| tree.cell_of_component(c).expect("attached"))
                .collect();
            consolidate(tree, &cells).expect("consolidation applies");
        }
        Advice::Group { components, .. } => {
            let cells: Vec<_> = components
                .iter()
                .map(|c| tree.cell_of_component(c).expect("attached"))
                .collect();
            group_cells(tree, &cells).expect("grouping applies");
        }
        Advice::Promote {
            component, partner, ..
        } => {
            // If a cell already covers exactly the pair (a prior Group step,
            // or tree III's joint subtree), plain promotion moves the
            // expensive side onto it. Otherwise, one-sided consolidation
            // builds the joint cell and absorbs the expensive side in one
            // step (§4.4: promotion is one-sided consolidation).
            let pair_cell = tree
                .lowest_cover(&[component.clone(), partner.clone()])
                .expect("attached");
            let mut covered = tree.components_under(pair_cell);
            covered.sort();
            let mut pair = vec![component.clone(), partner.clone()];
            pair.sort();
            if covered == pair {
                rr_core::transform::promote_component(tree, component).expect("promotion applies");
            } else {
                let comp_cell = tree.cell_of_component(component).expect("attached");
                let partner_cell = tree.cell_of_component(partner).expect("attached");
                consolidate_one_sided(tree, partner_cell, comp_cell)
                    .expect("one-sided consolidation applies");
            }
        }
    }
}

#[test]
fn advisor_loop_converges_to_tree_v() {
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    let model = cfg.advisory_failure_model();

    // Tree II over the split components (the state after the §4.2
    // re-architecture but before any correlation-driven reshaping).
    let mut tree = TreeSpec::cell("mercury")
        .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
        .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
        .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom"))
        .with_child(TreeSpec::cell("R_ses").with_component("ses"))
        .with_child(TreeSpec::cell("R_str").with_component("str"))
        .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
        .build()
        .unwrap();

    let mut steps = Vec::new();
    for round in 0..8 {
        let advice = advise(&tree, &model, &cost, OracleAssumption::MayErr);
        let Some(first) = advice.first() else {
            break;
        };
        steps.push(format!("round {round}: {first}"));
        apply(&mut tree, first);
        tree.validate().unwrap();
        assert!(
            round < 7,
            "advisor loop failed to converge:\n{}",
            steps.join("\n")
        );
    }

    // Converged: no further advice.
    let remaining = advise(&tree, &model, &cost, OracleAssumption::MayErr);
    assert!(
        remaining.is_empty(),
        "leftover advice: {remaining:?}\n{tree}"
    );

    // The result is exactly tree V's structure.
    let tree_v = mercury::station::TreeVariant::V
        .tree()
        .expect("paper tree builds");
    let canon = |t: &RestartTree| {
        let mut groups: Vec<Vec<String>> = t.groups().into_iter().map(|(_, comps)| comps).collect();
        groups.sort();
        groups
    };
    assert_eq!(
        canon(&tree),
        canon(&tree_v),
        "advisor-derived tree:\n{tree}\nhand-designed tree V:\n{tree_v}\nsteps:\n{}",
        steps.join("\n")
    );
}

#[test]
fn advisor_loop_with_perfect_oracle_stops_at_tree_iv_shape() {
    // Without oracle mistakes, promotion is never advised (Table 3), so the
    // loop stops at a tree IV-like structure: ses/str consolidated, a joint
    // [fedr,pbcom] button, but pbcom keeps its own cell.
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    let model = cfg.advisory_failure_model();
    let mut tree = TreeSpec::cell("mercury")
        .with_child(TreeSpec::cell("R_mbus").with_component("mbus"))
        .with_child(TreeSpec::cell("R_fedr").with_component("fedr"))
        .with_child(TreeSpec::cell("R_pbcom").with_component("pbcom"))
        .with_child(TreeSpec::cell("R_ses").with_component("ses"))
        .with_child(TreeSpec::cell("R_str").with_component("str"))
        .with_child(TreeSpec::cell("R_rtu").with_component("rtu"))
        .build()
        .unwrap();

    for _ in 0..8 {
        let advice = advise(&tree, &model, &cost, OracleAssumption::Perfect);
        let Some(first) = advice.first() else { break };
        apply(&mut tree, first);
        tree.validate().unwrap();
    }
    assert!(advise(&tree, &model, &cost, OracleAssumption::Perfect).is_empty());

    // ses/str consolidated:
    assert!(
        rr_core::optimize::find_group(&tree, &["ses", "str"]).is_some(),
        "{tree}"
    );
    // Joint fedr/pbcom button exists…
    assert!(
        rr_core::optimize::find_group(&tree, &["fedr", "pbcom"]).is_some(),
        "{tree}"
    );
    // …and pbcom keeps its own (tree IV, not V — "tree V can be better only
    // when the oracle is faulty").
    assert!(
        rr_core::optimize::find_group(&tree, &["pbcom"]).is_some(),
        "{tree}"
    );
}

#![allow(clippy::disallowed_methods)]
//! Cross-crate integration tests pinning the paper's headline results.
//!
//! These use few trials (speed) and assert the *shape* of the results —
//! orderings, ratios, crossovers — rather than exact values; the full
//! 100-trial reproduction lives in the `repro` binary and EXPERIMENTS.md.

use mercury::config::{names, StationConfig};
use mercury::station::TreeVariant;
use rr_core::analysis::{expected_mode_recovery_s, expected_system_mttr_s, OracleQuality};
use rr_core::model::FailureMode;
use rr_core::optimize::{find_group, optimize_tree, OptimizerConfig};
use rr_core::TreeSpec;
use rr_harness::experiments::{measure_cell, OracleKind, RunConfig};

fn run() -> RunConfig {
    RunConfig {
        trials: 5,
        seed: 99,
    }
}

#[test]
fn tree_ii_beats_tree_i_for_every_component() {
    // §4.1: depth augmentation lowers MTTR for every failed component.
    for comp in [
        names::MBUS,
        names::SES,
        names::STR,
        names::RTU,
        names::FEDRCOM,
    ] {
        let i = measure_cell(TreeVariant::I, OracleKind::Perfect, comp, false, run());
        let ii = measure_cell(TreeVariant::II, OracleKind::Perfect, comp, false, run());
        assert!(
            ii.mean < i.mean,
            "{comp}: tree II {:.2}s must beat tree I {:.2}s",
            ii.mean,
            i.mean
        );
    }
}

#[test]
fn splitting_fedrcom_pays_off_for_frequent_failures() {
    // §4.2: fedr (frequent) recovers ~4x faster than fedrcom did; pbcom
    // (rare) is no worse than fedrcom.
    let fedrcom = measure_cell(
        TreeVariant::II,
        OracleKind::Perfect,
        names::FEDRCOM,
        false,
        run(),
    );
    let fedr = measure_cell(
        TreeVariant::III,
        OracleKind::Perfect,
        names::FEDR,
        false,
        run(),
    );
    let pbcom = measure_cell(
        TreeVariant::III,
        OracleKind::Perfect,
        names::PBCOM,
        false,
        run(),
    );
    assert!(
        fedr.mean < fedrcom.mean / 3.0,
        "fedr {:.2}s vs fedrcom {:.2}s",
        fedr.mean,
        fedrcom.mean
    );
    assert!(pbcom.mean < fedrcom.mean * 1.1);
}

#[test]
fn consolidation_beats_sequential_resync() {
    // §4.3: tree IV recovers ses/str failures faster than tree III.
    for comp in [names::SES, names::STR] {
        let iii = measure_cell(TreeVariant::III, OracleKind::Perfect, comp, false, run());
        let iv = measure_cell(TreeVariant::IV, OracleKind::Perfect, comp, false, run());
        assert!(
            iv.mean < iii.mean - 2.0,
            "{comp}: tree IV {:.2}s vs tree III {:.2}s",
            iv.mean,
            iii.mean
        );
    }
}

#[test]
fn promotion_insures_against_the_faulty_oracle() {
    // §4.4: with a 30% faulty oracle, tree V beats tree IV on the
    // correlated pbcom failure; with a perfect oracle tree IV is fine.
    let big = RunConfig {
        trials: 15,
        seed: 7,
    };
    let iv_faulty = measure_cell(
        TreeVariant::IV,
        OracleKind::Faulty(0.3),
        names::PBCOM,
        true,
        big,
    );
    let v_faulty = measure_cell(
        TreeVariant::V,
        OracleKind::Faulty(0.3),
        names::PBCOM,
        true,
        big,
    );
    assert!(
        v_faulty.mean < iv_faulty.mean,
        "tree V {:.2}s must beat tree IV {:.2}s under the faulty oracle",
        v_faulty.mean,
        iv_faulty.mean
    );
    // Tree V's recovery is flat (no mistakes possible): tiny variance.
    assert!(v_faulty.cov < 0.05, "cov {:.3}", v_faulty.cov);
    assert!(iv_faulty.cov > v_faulty.cov);
}

#[test]
fn factor_of_four_improvement_holds() {
    // The headline claim: expected system MTTR improves ~4x from tree I to
    // tree V under the paper's failure mix.
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    let tree_i = TreeSpec::cell("mercury")
        .with_components(names::SPLIT)
        .build()
        .unwrap();
    let model = cfg.paper_failure_model();
    let mttr_i = expected_system_mttr_s(&tree_i, &model, &cost, OracleQuality::Perfect).unwrap();
    let mttr_v = expected_system_mttr_s(
        &TreeVariant::V.tree().expect("paper tree builds"),
        &model,
        &cost,
        OracleQuality::Perfect,
    )
    .unwrap();
    let factor = mttr_i / mttr_v;
    assert!(
        (3.0..6.0).contains(&factor),
        "improvement factor {factor:.2} (paper claims ~4x)"
    );
}

#[test]
fn analytic_model_matches_simulation() {
    // The closed form of rr_core::analysis predicts the simulated means
    // within 10% for representative cells.
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    let cases = [
        (
            TreeVariant::II,
            names::RTU,
            false,
            OracleKind::Perfect,
            OracleQuality::Perfect,
        ),
        (
            TreeVariant::III,
            names::SES,
            false,
            OracleKind::Perfect,
            OracleQuality::Perfect,
        ),
        (
            TreeVariant::IV,
            names::SES,
            false,
            OracleKind::Perfect,
            OracleQuality::Perfect,
        ),
        (
            TreeVariant::V,
            names::PBCOM,
            true,
            OracleKind::Faulty(0.3),
            OracleQuality::Faulty { undershoot: 0.3 },
        ),
    ];
    for (variant, comp, correlated, kind, quality) in cases {
        let sim = measure_cell(variant, kind, comp, correlated, run());
        let mode = if correlated {
            FailureMode::correlated("joint", comp, [names::FEDR, names::PBCOM], 1.0).unwrap()
        } else {
            FailureMode::solo("solo", comp, 1.0).unwrap()
        };
        let analytic = expected_mode_recovery_s(
            &variant.tree().expect("paper tree builds"),
            &mode,
            &cost,
            quality,
        )
        .unwrap();
        let rel = (sim.mean - analytic).abs() / analytic;
        assert!(
            rel < 0.10,
            "{variant}/{comp}: sim {:.2}s vs analytic {analytic:.2}s ({:.0}% off)",
            sim.mean,
            rel * 100.0
        );
    }
}

#[test]
fn optimizer_rederives_the_paper_trees() {
    // §7 future work, closed: hill-climbing over the paper's transformations
    // finds the ses/str consolidation and, under a faulty oracle, the tree-V
    // promotion — from the trivial tree.
    let cfg = StationConfig::paper();
    let cost = cfg.cost_model();
    let model = cfg.paper_failure_model();
    let start = TreeSpec::cell("mercury")
        .with_components(names::SPLIT)
        .build()
        .unwrap();

    let perfect = optimize_tree(
        &start,
        &model,
        &cost,
        OracleQuality::Perfect,
        OptimizerConfig::default(),
    )
    .unwrap();
    assert!(find_group(&perfect.tree, &[names::SES, names::STR]).is_some());
    assert!(find_group(&perfect.tree, &[names::FEDR]).is_some());

    let faulty = optimize_tree(
        &start,
        &model,
        &cost,
        OracleQuality::Faulty { undershoot: 0.3 },
        OptimizerConfig::default(),
    )
    .unwrap();
    let pbcom_cell = faulty.tree.cell_of_component(names::PBCOM).unwrap();
    assert_eq!(
        faulty.tree.components_under(pbcom_cell),
        vec![names::FEDR.to_string(), names::PBCOM.to_string()],
        "faulty-oracle optimum promotes pbcom over fedr (tree V):\n{}",
        faulty.tree
    );
    // The optimum is never worse than the hand-designed tree V.
    let hand_v = expected_system_mttr_s(
        &TreeVariant::V.tree().expect("paper tree builds"),
        &model,
        &cost,
        OracleQuality::Faulty { undershoot: 0.3 },
    )
    .unwrap();
    assert!(faulty.expected_mttr_s <= hand_v + 1e-9);
}

#[test]
fn mttf_mttr_group_algebra_holds_for_paper_trees() {
    // §3.2 invariants across every tree variant and failure model.
    let cfg = StationConfig::paper();
    for variant in TreeVariant::ALL {
        let tree = variant.tree().expect("paper tree builds");
        tree.validate().unwrap();
        let model = if variant.is_split() {
            cfg.paper_failure_model()
        } else {
            cfg.unsplit_failure_model()
        };
        model.validate_against(&tree).unwrap();
        // System MTTF ≤ every component MTTF.
        let sys = model.system_mttf_s().unwrap();
        for comp in tree.components() {
            if let Some(c) = model.component_mttf_s(&comp) {
                assert!(sys <= c + 1e-9, "{variant}: system {sys} vs {comp} {c}");
            }
        }
    }
}

#![allow(clippy::disallowed_methods)]
//! Cross-crate integration tests of station behaviour beyond the paper's
//! tables: wire-level protocol health, workload realism, health beacons,
//! aging-induced failures, policy give-ups, and custom (optimizer-produced)
//! trees running live.

use mercury::config::{names, StationConfig};
use mercury::measure::{measure_recovery, telemetry_frames, MeasureError};
use mercury::scenario::PassScenario;
use mercury::station::{Station, TreeVariant};
use rr_core::{PerfectOracle, TreeSpec};
use rr_sim::{SimDuration, TraceKind};

fn station(variant: TreeVariant, seed: u64) -> Station {
    let mut s = Station::new(
        StationConfig::paper(),
        variant,
        Box::new(PerfectOracle::new()),
        seed,
    )
    .expect("valid station");
    s.warm_up();
    s
}

#[test]
fn no_malformed_xml_ever_crosses_the_wire() {
    // Every message in the station is a well-formed envelope: a busy run
    // with failures must produce zero parse errors.
    let mut s = station(TreeVariant::IV, 1);
    s.inject_kill(names::SES).expect("known component");
    s.run_for(SimDuration::from_secs(60));
    s.inject_correlated_pbcom().expect("known component");
    s.run_for(SimDuration::from_secs(120));
    let parse_errors = s
        .trace()
        .iter()
        .filter(|e| e.kind == TraceKind::Mark && e.label.starts_with("parse-error:"))
        .count();
    assert_eq!(parse_errors, 0);
}

#[test]
fn health_beacons_reach_rec() {
    // Future work §7: component health summaries flow to REC.
    let s = station(TreeVariant::III, 2);
    let control = s.control().borrow();
    for comp in [
        names::MBUS,
        names::FEDR,
        names::PBCOM,
        names::SES,
        names::STR,
        names::RTU,
    ] {
        let beacon = control
            .beacons
            .get(comp)
            .unwrap_or_else(|| panic!("no beacon from {comp}"));
        assert!(beacon.uptime_s > 0.0);
        assert!((0.0..=1.0).contains(&beacon.aging));
    }
}

#[test]
fn repeated_fedr_failures_age_pbcom_to_death() {
    // §4.2: "multiple fedr failures eventually lead to a pbcom failure".
    let mut s = station(TreeVariant::III, 3);
    let limit = s.config().pbcom_aging_limit;
    for i in 0..=limit {
        s.inject_kill(names::FEDR).expect("known component");
        s.run_for(SimDuration::from_secs(40));
        // Give the incarnation time to age out of "fresh".
        s.run_for(SimDuration::from_secs(5));
        let _ = i;
    }
    s.run_for(SimDuration::from_secs(60));
    let aging_crash = s.trace().mark_times("aging-crash:pbcom").next().is_some();
    assert!(aging_crash, "pbcom should die of connection-loss aging");
    // And the station recovered it.
    let pbcom_restarted = s
        .trace()
        .iter()
        .any(|e| e.kind == TraceKind::Mark && e.label.starts_with("restart:pbcom:"));
    assert!(pbcom_restarted);
}

#[test]
fn restart_storm_triggers_give_up() {
    // A "hard" failure — the component dies over and over — must eventually
    // be abandoned rather than restarted forever (§2.2).
    let mut s = station(TreeVariant::II, 4);
    let (max_restarts, _) = rr_core::RestartPolicy::new().rate_limit();
    let mut gave_up = false;
    for _ in 0..(max_restarts + 5) {
        let injected = s.inject_kill(names::RTU).expect("known component");
        s.run_for(SimDuration::from_secs(20));
        match measure_recovery(s.trace(), names::RTU, injected) {
            Ok(_) => {}
            Err(MeasureError::GaveUp(_)) | Err(MeasureError::NoRestart(_)) => {
                gave_up = true;
                break;
            }
            Err(e) => panic!("unexpected measurement error: {e}"),
        }
    }
    assert!(gave_up, "the policy must stop a restart storm");
    let give_ups = s.control().borrow().recoverer.give_ups();
    assert!(give_ups >= 1);
}

#[test]
fn custom_optimizer_tree_runs_live() {
    // Take the optimizer's output tree and operate the real station on it.
    let cfg = StationConfig::paper();
    let opt = rr_core::optimize::optimize_tree(
        &TreeSpec::cell("mercury")
            .with_components(names::SPLIT)
            .build()
            .unwrap(),
        &cfg.paper_failure_model(),
        &cfg.cost_model(),
        rr_core::OracleQuality::Faulty { undershoot: 0.3 },
        rr_core::optimize::OptimizerConfig::default(),
    )
    .unwrap();
    let mut s = Station::with_tree(
        StationConfig::paper(),
        opt.tree,
        TreeVariant::V.components(),
        Box::new(PerfectOracle::new()),
        5,
    )
    .expect("valid station");
    s.warm_up();
    let injected = s.inject_kill(names::FEDR).expect("known component");
    s.run_for(SimDuration::from_secs(60));
    let m = measure_recovery(s.trace(), names::FEDR, injected).unwrap();
    assert!(m.recovery_s() < 10.0, "{}", m.recovery_s());
}

#[test]
fn full_pass_with_telemetry_and_clean_wire() {
    let mut cfg = StationConfig::paper();
    let plan = PassScenario::plan(&cfg, "sapphire", 120.0, 30.0, 10.0);
    cfg.pass_epoch_offset_s = plan.epoch_offset_s;
    let mut s = Station::new(cfg, TreeVariant::V, Box::new(PerfectOracle::new()), 6)
        .expect("valid station");
    s.warm_up();
    let frames = plan.run_pass(&mut s);
    assert!(
        frames > 60,
        "a {:.0}s pass should deliver telemetry, got {frames} frames",
        plan.window.duration_s()
    );
    // The tracker declared the pass complete.
    let complete = s
        .trace()
        .iter()
        .any(|e| e.kind == TraceKind::Mark && e.label.starts_with("pass-complete:"));
    assert!(complete);
}

#[test]
fn two_failures_in_different_groups_recover_concurrently() {
    let mut s = station(TreeVariant::IV, 7);
    let t_rtu = s.inject_kill(names::RTU).expect("known component");
    s.run_for(SimDuration::from_secs(2));
    let t_mbus = s.inject_kill(names::MBUS).expect("known component");
    s.run_for(SimDuration::from_secs(90));
    let m_rtu = measure_recovery(s.trace(), names::RTU, t_rtu).unwrap();
    let m_mbus = measure_recovery(s.trace(), names::MBUS, t_mbus).unwrap();
    // mbus being down delays detection of rtu (pings flow over mbus), but
    // both must recover without a full restart.
    assert!(m_rtu.final_restart_set == vec![names::RTU.to_string()]);
    assert!(m_mbus.final_restart_set == vec![names::MBUS.to_string()]);
    assert!(m_rtu.recovery_s() < 30.0);
    assert!(m_mbus.recovery_s() < 15.0);
}

#[test]
fn telemetry_stops_while_radio_is_down() {
    let mut cfg = StationConfig::paper();
    let plan = PassScenario::plan(&cfg, "opal", 120.0, 30.0, 20.0);
    cfg.pass_epoch_offset_s = plan.epoch_offset_s;
    let mut s = Station::new(cfg, TreeVariant::V, Box::new(PerfectOracle::new()), 8)
        .expect("valid station");
    s.warm_up();
    plan.start_tracking(&mut s);
    // Run 100 s into the pass, then kill pbcom (the slow one).
    let until = plan.rise_sim_time() + SimDuration::from_secs(100);
    let d = until.saturating_since(s.now());
    s.run_for(d);
    let kill_at = s.inject_kill(names::PBCOM).expect("known component");
    s.run_for(SimDuration::from_secs(90));
    // During the ~22s outage no frames flow.
    let during = telemetry_frames(s.trace(), kill_at, kill_at + SimDuration::from_secs(20));
    assert_eq!(during, 0, "no telemetry while the radio bridge is down");
    // After recovery frames resume.
    let after = telemetry_frames(
        s.trace(),
        kill_at + SimDuration::from_secs(40),
        kill_at + SimDuration::from_secs(80),
    );
    assert!(after > 10, "telemetry resumes after recovery, got {after}");
}

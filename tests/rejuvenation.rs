#![allow(clippy::disallowed_methods)]
//! Proactive rejuvenation (§3's "bounded form of software rejuvenation",
//! driven by the §7 health beacons): REC restarts an aging component before
//! it fails, converting unplanned downtime into planned downtime.

use mercury::config::{names, StationConfig};
use mercury::station::{Station, TreeVariant};
use rr_core::PerfectOracle;
use rr_sim::SimDuration;

/// Drives pbcom's aging up by repeatedly killing fedr (each reconnection
/// ages the bridge, §4.2).
fn age_pbcom(station: &mut Station, fedr_failures: u32) {
    for _ in 0..fedr_failures {
        station.inject_kill(names::FEDR).expect("known component");
        station.run_for(SimDuration::from_secs(45));
    }
}

#[test]
fn without_rejuvenation_pbcom_ages_to_death() {
    let mut cfg = StationConfig::paper();
    cfg.rejuvenation_aging_threshold = None;
    let mut s = Station::new(cfg, TreeVariant::III, Box::new(PerfectOracle::new()), 11)
        .expect("valid station");
    s.warm_up();
    let limit = s.config().pbcom_aging_limit;
    age_pbcom(&mut s, limit + 1);
    s.run_for(SimDuration::from_secs(60));
    assert!(
        s.trace().mark_times("aging-crash:pbcom").next().is_some(),
        "pbcom should die of aging without rejuvenation"
    );
}

#[test]
fn rejuvenation_prevents_the_aging_crash() {
    let mut cfg = StationConfig::paper();
    cfg.rejuvenation_aging_threshold = Some(0.5);
    let mut s = Station::new(cfg, TreeVariant::III, Box::new(PerfectOracle::new()), 12)
        .expect("valid station");
    s.warm_up();
    let limit = s.config().pbcom_aging_limit;
    age_pbcom(&mut s, limit + 2);
    s.run_for(SimDuration::from_secs(60));
    assert!(
        s.trace().mark_times("rejuvenate:pbcom").next().is_some(),
        "REC should rejuvenate pbcom once its aging beacon crosses 0.5"
    );
    assert!(
        s.trace().mark_times("aging-crash:pbcom").next().is_none(),
        "rejuvenation must pre-empt the aging crash"
    );
    // And pbcom is healthy at the end.
    assert_eq!(
        s.state_of(names::PBCOM).expect("known component"),
        rr_sim::ProcessState::Running
    );
}

#[test]
fn rejuvenation_is_not_triggered_by_healthy_components() {
    let mut cfg = StationConfig::paper();
    cfg.rejuvenation_aging_threshold = Some(0.5);
    let mut s = Station::new(cfg, TreeVariant::III, Box::new(PerfectOracle::new()), 13)
        .expect("valid station");
    s.warm_up();
    s.run_for(SimDuration::from_secs(120));
    let rejuvenations = s
        .trace()
        .iter()
        .filter(|e| e.label.starts_with("rejuvenate:"))
        .count();
    assert_eq!(rejuvenations, 0, "no rejuvenation without aging");
}
